#include "switch/hyper_switch.hpp"

#include <bit>
#include <sstream>

#include "util/assert.hpp"
#include "util/parallel.hpp"

namespace pcs::sw {

HyperSwitch::HyperSwitch(std::size_t n, std::size_t m) : chip_(n), m_(m) {
  PCS_REQUIRE(m >= 1 && m <= n, "HyperSwitch m range: m=" << m << " n=" << n);
}

SwitchRouting HyperSwitch::route(const BitVec& valid) const {
  hyper::Routing r = chip_.route(valid);
  SwitchRouting out;
  out.output_of_input.assign(chip_.n(), -1);
  out.input_of_output.assign(m_, -1);
  for (std::size_t j = 0; j < m_; ++j) {
    std::int32_t src = r.input_of_output[j];
    if (src >= 0) {
      out.input_of_output[j] = src;
      out.output_of_input[static_cast<std::size_t>(src)] =
          static_cast<std::int32_t>(j);
    }
  }
  return out;
}

BitVec HyperSwitch::nearsorted_valid_bits(const BitVec& valid) const {
  return chip_.output_valid_bits(valid);
}

std::vector<SwitchRouting> HyperSwitch::route_batch(
    const std::vector<BitVec>& valids) const {
  const std::size_t n = chip_.n();
  std::vector<SwitchRouting> out(valids.size());
  parallel_for_chunks(0, valids.size(), [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      const BitVec& valid = valids[i];
      PCS_REQUIRE(valid.size() == n,
                  "HyperSwitch::route_batch width: pattern " << i << " of "
                  << valids.size() << " has " << valid.size()
                  << " bits, switch has n=" << n);
      SwitchRouting& out_i = out[i];
      out_i.output_of_input.assign(n, -1);
      out_i.input_of_output.assign(m_, -1);
      std::size_t j = 0;
      const auto& words = valid.words();
      for (std::size_t wi = 0; wi < words.size() && j < m_; ++wi) {
        std::uint64_t w = words[wi];
        while (w != 0 && j < m_) {
          const std::size_t x =
              wi * 64 + static_cast<std::size_t>(std::countr_zero(w));
          w &= w - 1;
          out_i.input_of_output[j] = static_cast<std::int32_t>(x);
          out_i.output_of_input[x] = static_cast<std::int32_t>(j);
          ++j;
        }
      }
    }
  });
  return out;
}

std::vector<BitVec> HyperSwitch::nearsorted_batch(
    const std::vector<BitVec>& valids) const {
  const std::size_t n = chip_.n();
  std::vector<BitVec> out(valids.size());
  parallel_for(0, valids.size(), [&](std::size_t i) {
    PCS_REQUIRE(valids[i].size() == n,
                "HyperSwitch::nearsorted_batch width: pattern " << i << " of "
                << valids.size() << " has " << valids[i].size()
                << " bits, switch has n=" << n);
    out[i] = BitVec::prefix_ones(n, valids[i].count());
  });
  return out;
}

std::string HyperSwitch::name() const {
  std::ostringstream os;
  os << "hyperconcentrator(" << chip_.n() << "," << m_ << ")";
  return os.str();
}

Bom HyperSwitch::bill_of_materials() const {
  Bom bom;
  bom.items.push_back(
      ChipSpec{ChipKind::kHyperconcentrator, chip_.n(), 2 * chip_.n(), 0, 1});
  return bom;
}

PrefixButterflyHyperSwitch::PrefixButterflyHyperSwitch(std::size_t n, std::size_t m)
    : fabric_(n), m_(m) {
  PCS_REQUIRE(m >= 1 && m <= n,
              "PrefixButterflyHyperSwitch m range: m=" << m << " n=" << n);
}

std::size_t PrefixButterflyHyperSwitch::inputs() const { return fabric_.n(); }

SwitchRouting PrefixButterflyHyperSwitch::route(const BitVec& valid) const {
  hyper::Routing r = fabric_.route(valid);
  SwitchRouting out;
  out.output_of_input.assign(fabric_.n(), -1);
  out.input_of_output.assign(m_, -1);
  for (std::size_t j = 0; j < m_; ++j) {
    std::int32_t src = r.input_of_output[j];
    if (src >= 0) {
      out.input_of_output[j] = src;
      out.output_of_input[static_cast<std::size_t>(src)] =
          static_cast<std::int32_t>(j);
    }
  }
  return out;
}

BitVec PrefixButterflyHyperSwitch::nearsorted_valid_bits(const BitVec& valid) const {
  PCS_REQUIRE(valid.size() == fabric_.n(),
              "PrefixButterflyHyperSwitch width: pattern has " << valid.size()
              << " bits, switch has n=" << fabric_.n());
  return BitVec::prefix_ones(fabric_.n(), valid.count());
}

std::string PrefixButterflyHyperSwitch::name() const {
  std::ostringstream os;
  os << "prefix-butterfly(" << fabric_.n() << "," << m_ << ")";
  return os.str();
}

}  // namespace pcs::sw
