#include "switch/hyper_switch.hpp"

#include <sstream>

#include "util/assert.hpp"

namespace pcs::sw {

HyperSwitch::HyperSwitch(std::size_t n, std::size_t m) : chip_(n), m_(m) {
  PCS_REQUIRE(m >= 1 && m <= n, "HyperSwitch m range");
}

SwitchRouting HyperSwitch::route(const BitVec& valid) const {
  hyper::Routing r = chip_.route(valid);
  SwitchRouting out;
  out.output_of_input.assign(chip_.n(), -1);
  out.input_of_output.assign(m_, -1);
  for (std::size_t j = 0; j < m_; ++j) {
    std::int32_t src = r.input_of_output[j];
    if (src >= 0) {
      out.input_of_output[j] = src;
      out.output_of_input[static_cast<std::size_t>(src)] =
          static_cast<std::int32_t>(j);
    }
  }
  return out;
}

BitVec HyperSwitch::nearsorted_valid_bits(const BitVec& valid) const {
  return chip_.output_valid_bits(valid);
}

std::string HyperSwitch::name() const {
  std::ostringstream os;
  os << "hyperconcentrator(" << chip_.n() << "," << m_ << ")";
  return os.str();
}

Bom HyperSwitch::bill_of_materials() const {
  Bom bom;
  bom.items.push_back(
      ChipSpec{ChipKind::kHyperconcentrator, chip_.n(), 2 * chip_.n(), 0, 1});
  return bom;
}

PrefixButterflyHyperSwitch::PrefixButterflyHyperSwitch(std::size_t n, std::size_t m)
    : fabric_(n), m_(m) {
  PCS_REQUIRE(m >= 1 && m <= n, "PrefixButterflyHyperSwitch m range");
}

std::size_t PrefixButterflyHyperSwitch::inputs() const { return fabric_.n(); }

SwitchRouting PrefixButterflyHyperSwitch::route(const BitVec& valid) const {
  hyper::Routing r = fabric_.route(valid);
  SwitchRouting out;
  out.output_of_input.assign(fabric_.n(), -1);
  out.input_of_output.assign(m_, -1);
  for (std::size_t j = 0; j < m_; ++j) {
    std::int32_t src = r.input_of_output[j];
    if (src >= 0) {
      out.input_of_output[j] = src;
      out.output_of_input[static_cast<std::size_t>(src)] =
          static_cast<std::int32_t>(j);
    }
  }
  return out;
}

BitVec PrefixButterflyHyperSwitch::nearsorted_valid_bits(const BitVec& valid) const {
  PCS_REQUIRE(valid.size() == fabric_.n(), "PrefixButterflyHyperSwitch width");
  BitVec out(fabric_.n());
  std::size_t k = valid.count();
  for (std::size_t j = 0; j < k; ++j) out.set(j, true);
  return out;
}

std::string PrefixButterflyHyperSwitch::name() const {
  std::ostringstream os;
  os << "prefix-butterfly(" << fabric_.n() << "," << m_ << ")";
  return os.str();
}

}  // namespace pcs::sw
