// Single-chip hyperconcentrator exposed through the ConcentratorSwitch
// interface: the n-by-m *perfect* concentrator of Section 1, obtained by
// keeping the first m outputs of an n-by-n hyperconcentrator.  This is the
// baseline the multichip partial concentrators are compared against.
#pragma once

#include "hyper/hyperconcentrator.hpp"
#include "hyper/prefix_butterfly.hpp"
#include "switch/chip.hpp"
#include "switch/concentrator.hpp"

namespace pcs::sw {

class HyperSwitch : public ConcentratorSwitch {
 public:
  HyperSwitch(std::size_t n, std::size_t m);

  std::size_t inputs() const override { return chip_.n(); }
  std::size_t outputs() const override { return m_; }
  std::size_t epsilon_bound() const override { return 0; }
  SwitchRouting route(const BitVec& valid) const override;
  BitVec nearsorted_valid_bits(const BitVec& valid) const override;

  /// Batch fast paths.  The chip is stable -- the j-th valid input goes to
  /// output j -- so a routing is one word-scan over the set bits and the
  /// nearsorted bits are a prefix of valid.count() ones.
  std::vector<SwitchRouting> route_batch(
      const std::vector<BitVec>& valids) const override;
  std::vector<BitVec> nearsorted_batch(
      const std::vector<BitVec>& valids) const override;

  std::string name() const override;

  /// One n-by-n hyperconcentrator chip (2n data pins -- the pin-count
  /// problem that motivates the multichip designs).
  Bom bill_of_materials() const;

  static constexpr std::size_t kChipPasses = 1;

 private:
  hyper::Hyperconcentrator chip_;
  std::size_t m_;
};

/// Section 1's clocked foil behind the ConcentratorSwitch interface: the
/// parallel-prefix + butterfly hyperconcentrator.  Routing behaviour is
/// identical to HyperSwitch (both are stable hyperconcentrators); what
/// differs is the physical story -- 4 pins/chip, O(n lg n) chips, lg n
/// sequential control steps -- captured by the resource model.
class PrefixButterflyHyperSwitch : public ConcentratorSwitch {
 public:
  PrefixButterflyHyperSwitch(std::size_t n, std::size_t m);

  std::size_t inputs() const override;
  std::size_t outputs() const override { return m_; }
  std::size_t epsilon_bound() const override { return 0; }
  SwitchRouting route(const BitVec& valid) const override;
  BitVec nearsorted_valid_bits(const BitVec& valid) const override;
  std::string name() const override;

  const hyper::PrefixButterflySwitch& fabric() const noexcept { return fabric_; }

 private:
  hyper::PrefixButterflySwitch fabric_;
  std::size_t m_;
};

}  // namespace pcs::sw
