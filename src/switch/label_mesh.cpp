#include "switch/label_mesh.hpp"

#include "util/assert.hpp"
#include "util/mathutil.hpp"

namespace pcs::sw {

LabelMesh::LabelMesh(std::size_t rows, std::size_t cols)
    : slots_(rows * cols, kIdle), rows_(rows), cols_(cols) {
  PCS_REQUIRE(rows > 0 && cols > 0, "LabelMesh shape");
}

LabelMesh LabelMesh::from_row_major_valid(const BitVec& valid, std::size_t rows,
                                          std::size_t cols) {
  PCS_REQUIRE(valid.size() == rows * cols, "LabelMesh::from_row_major_valid size");
  LabelMesh m(rows, cols);
  for (std::size_t x = 0; x < valid.size(); ++x) {
    if (valid.get(x)) m.slots_[x] = static_cast<std::int32_t>(x);
  }
  return m;
}

LabelMesh LabelMesh::from_col_major_valid(const BitVec& valid, std::size_t rows,
                                          std::size_t cols) {
  PCS_REQUIRE(valid.size() == rows * cols, "LabelMesh::from_col_major_valid size");
  LabelMesh m(rows, cols);
  for (std::size_t x = 0; x < valid.size(); ++x) {
    if (valid.get(x)) {
      // Input x sits at column-major position x: row x % rows, col x / rows.
      m.slots_[m.index(x % rows, x / rows)] = static_cast<std::int32_t>(x);
    }
  }
  return m;
}

std::int32_t LabelMesh::get(std::size_t i, std::size_t j) const {
  PCS_REQUIRE(i < rows_ && j < cols_, "LabelMesh::get range");
  return slots_[index(i, j)];
}

void LabelMesh::set(std::size_t i, std::size_t j, std::int32_t label) {
  PCS_REQUIRE(i < rows_ && j < cols_, "LabelMesh::set range");
  slots_[index(i, j)] = label;
}

void LabelMesh::concentrate_columns() {
  for (std::size_t j = 0; j < cols_; ++j) {
    std::size_t write = 0;
    for (std::size_t i = 0; i < rows_; ++i) {
      std::int32_t s = slots_[index(i, j)];
      if (slot_occupied(s)) slots_[index(write++, j)] = s;
    }
    for (; write < rows_; ++write) slots_[index(write, j)] = kIdle;
  }
}

void LabelMesh::concentrate_rows() {
  for (std::size_t i = 0; i < rows_; ++i) {
    std::size_t write = 0;
    for (std::size_t j = 0; j < cols_; ++j) {
      std::int32_t s = slots_[index(i, j)];
      if (slot_occupied(s)) slots_[index(i, write++)] = s;
    }
    for (; write < cols_; ++write) slots_[index(i, write)] = kIdle;
  }
}

void LabelMesh::concentrate_rows_alternating() {
  for (std::size_t i = 0; i < rows_; ++i) {
    if (i % 2 == 0) {
      std::size_t write = 0;
      for (std::size_t j = 0; j < cols_; ++j) {
        std::int32_t s = slots_[index(i, j)];
        if (slot_occupied(s)) slots_[index(i, write++)] = s;
      }
      for (; write < cols_; ++write) slots_[index(i, write)] = kIdle;
    } else {
      // Concentrate right, preserving left-to-right order of the occupants.
      std::size_t write = cols_;
      for (std::size_t j = cols_; j-- > 0;) {
        std::int32_t s = slots_[index(i, j)];
        if (slot_occupied(s)) slots_[index(i, --write)] = s;
      }
      while (write > 0) slots_[index(i, --write)] = kIdle;
    }
  }
}

void LabelMesh::rotate_row_right(std::size_t i, std::size_t amount) {
  PCS_REQUIRE(i < rows_, "LabelMesh::rotate_row_right row");
  amount %= cols_;
  if (amount == 0) return;
  std::vector<std::int32_t> old(cols_);
  for (std::size_t j = 0; j < cols_; ++j) old[j] = slots_[index(i, j)];
  for (std::size_t j = 0; j < cols_; ++j) {
    slots_[index(i, (j + amount) % cols_)] = old[j];
  }
}

void LabelMesh::rotate_rows_bit_reversed() {
  PCS_REQUIRE(is_pow2(rows_), "LabelMesh::rotate_rows_bit_reversed rows");
  const unsigned q = exact_log2(rows_);
  for (std::size_t i = 0; i < rows_; ++i) {
    rotate_row_right(i, static_cast<std::size_t>(bit_reverse(i, q)));
  }
}

void LabelMesh::cm_to_rm_reshape() {
  std::vector<std::int32_t> cm = to_col_major();
  slots_ = std::move(cm);  // row-major storage of the column-major sequence
}

void LabelMesh::rm_to_cm_reshape() {
  std::vector<std::int32_t> rm = slots_;
  for (std::size_t x = 0; x < rm.size(); ++x) {
    slots_[index(x % rows_, x / rows_)] = rm[x];
  }
}

void LabelMesh::shift_concentrate_unshift() {
  const std::size_t r = rows_;
  const std::size_t s = cols_;
  const std::size_t shift = r / 2;
  std::vector<std::int32_t> cm = to_col_major();
  // Extended column-major sequence: pad-ones, data, idles.
  std::vector<std::int32_t> ext(shift, kPadOne);
  ext.insert(ext.end(), cm.begin(), cm.end());
  ext.resize(shift + r * s + (r - shift), kIdle);
  // Concentrate each length-r column of the widened (s+1)-column matrix.
  for (std::size_t c = 0; c <= s; ++c) {
    std::size_t base = c * r;
    std::size_t write = base;
    for (std::size_t i = base; i < base + r; ++i) {
      if (slot_occupied(ext[i])) ext[write++] = ext[i];
    }
    for (; write < base + r; ++write) ext[write] = kIdle;
  }
  // Unshift: the pads are back at the ends (see columnsort.cpp for why).
  for (std::size_t x = 0; x < r * s; ++x) {
    std::int32_t v = ext[shift + x];
    PCS_REQUIRE(v != kPadOne, "pad escaped the shift window");
    slots_[index(x % r, x / r)] = v;
  }
}

std::vector<std::int32_t> LabelMesh::to_row_major() const { return slots_; }

std::vector<std::int32_t> LabelMesh::to_col_major() const {
  std::vector<std::int32_t> out(size());
  std::size_t pos = 0;
  for (std::size_t j = 0; j < cols_; ++j) {
    for (std::size_t i = 0; i < rows_; ++i) out[pos++] = slots_[index(i, j)];
  }
  return out;
}

BitMatrix LabelMesh::valid_bits() const {
  BitMatrix m(rows_, cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t j = 0; j < cols_; ++j) {
      m.set(i, j, slot_occupied(slots_[index(i, j)]));
    }
  }
  return m;
}

}  // namespace pcs::sw
