// Labeled mesh: the multichip switch simulations track *which message*
// occupies each matrix position, not just its valid bit.
//
// Each slot holds the index of the switch input whose message occupies it
// (>= 0), kIdle (-1) for no message, or kPadOne (-2) for the sentinel
// "sorts-before-everything" pads Columnsort's shift step introduces.  A
// hyperconcentrator chip applied to a row or column is a *stable
// concentration*: occupied slots move to the front in order.  Projecting a
// LabelMesh to its valid bits and applying the corresponding pcs::sortnet
// operation must always agree with operating on the labels directly -- the
// tests enforce this equivalence, which is what lets the BitMatrix theory
// results transfer to actual message routing.
#pragma once

#include <cstdint>
#include <vector>

#include "util/bitmatrix.hpp"
#include "util/bitvec.hpp"

namespace pcs::sw {

inline constexpr std::int32_t kIdle = -1;
inline constexpr std::int32_t kPadOne = -2;

/// True iff the slot counts as a valid (1) bit for sorting purposes.
inline bool slot_occupied(std::int32_t s) noexcept { return s != kIdle; }

class LabelMesh {
 public:
  /// rows-by-cols mesh, all slots idle.
  LabelMesh(std::size_t rows, std::size_t cols);

  /// Build from the switch's input valid bits laid out row-major: position
  /// (i, j) holds input index i*cols + j when valid, else idle.
  static LabelMesh from_row_major_valid(const BitVec& valid, std::size_t rows,
                                        std::size_t cols);

  /// Build laying the inputs out in *column-major* order: position (i, j)
  /// holds input index j*rows + i when valid.  This is how the Columnsort
  /// switch's stage-1 chips see the input wires (chip j = column j).
  static LabelMesh from_col_major_valid(const BitVec& valid, std::size_t rows,
                                        std::size_t cols);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  std::size_t size() const noexcept { return rows_ * cols_; }

  std::int32_t get(std::size_t i, std::size_t j) const;
  void set(std::size_t i, std::size_t j, std::int32_t label);

  /// Stable concentration of every column toward row 0 (a stage of
  /// column-oriented hyperconcentrator chips).
  void concentrate_columns();

  /// Stable concentration of every row toward column 0 (row-oriented chips).
  void concentrate_rows();

  /// Shearsort row phase on labels: even rows concentrate left, odd rows
  /// concentrate right (occupied slots pushed to the high columns, stably).
  void concentrate_rows_alternating();

  /// Rotate row i right by `amount` (the stage-2 barrel shifters).
  void rotate_row_right(std::size_t i, std::size_t amount);

  /// Rotate every row i right by rev(i) (bit-reversal of lg(rows) bits).
  void rotate_rows_bit_reversed();

  /// Columnsort step 2 on labels: the slot at column-major position x moves
  /// to row-major position x.
  void cm_to_rm_reshape();

  /// Columnsort step 4 on labels (inverse of cm_to_rm_reshape).
  void rm_to_cm_reshape();

  /// Columnsort steps 6-8 on labels: shift the column-major sequence down by
  /// floor(rows/2) with kPadOne before and kIdle after, concentrate the
  /// widened matrix's columns, unshift.
  void shift_concentrate_unshift();

  /// The mesh read in row-major / column-major order.
  std::vector<std::int32_t> to_row_major() const;
  std::vector<std::int32_t> to_col_major() const;

  /// Projection to valid bits (occupied = 1) for comparison with sortnet.
  BitMatrix valid_bits() const;

 private:
  std::size_t index(std::size_t i, std::size_t j) const noexcept {
    return i * cols_ + j;
  }

  std::vector<std::int32_t> slots_;
  std::size_t rows_;
  std::size_t cols_;
};

}  // namespace pcs::sw
