#include "switch/make_switch.hpp"

#include <bit>
#include <utility>

#include "plan/compile.hpp"
#include "plan/plan_switch.hpp"
#include "switch/hyper_switch.hpp"
#include "util/assert.hpp"
#include "util/digest.hpp"

namespace pcs {

namespace {

std::size_t outputs_or_all(const SwitchSpec& spec, std::size_t n) {
  return spec.m == 0 ? n : spec.m;
}

}  // namespace

std::uint64_t SwitchSpec::digest(plan::ExecMode exec) const {
  Digest d;
  // Length-prefixed family bytes so ("ab", n=1) can never collide with
  // ("a", ...) by concatenation ambiguity.
  d.mix_u64(family.size());
  for (char c : family) d.mix_byte(static_cast<std::uint8_t>(c));
  d.mix_u64(n);
  d.mix_u64(m);
  d.mix_u64(std::bit_cast<std::uint64_t>(beta));
  d.mix_u64(r);
  d.mix_u64(s);
  d.mix_u64(passes);
  d.mix_byte(static_cast<std::uint8_t>(schedule));
  d.mix_u64(faults.size());
  for (const plan::ChipFault& f : faults) {
    d.mix_u64(f.stage);
    d.mix_u64(f.chip);
  }
  d.mix_byte(static_cast<std::uint8_t>(exec));
  return d.value();
}

plan::SwitchPlan make_switch_plan(const SwitchSpec& spec) {
  plan::SwitchPlan p;
  if (spec.family == "revsort") {
    p = plan::compile_revsort_plan(spec.n, outputs_or_all(spec, spec.n));
  } else if (spec.family == "columnsort") {
    if (spec.r != 0 || spec.s != 0) {
      PCS_REQUIRE(spec.r != 0 && spec.s != 0,
                  "SwitchSpec columnsort: set both r and s or neither (r="
                      << spec.r << " s=" << spec.s << ")");
      p = plan::compile_columnsort_plan(spec.r, spec.s,
                                        outputs_or_all(spec, spec.r * spec.s));
    } else {
      p = plan::compile_columnsort_plan_beta(spec.n, spec.beta,
                                             outputs_or_all(spec, spec.n));
    }
  } else if (spec.family == "multipass") {
    PCS_REQUIRE(spec.r != 0 && spec.s != 0,
                "SwitchSpec multipass needs an explicit r x s shape");
    p = plan::compile_multipass_plan(spec.r, spec.s, spec.passes,
                                     outputs_or_all(spec, spec.r * spec.s),
                                     spec.schedule);
  } else if (spec.family == "full-revsort") {
    PCS_REQUIRE(spec.m == 0 || spec.m == spec.n,
                "SwitchSpec full-revsort is fully sorting: m must be n or 0");
    p = plan::compile_full_revsort_plan(spec.n);
  } else if (spec.family == "full-columnsort") {
    PCS_REQUIRE(spec.r != 0 && spec.s != 0,
                "SwitchSpec full-columnsort needs an explicit r x s shape");
    PCS_REQUIRE(spec.m == 0 || spec.m == spec.r * spec.s,
                "SwitchSpec full-columnsort is fully sorting: m must be n or 0");
    p = plan::compile_full_columnsort_plan(spec.r, spec.s);
  } else {
    PCS_REQUIRE(false, "SwitchSpec family '"
                           << spec.family
                           << "' has no staged plan (known plan families: "
                              "revsort, columnsort, multipass, full-revsort, "
                              "full-columnsort)");
  }
  if (!spec.faults.empty()) plan::apply_chip_faults(p, spec.faults);
  return p;
}

std::unique_ptr<sw::ConcentratorSwitch> make_switch(const SwitchSpec& spec) {
  if (spec.family == "hyper") {
    PCS_REQUIRE(spec.faults.empty(),
                "SwitchSpec faults need a plan family; 'hyper' has no plan");
    return std::make_unique<sw::HyperSwitch>(spec.n,
                                             outputs_or_all(spec, spec.n));
  }
  return std::make_unique<plan::PlanSwitch>(make_switch_plan(spec));
}

}  // namespace pcs
