// The one public construction path for every switch in the library.
//
// A SwitchSpec names a family and its shape; make_switch() returns the
// switch behind the ConcentratorSwitch interface, and make_switch_plan()
// returns the compiled staged plan for the plan-backed families (every
// family except "hyper", which is a single chip, not a multichip plan).
// runtime/config.cpp, the examples, and anything outside src/ construct
// switches exclusively through here -- the per-family classes in switch/
// remain for code that needs their extra accessors (wiring-literal
// reference routes, shape getters), not as entry points.
//
// Families and the shape fields they read:
//   "revsort"          n, m            (n = side^2, side a power of two)
//   "columnsort"       r, s, m -- or n, beta, m when r/s are left 0
//   "multipass"        r, s, passes, schedule, m
//   "full-revsort"     n               (fully sorting, m = n)
//   "full-columnsort"  r, s            (fully sorting, m = n)
//   "hyper"            n, m            (single hyperconcentrator chip)
// m = 0 means "all n outputs".  `faults` marks dead chips (plan families
// only): the compiled plan is rewritten via plan::apply_chip_faults, so the
// returned switch advertises the weakened guarantees.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "plan/plan_analysis.hpp"
#include "plan/switch_plan.hpp"
#include "switch/concentrator.hpp"

namespace pcs {

struct SwitchSpec {
  std::string family = "revsort";
  std::size_t n = 0;   ///< input wires (revsort / full-revsort / hyper / beta shapes)
  std::size_t m = 0;   ///< output wires; 0 = n
  double beta = 0.75;  ///< Columnsort r = ~n^beta when r/s are unset
  std::size_t r = 0;   ///< explicit Columnsort-family chip width
  std::size_t s = 0;   ///< explicit Columnsort-family chip count
  std::size_t passes = 1;  ///< multipass sort+reshape passes
  plan::ReshapeSchedule schedule = plan::ReshapeSchedule::kSame;
  std::vector<plan::ChipFault> faults;  ///< dead chips (plan families only)

  /// Stable FNV-1a fingerprint over EVERY spec field (family bytes, shape,
  /// beta bits, passes, schedule, the fault list in order) plus the executor
  /// engine `exec`, which changes routing machinery but not routing results
  /// -- cache entries built for one engine must not be served to the other.
  /// This is the serving daemon's plan-cache key (serve/plan_cache.hpp); the
  /// value is pinned by a golden test (test_switch_digest.cpp) so it cannot
  /// silently drift across refactors and strand every cached plan.
  std::uint64_t digest(plan::ExecMode exec = plan::ExecMode::kFused) const;
};

/// Compile the spec's staged plan, faults applied.  Throws ContractViolation
/// for "hyper" (no plan), unknown families, and out-of-range shapes.
plan::SwitchPlan make_switch_plan(const SwitchSpec& spec);

/// Build the switch: plan families run behind plan::PlanSwitch (identical
/// name, routing, and fast paths as the legacy per-family classes); "hyper"
/// returns sw::HyperSwitch.  Throws ContractViolation on bad specs,
/// including faults on "hyper".
std::unique_ptr<sw::ConcentratorSwitch> make_switch(const SwitchSpec& spec);

}  // namespace pcs
