#include "switch/multipass_switch.hpp"

namespace pcs::sw {

MultipassColumnsortSwitch::MultipassColumnsortSwitch(std::size_t r, std::size_t s,
                                                     std::size_t passes, std::size_t m,
                                                     ReshapeSchedule schedule)
    : r_(r), s_(s), passes_(passes), n_(r * s), m_(m), schedule_(schedule),
      exec_(plan::compile_multipass_plan(r, s, passes, m, schedule)) {}

bool MultipassColumnsortSwitch::reads_row_major() const {
  // With the alternating schedule and an even pass count the last reshape
  // was RM -> CM, so the nearly-sorted read-out order is column-major
  // (exactly as in full Columnsort, whose output order is column-major).
  return !(schedule_ == ReshapeSchedule::kAlternating && passes_ % 2 == 0);
}

Bom MultipassColumnsortSwitch::bill_of_materials() const {
  Bom bom;
  bom.items.push_back(
      ChipSpec{ChipKind::kHyperconcentrator, r_, 2 * r_, 0, chip_passes() * s_});
  return bom;
}

}  // namespace pcs::sw
