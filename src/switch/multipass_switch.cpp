#include "switch/multipass_switch.hpp"

#include <algorithm>
#include <sstream>

#include "sortnet/columnsort.hpp"
#include "sortnet/lane_batch.hpp"
#include "switch/label_mesh.hpp"
#include "util/assert.hpp"
#include "util/mathutil.hpp"
#include "util/parallel.hpp"

namespace pcs::sw {

MultipassColumnsortSwitch::MultipassColumnsortSwitch(std::size_t r, std::size_t s,
                                                     std::size_t passes, std::size_t m,
                                                     ReshapeSchedule schedule)
    : r_(r), s_(s), passes_(passes), n_(r * s), m_(m), schedule_(schedule) {
  PCS_REQUIRE(r > 0 && s > 0 && r % s == 0,
              "MultipassColumnsortSwitch requires s to divide r: r=" << r
              << " s=" << s);
  PCS_REQUIRE(passes >= 1, "MultipassColumnsortSwitch needs at least one pass, got "
                               << passes);
  PCS_REQUIRE(m >= 1 && m <= n_,
              "MultipassColumnsortSwitch m range: m=" << m << " n=" << n_);
  cm_to_rm_ = cm_to_rm_wiring(r_, s_);
  rm_to_cm_ = cm_to_rm_.inverse();
  readout_ = row_major_readout_wiring(r_, s_);
}

std::size_t MultipassColumnsortSwitch::epsilon_bound() const {
  return sortnet::algorithm2_epsilon_bound(s_);
}

SwitchRouting MultipassColumnsortSwitch::finish_row_major(
    const std::vector<std::int32_t>& row_major) const {
  SwitchRouting out;
  out.output_of_input.assign(n_, -1);
  out.input_of_output.assign(m_, -1);
  for (std::size_t pos = 0; pos < m_; ++pos) {
    std::int32_t src = row_major[pos];
    if (src >= 0) {
      out.input_of_output[pos] = src;
      out.output_of_input[static_cast<std::size_t>(src)] =
          static_cast<std::int32_t>(pos);
    }
  }
  return out;
}

namespace {
void run_passes(LabelMesh& mesh, std::size_t passes, ReshapeSchedule schedule) {
  for (std::size_t p = 0; p < passes; ++p) {
    mesh.concentrate_columns();
    if (schedule == ReshapeSchedule::kAlternating && p % 2 == 1) {
      mesh.rm_to_cm_reshape();
    } else {
      mesh.cm_to_rm_reshape();
    }
  }
  mesh.concentrate_columns();
}
}  // namespace

bool MultipassColumnsortSwitch::reads_row_major() const {
  // With the alternating schedule and an even pass count the last reshape
  // was RM -> CM, so the nearly-sorted read-out order is column-major
  // (exactly as in full Columnsort, whose output order is column-major).
  return !(schedule_ == ReshapeSchedule::kAlternating && passes_ % 2 == 0);
}

SwitchRouting MultipassColumnsortSwitch::route(const BitVec& valid) const {
  PCS_REQUIRE(valid.size() == n_,
              "MultipassColumnsortSwitch::route width: pattern has " << valid.size()
                  << " bits, switch has n=" << n_);
  LabelMesh mesh = LabelMesh::from_col_major_valid(valid, r_, s_);
  run_passes(mesh, passes_, schedule_);
  return finish_row_major(reads_row_major() ? mesh.to_row_major()
                                            : mesh.to_col_major());
}

BitVec MultipassColumnsortSwitch::nearsorted_valid_bits(const BitVec& valid) const {
  PCS_REQUIRE(valid.size() == n_,
              "MultipassColumnsortSwitch width: pattern has " << valid.size()
                  << " bits, switch has n=" << n_);
  LabelMesh mesh = LabelMesh::from_col_major_valid(valid, r_, s_);
  run_passes(mesh, passes_, schedule_);
  BitMatrix bits = mesh.valid_bits();
  return reads_row_major() ? bits.to_row_major() : bits.to_col_major();
}

std::vector<BitVec> MultipassColumnsortSwitch::nearsorted_batch(
    const std::vector<BitVec>& valids) const {
  std::vector<BitVec> out(valids.size());
  const std::size_t blocks = ceil_div(valids.size(), sortnet::LaneBatch::kLanes);
  parallel_for(0, blocks, [&](std::size_t b) {
    const std::size_t first = b * sortnet::LaneBatch::kLanes;
    const std::size_t count =
        std::min(sortnet::LaneBatch::kLanes, valids.size() - first);
    sortnet::LaneBatch lanes(n_);
    lanes.load(valids, first, count);
    for (std::size_t p = 0; p < passes_; ++p) {
      lanes.concentrate_segments(r_);
      if (schedule_ == ReshapeSchedule::kAlternating && p % 2 == 1) {
        lanes.permute(rm_to_cm_.dests());
      } else {
        lanes.permute(cm_to_rm_.dests());
      }
    }
    lanes.concentrate_segments(r_);
    // Column-major read-out is the engine's native order; row-major needs
    // the final wiring.
    if (reads_row_major()) lanes.permute(readout_.dests());
    lanes.store(out, first);
  });
  return out;
}

std::string MultipassColumnsortSwitch::name() const {
  std::ostringstream os;
  os << "multipass-columnsort(r=" << r_ << ",s=" << s_ << ",d=" << passes_
     << (schedule_ == ReshapeSchedule::kAlternating ? ",alt" : ",same")
     << ",m=" << m_ << ")";
  return os.str();
}

Bom MultipassColumnsortSwitch::bill_of_materials() const {
  Bom bom;
  bom.items.push_back(
      ChipSpec{ChipKind::kHyperconcentrator, r_, 2 * r_, 0, chip_passes() * s_});
  return bom;
}

}  // namespace pcs::sw
