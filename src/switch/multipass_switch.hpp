// Multipass Columnsort-style switches: the "k stages" open question of
// Section 6.
//
// The paper asks: with chips of p pins and k stages, how large an n can an
// (n, m, 1 - o(p/m)) partial concentrator reach?  The two-stage Columnsort
// construction gives f(p) = p^{2-epsilon'}.  A natural candidate for more
// stages is to iterate Columnsort's first phase: each *pass* is
//     sort columns; convert column-major -> row-major,
// and a d-pass switch runs d passes followed by a final column sort, for
// d + 1 chip crossings total.
//
// d = 1 is exactly Algorithm 2 with its proven (s-1)^2 bound.  For d >= 2
// no closed-form bound appears in the paper.  Two schedules are offered:
//
//   kSame        -- every pass converts CM -> RM.  Empirical finding (see
//                   bench_open_question): the adversarial worst case is a
//                   *fixed point* of this pass, so extra same-direction
//                   passes do NOT reduce the worst epsilon below (s-1)^2.
//   kAlternating -- passes alternate CM -> RM and RM -> CM, mirroring steps
//                   2 and 4 of full Columnsort.  The adversarial worst
//                   epsilon drops with d (measured: 49 -> 43 -> 7 = s-1 at
//                   d >= 3 for r=64, s=8), at 2 lg r delays per pass.
//
// Both carry the d = 1 bound (s-1)^2 as the advertised epsilon_bound(); for
// kAlternating it is proven only at d = 1 and validated adversarially for
// d >= 2 by the tests.
//
// Thin wrapper over plan::compile_multipass_plan; every ConcentratorSwitch
// virtual delegates to the shared PlanExecutor.
#pragma once

#include "plan/compile.hpp"
#include "plan/plan_executor.hpp"
#include "switch/chip.hpp"
#include "switch/concentrator.hpp"

namespace pcs::sw {

/// The pass schedule is part of the plan IR; sw re-exports it so existing
/// call sites (tests, benches, runtime config) keep compiling unchanged.
using ReshapeSchedule = plan::ReshapeSchedule;

class MultipassColumnsortSwitch : public ConcentratorSwitch {
 public:
  /// r-by-s mesh (s divides r), `passes` >= 1 sort+reshape passes plus the
  /// final column sort, m output wires.
  MultipassColumnsortSwitch(std::size_t r, std::size_t s, std::size_t passes,
                            std::size_t m,
                            ReshapeSchedule schedule = ReshapeSchedule::kSame);

  std::size_t inputs() const override { return n_; }
  std::size_t outputs() const override { return m_; }

  /// (s-1)^2: proven for passes == 1 (Theorem 4), conjectured and
  /// empirically validated for passes >= 2 (see tests and
  /// bench_open_question).
  std::size_t epsilon_bound() const override { return exec_.plan().epsilon; }

  SwitchRouting route(const BitVec& valid) const override {
    return exec_.route(valid);
  }
  BitVec nearsorted_valid_bits(const BitVec& valid) const override {
    return exec_.nearsorted_valid_bits(valid);
  }

  /// LaneBatch fast path: 64 patterns per word through every pass, against
  /// the wirings compiled into the plan.
  std::vector<BitVec> nearsorted_batch(
      const std::vector<BitVec>& valids) const override {
    return exec_.nearsorted_batch(valids);
  }

  std::string name() const override { return exec_.plan().name; }

  std::size_t r() const noexcept { return r_; }
  std::size_t s() const noexcept { return s_; }
  std::size_t passes() const noexcept { return passes_; }
  ReshapeSchedule schedule() const noexcept { return schedule_; }

  /// Chips a message passes through: passes + 1 column sorts.
  std::size_t chip_passes() const noexcept { return passes_ + 1; }

  /// Output wires are taken row-major, except under the alternating
  /// schedule with an even pass count, whose natural read-out (as in full
  /// Columnsort) is column-major.
  bool reads_row_major() const;

  /// The compiled plan this switch executes.
  const plan::SwitchPlan& plan() const noexcept { return exec_.plan(); }

  /// (passes + 1) stages of s chips of width r.
  Bom bill_of_materials() const;

 private:
  std::size_t r_;
  std::size_t s_;
  std::size_t passes_;
  std::size_t n_;
  std::size_t m_;
  ReshapeSchedule schedule_;
  plan::PlanExecutor exec_;
};

}  // namespace pcs::sw
