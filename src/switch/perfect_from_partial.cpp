#include "switch/perfect_from_partial.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace pcs::sw {

PerfectFromPartial::PerfectFromPartial(const ConcentratorSwitch& inner, std::size_t n,
                                       std::size_t m)
    : inner_(&inner), n_(n), m_(m) {
  PCS_REQUIRE(n >= 1 && m >= 1 && m <= n, "PerfectFromPartial shape");
  PCS_REQUIRE(n <= inner.inputs(), "PerfectFromPartial: inner switch too narrow");
  PCS_REQUIRE(m <= inner.guaranteed_capacity(),
              "PerfectFromPartial: m exceeds inner guaranteed capacity");
}

double PerfectFromPartial::input_overhead() const {
  return static_cast<double>(inner_->inputs()) / static_cast<double>(n_);
}

SwitchRouting PerfectFromPartial::route(const BitVec& valid) const {
  PCS_REQUIRE(valid.size() == n_, "PerfectFromPartial::route width");
  BitVec wide(inner_->inputs());
  for (std::size_t i = 0; i < n_; ++i) wide.set(i, valid.get(i));
  SwitchRouting inner_routing = inner_->route(wide);
  // Restrict the input side to the caller's n wires; the output side keeps
  // the inner switch's full width (that is the advertised wire overhead).
  SwitchRouting out;
  out.output_of_input.assign(n_, -1);
  out.input_of_output = inner_routing.input_of_output;
  for (std::size_t i = 0; i < n_; ++i) {
    out.output_of_input[i] = inner_routing.output_of_input[i];
  }
  return out;
}

std::size_t PerfectFromPartial::guaranteed_routed(std::size_t k) const {
  return std::min(k, m_);
}

}  // namespace pcs::sw
