// Using a partial concentrator where a perfect concentrator is required
// (paper Section 1): an (n/alpha, m/alpha, alpha) partial concentrator
// substitutes for an n-by-m perfect concentrator at the cost of a
// 1/alpha-factor increase in input and output wires.
//
// The wrapper attaches the caller's n sources to the first n inputs of the
// inner (wider) switch, leaves the rest invalid, and delivers the perfect
// contract: with k <= m messages, all k are routed; with k > m, at least m
// outputs carry messages.
#pragma once

#include "switch/concentrator.hpp"

namespace pcs::sw {

class PerfectFromPartial {
 public:
  /// inner must satisfy n <= inner.inputs() and m <= floor(alpha *
  /// inner.outputs()) = inner.guaranteed_capacity(); the constructor checks.
  PerfectFromPartial(const ConcentratorSwitch& inner, std::size_t n, std::size_t m);

  std::size_t inputs() const noexcept { return n_; }
  std::size_t outputs() const noexcept { return m_; }
  const ConcentratorSwitch& inner() const noexcept { return *inner_; }

  /// Wire-count overhead of the substitution: inner wires / required wires,
  /// on the input side (the paper's 1/alpha factor).
  double input_overhead() const;

  /// Route k messages; the perfect contract guarantees min(k, m) routed.
  SwitchRouting route(const BitVec& valid) const;

  /// Number of routed messages the perfect contract promises for k valid.
  std::size_t guaranteed_routed(std::size_t k) const;

 private:
  const ConcentratorSwitch* inner_;
  std::size_t n_;
  std::size_t m_;
};

}  // namespace pcs::sw
