#include "switch/revsort_switch.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <sstream>

#if defined(__x86_64__) && defined(__GNUC__)
#define PCS_REVSORT_AVX512 1
#include <immintrin.h>
#endif

#include "hyper/hyperconcentrator.hpp"
#include "sortnet/lane_batch.hpp"
#include "sortnet/revsort.hpp"
#include "switch/label_mesh.hpp"
#include "util/assert.hpp"
#include "util/mathutil.hpp"
#include "util/parallel.hpp"

namespace pcs::sw {

RevsortSwitch::RevsortSwitch(std::size_t n, std::size_t m) : n_(n), m_(m) {
  PCS_REQUIRE(n > 0, "RevsortSwitch n must be positive");
  side_ = isqrt(n);
  PCS_REQUIRE(side_ * side_ == n,
              "RevsortSwitch n must be a perfect square: n=" << n);
  PCS_REQUIRE(is_pow2(side_),
              "RevsortSwitch sqrt(n) must be a power of two: n=" << n
              << " side=" << side_);
  PCS_REQUIRE(m >= 1 && m <= n, "RevsortSwitch m range: m=" << m << " n=" << n);
  stage1_to_2_ = transpose_wiring(side_);
  stage2_to_3_ = rev_rotate_transpose_wiring(side_);
  const unsigned q = exact_log2(side_);
  rev_.resize(side_);
  for (std::size_t i = 0; i < side_; ++i) {
    rev_[i] = static_cast<std::uint32_t>(bit_reverse(i, q));
  }
}

std::size_t RevsortSwitch::epsilon_bound() const {
  // Dirty rows after Algorithm 1, times the row width.
  return sortnet::algorithm1_dirty_row_bound(side_) * side_;
}

SwitchRouting RevsortSwitch::finish_row_major(
    const std::vector<std::int32_t>& row_major) const {
  SwitchRouting r;
  r.output_of_input.assign(n_, -1);
  r.input_of_output.assign(m_, -1);
  for (std::size_t pos = 0; pos < m_; ++pos) {
    std::int32_t src = row_major[pos];
    if (src >= 0) {
      r.input_of_output[pos] = src;
      r.output_of_input[static_cast<std::size_t>(src)] =
          static_cast<std::int32_t>(pos);
    }
  }
  return r;
}

SwitchRouting RevsortSwitch::route(const BitVec& valid) const {
  PCS_REQUIRE(valid.size() == n_, "RevsortSwitch::route width: pattern has "
                                      << valid.size() << " bits, switch has n=" << n_);
  // Inputs attach chip-major: input x enters stage-1 chip x / side at pin
  // x % side, i.e. matrix position (x % side, x / side).
  LabelMesh mesh = LabelMesh::from_col_major_valid(valid, side_, side_);
  mesh.concentrate_columns();        // stage 1
  mesh.concentrate_rows();           // stage 2 (after the transpose wiring)
  mesh.rotate_rows_bit_reversed();   // on-board barrel shifters
  mesh.concentrate_columns();        // stage 3 (after the transpose wiring)
  return finish_row_major(mesh.to_row_major());
}

SwitchRouting RevsortSwitch::route_via_wiring(const BitVec& valid) const {
  PCS_REQUIRE(valid.size() == n_, "RevsortSwitch::route_via_wiring width");
  const std::size_t v = side_;
  // Input x drives stage-1 chip x / v, pin x % v: flat wire index x.
  std::vector<std::int32_t> wires(n_, hyper::kIdle);
  for (std::size_t x = 0; x < n_; ++x) {
    if (valid.get(x)) wires[x] = static_cast<std::int32_t>(x);
  }
  auto concentrate_chips = [&](std::vector<std::int32_t>& w) {
    for (std::size_t chip = 0; chip < v; ++chip) {
      std::vector<std::int32_t> slice(w.begin() + static_cast<std::ptrdiff_t>(chip * v),
                                      w.begin() + static_cast<std::ptrdiff_t>((chip + 1) * v));
      hyper::stable_concentrate(slice);
      std::copy(slice.begin(), slice.end(),
                w.begin() + static_cast<std::ptrdiff_t>(chip * v));
    }
  };
  concentrate_chips(wires);                 // stage 1 chips
  wires = stage1_to_2_.apply(wires);        // stage 1 -> 2 wiring
  concentrate_chips(wires);                 // stage 2 chips
  wires = stage2_to_3_.apply(wires);        // shifters + wiring
  concentrate_chips(wires);                 // stage 3 chips
  // Output wires are taken row-major: matrix entry (i, j) sits on stage-3
  // chip j, pin i (flat j*v + i) and is output position i*v + j.
  std::vector<std::int32_t> row_major(n_, hyper::kIdle);
  for (std::size_t j = 0; j < v; ++j) {
    for (std::size_t i = 0; i < v; ++i) {
      row_major[i * v + j] = wires[j * v + i];
    }
  }
  return finish_row_major(row_major);
}

namespace {

// Per-thread scratch for the counting kernel, reused across a chunk of
// patterns so the batch path allocates once per chunk, not per route.
struct RevsortScratch {
  std::vector<std::uint32_t> col_count;   // stage-1 fill per column
  std::vector<std::uint32_t> row_count;   // stage-2 fill per row
  std::vector<std::uint32_t> row_start;   // CSR offsets of the row buckets
  std::vector<std::uint32_t> cursor;      // CSR insertion cursors
  std::vector<std::uint32_t> col3_count;  // stage-3 fill per column
  std::vector<std::uint32_t> pos_buf;     // staged stage-3 positions of a row
  std::vector<std::uint32_t> t_of;        // stage-1 row of the idx-th set bit
  std::vector<std::uint32_t> x_of;        // input label of the idx-th set bit
  std::vector<std::uint32_t> row_x;       // labels bucketed by stage-2 row

  // cursor carries 16 lanes of slack: the vector kernel loads a full
  // 16-lane block at cursor[fill] even when fewer lanes are live.
  RevsortScratch(std::size_t v, std::size_t n)
      : col_count(v + 1),
        row_count(v),
        row_start(v + 2),
        cursor(v + 16),
        col3_count(v),
        pos_buf(v + 16),
        row_x(n) {}

  // The label staging arrays are only used by the scalar kernel; keeping
  // them out of the vector path trims its working set.
  void reserve_staging(std::size_t n) {
    if (t_of.size() < n) {
      t_of.resize(n);
      x_of.resize(n);
    }
  }
};

// Replays route() as pure rank arithmetic on the set bits.  Stage 1 sends
// the t-th valid of column c to row t; the transpose hands row t its labels
// in ascending column order, so a stable counting sort by t reproduces the
// stage-2 pin order; the barrel shifter adds rev(t) to the stage-2 rank; and
// stage 3 ranks each destination column by ascending row, which is exactly
// the t-ascending CSR walk.  O(n/64 + k) per pattern.
SwitchRouting revsort_route_kernel(const BitVec& valid, std::size_t m,
                                   std::size_t v, unsigned q,
                                   const std::vector<std::uint32_t>& rev,
                                   RevsortScratch& s) {
  const std::size_t n = valid.size();
  s.reserve_staging(n);
  std::fill(s.col_count.begin(), s.col_count.end(), 0u);
  std::fill(s.row_count.begin(), s.row_count.end(), 0u);
  std::fill(s.col3_count.begin(), s.col3_count.end(), 0u);

  // Stage 1: rank each set bit within its column (= its stage-1 output row).
  std::size_t k = 0;
  const auto& words = valid.words();
  for (std::size_t wi = 0; wi < words.size(); ++wi) {
    std::uint64_t w = words[wi];
    while (w != 0) {
      const std::uint32_t x = static_cast<std::uint32_t>(
          wi * 64 + static_cast<std::size_t>(std::countr_zero(w)));
      w &= w - 1;
      const std::uint32_t t = s.col_count[x >> q]++;
      s.t_of[k] = t;
      s.x_of[k] = x;
      ++s.row_count[t];
      ++k;
    }
  }

  // Stable counting sort by row: within a row, labels keep ascending-column
  // order (ascending x), matching the stage-2 chip's pin order.
  s.row_start[0] = 0;
  for (std::size_t t = 0; t < v; ++t) {
    s.row_start[t + 1] = s.row_start[t] + s.row_count[t];
    s.cursor[t] = s.row_start[t];
  }
  for (std::size_t idx = 0; idx < k; ++idx) {
    s.row_x[s.cursor[s.t_of[idx]]++] = s.x_of[idx];
  }

  // Stages 2 + 3: stage-2 rank j2 is the bucket offset; the shifter moves it
  // to column (rev(t) + j2) mod v; stage 3 ranks that column by ascending t.
  SwitchRouting out;
  out.output_of_input.assign(n, -1);
  out.input_of_output.assign(m, -1);
  for (std::size_t t = 0; t < v; ++t) {
    for (std::uint32_t idx = s.row_start[t]; idx < s.row_start[t + 1]; ++idx) {
      const std::uint32_t j2 = idx - s.row_start[t];
      const std::uint32_t j3 = (rev[t] + j2) & static_cast<std::uint32_t>(v - 1);
      const std::size_t pos = static_cast<std::size_t>(s.col3_count[j3]++) * v + j3;
      if (pos < m) {
        const std::uint32_t x = s.row_x[idx];
        out.input_of_output[pos] = static_cast<std::int32_t>(x);
        out.output_of_input[x] = static_cast<std::int32_t>(pos);
      }
    }
  }
  return out;
}

#ifdef PCS_REVSORT_AVX512

bool cpu_has_avx512f() {
  static const bool ok = __builtin_cpu_supports("avx512f");
  return ok;
}

// AVX-512 lane-parallel variant of the counting kernel, used when each
// matrix column is a whole number of 64-bit words (v >= 64).  Three ideas:
//  - within a column the t-th set bit goes to row t, so the CSR cursors a
//    column consumes form one contiguous block: compress the set-bit labels
//    straight out of the mask word and scatter them in 16-lane groups;
//  - rows are walked in two wrap-free segments, so the stage-3 column fills
//    sit at consecutive addresses and need plain loads/stores, not gathers;
//  - only the two routing-table writes are true scatters, and both are
//    conflict-free within a row (distinct outputs, distinct inputs).
__attribute__((target("avx512f")))
SwitchRouting revsort_route_kernel_avx512(const BitVec& valid, std::size_t m,
                                          std::size_t v, unsigned q,
                                          const std::vector<std::uint32_t>& rev,
                                          RevsortScratch& s) {
  const std::size_t n = valid.size();
  const auto& words = valid.words();
  const std::size_t wpc = v / 64;  // words per column; exact since v >= 64
  // Column populations feed a histogram; row t of the sorted matrix has one
  // slot per column with more than t valids, so suffix sums of the histogram
  // give the row lengths and a prefix scan the CSR offsets.
  std::uint32_t* histo = s.col_count.data();
  std::memset(histo, 0, (v + 1) * sizeof(std::uint32_t));
  std::size_t maxc = 0;
  for (std::size_t c = 0; c < v; ++c) {
    std::uint32_t cnt = 0;
    for (std::size_t j = 0; j < wpc; ++j) {
      cnt += static_cast<std::uint32_t>(std::popcount(words[c * wpc + j]));
    }
    ++histo[cnt];
    if (cnt > maxc) maxc = cnt;
  }
  {
    std::uint32_t acc = 0;
    for (std::size_t t = maxc; t-- > 0;) {
      acc += histo[t + 1];
      s.row_start[t] = acc;  // row length, rewritten to the offset below
    }
    std::uint32_t start = 0;
    for (std::size_t t = 0; t < maxc; ++t) {
      const std::uint32_t len = s.row_start[t];
      s.row_start[t] = start;
      s.cursor[t] = start;
      start += len;
    }
    s.row_start[maxc] = start;
  }
  const __m512i iota =
      _mm512_set_epi32(15, 14, 13, 12, 11, 10, 9, 8, 7, 6, 5, 4, 3, 2, 1, 0);
  const __m512i one = _mm512_set1_epi32(1);
  // Counting sort without the label staging pass: compress each column's
  // set-bit labels out of the valid words and scatter them to cursor[t]
  // (t = in-column rank, so the cursor block is a contiguous load).
  std::uint32_t* row_x = s.row_x.data();
  std::uint32_t* cursor = s.cursor.data();
  for (std::size_t c = 0; c < v; ++c) {
    std::uint32_t fill = 0;
    const std::uint32_t base = static_cast<std::uint32_t>(c * v);
    for (std::size_t j = 0; j < wpc; ++j) {
      const std::uint64_t w = words[c * wpc + j];
      if (w == 0) continue;
      const std::uint32_t wb = base + static_cast<std::uint32_t>(j * 64);
      for (unsigned h = 0; h < 4; ++h) {
        const __mmask16 mk = static_cast<__mmask16>((w >> (16 * h)) & 0xFFFF);
        if (!mk) continue;
        const unsigned pc = static_cast<unsigned>(std::popcount(
            static_cast<std::uint32_t>(mk)));
        const __m512i xv = _mm512_maskz_compress_epi32(
            mk, _mm512_add_epi32(
                    _mm512_set1_epi32(static_cast<int>(wb + 16 * h)), iota));
        const __m512i idx = _mm512_loadu_si512(cursor + fill);
        const __mmask16 lanes = static_cast<__mmask16>((1u << pc) - 1);
        _mm512_mask_i32scatter_epi32(row_x, lanes, idx, xv, 4);
        fill += pc;
      }
    }
    // Advance the one cursor slot per row this column consumed.
    for (std::uint32_t t = 0; t < fill; t += 16) {
      const __mmask16 mt =
          static_cast<__mmask16>((1u << std::min(16u, fill - t)) - 1);
      _mm512_mask_storeu_epi32(
          cursor + t, mt,
          _mm512_add_epi32(_mm512_maskz_loadu_epi32(mt, cursor + t), one));
    }
  }
  // Stages 2+3: the shifter maps stage-2 rank j2 to column (rev(t)+j2) mod v.
  // Splitting each row at the wrap point keeps j3 consecutive, so the stage-3
  // fills are contiguous loads/stores and only the routing tables scatter.
  // Each row runs as two passes: first compute every position into pos_buf
  // (scratch-only traffic), then scatter from sequential reads.  Interleaving
  // the col3 loads with the table scatters instead makes the kernel hostage
  // to 4K store-to-load aliasing against the caller-controlled output
  // addresses, which more than doubled its time for unlucky heap layouts.
  SwitchRouting out;
  out.output_of_input.assign(n, -1);
  out.input_of_output.assign(m, -1);
  std::uint32_t* col3 = s.col3_count.data();
  std::uint32_t* pos_buf = s.pos_buf.data();
  std::memset(col3, 0, v * sizeof(std::uint32_t));
  std::int32_t* in_out = out.input_of_output.data();
  std::int32_t* out_in = out.output_of_input.data();
  const __m512i vm = _mm512_set1_epi32(static_cast<int>(m));
  for (std::size_t t = 0; t < maxc; ++t) {
    const std::uint32_t rt = rev[t];
    const std::uint32_t len = s.row_start[t + 1] - s.row_start[t];
    const std::uint32_t* row = row_x + s.row_start[t];
    const std::uint32_t seg0 = std::min(len, static_cast<std::uint32_t>(v) - rt);
    for (unsigned seg = 0; seg < 2; ++seg) {
      const std::uint32_t j2lo = seg == 0 ? 0 : seg0;
      const std::uint32_t j2hi = seg == 0 ? seg0 : len;
      const std::uint32_t j3base = seg == 0 ? rt : 0;
      for (std::uint32_t j2 = j2lo; j2 < j2hi; j2 += 16) {
        const std::uint32_t live = std::min(16u, j2hi - j2);
        const __mmask16 mt = static_cast<__mmask16>((1u << live) - 1);
        const std::uint32_t j3c = j3base + (j2 - j2lo);
        const __m512i fillv = _mm512_maskz_loadu_epi32(mt, col3 + j3c);
        const __m512i j3v =
            _mm512_add_epi32(_mm512_set1_epi32(static_cast<int>(j3c)), iota);
        const __m512i posv = _mm512_add_epi32(
            _mm512_slli_epi32(fillv, static_cast<int>(q)), j3v);
        _mm512_mask_storeu_epi32(pos_buf + j2, mt, posv);
        _mm512_mask_storeu_epi32(col3 + j3c, mt, _mm512_add_epi32(fillv, one));
      }
    }
    for (std::uint32_t j2 = 0; j2 < len; j2 += 16) {
      const std::uint32_t live = std::min(16u, len - j2);
      const __mmask16 mt = static_cast<__mmask16>((1u << live) - 1);
      const __m512i xv = _mm512_maskz_loadu_epi32(mt, row + j2);
      const __m512i posv = _mm512_maskz_loadu_epi32(mt, pos_buf + j2);
      const __mmask16 ok = _mm512_mask_cmplt_epu32_mask(mt, posv, vm);
      _mm512_mask_i32scatter_epi32(in_out, ok, posv, xv, 4);
      _mm512_mask_i32scatter_epi32(out_in, ok, xv, posv, 4);
    }
  }
  return out;
}

#else

bool cpu_has_avx512f() { return false; }

#endif  // PCS_REVSORT_AVX512

}  // namespace

std::vector<SwitchRouting> RevsortSwitch::route_batch(
    const std::vector<BitVec>& valids) const {
  const unsigned q = exact_log2(side_);
  // The vector kernel needs whole valid-words per matrix column.
  const bool vectorize = cpu_has_avx512f() && side_ >= 64;
  std::vector<SwitchRouting> out(valids.size());
  parallel_for_chunks(0, valids.size(), [&](std::size_t lo, std::size_t hi) {
    RevsortScratch scratch(side_, n_);
    for (std::size_t i = lo; i < hi; ++i) {
      PCS_REQUIRE(valids[i].size() == n_,
                  "RevsortSwitch::route_batch width: pattern " << i << " of "
                  << valids.size() << " has " << valids[i].size()
                  << " bits, switch has n=" << n_);
#ifdef PCS_REVSORT_AVX512
      if (vectorize) {
        out[i] = revsort_route_kernel_avx512(valids[i], m_, side_, q, rev_, scratch);
        continue;
      }
#else
      (void)vectorize;
#endif
      out[i] = revsort_route_kernel(valids[i], m_, side_, q, rev_, scratch);
    }
  });
  return out;
}

std::vector<BitVec> RevsortSwitch::nearsorted_batch(
    const std::vector<BitVec>& valids) const {
  std::vector<BitVec> out(valids.size());
  const std::size_t blocks = ceil_div(valids.size(), sortnet::LaneBatch::kLanes);
  parallel_for(0, blocks, [&](std::size_t b) {
    const std::size_t first = b * sortnet::LaneBatch::kLanes;
    const std::size_t count =
        std::min(sortnet::LaneBatch::kLanes, valids.size() - first);
    sortnet::LaneBatch lanes(n_);
    lanes.load(valids, first, count);
    lanes.concentrate_segments(side_);        // stage 1
    lanes.permute(stage1_to_2_.dests());      // transpose wiring
    lanes.concentrate_segments(side_);        // stage 2
    lanes.permute(stage2_to_3_.dests());      // shifters + transpose
    lanes.concentrate_segments(side_);        // stage 3
    lanes.permute(stage1_to_2_.dests());      // row-major read-out
    lanes.store(out, first);
  });
  return out;
}

BitVec RevsortSwitch::nearsorted_valid_bits(const BitVec& valid) const {
  PCS_REQUIRE(valid.size() == n_,
              "RevsortSwitch::nearsorted_valid_bits width: pattern has "
                  << valid.size() << " bits, switch has n=" << n_);
  LabelMesh mesh = LabelMesh::from_col_major_valid(valid, side_, side_);
  mesh.concentrate_columns();
  mesh.concentrate_rows();
  mesh.rotate_rows_bit_reversed();
  mesh.concentrate_columns();
  return mesh.valid_bits().to_row_major();
}

std::string RevsortSwitch::name() const {
  std::ostringstream os;
  os << "revsort(" << n_ << "," << m_ << ")";
  return os.str();
}

Bom RevsortSwitch::bill_of_materials() const {
  // Figure 4: stacks 1 and 3 carry one sqrt(n)-by-sqrt(n) hyperconcentrator
  // per board; stack 2 boards add a sqrt(n)-bit barrel shifter with
  // ceil(lg sqrt(n)) hardwired control bits.
  const std::size_t v = side_;
  const std::size_t lg_v = v <= 1 ? 0 : ceil_log2(v);
  Bom bom;
  bom.items.push_back(ChipSpec{ChipKind::kHyperconcentrator, v, 2 * v, 0, 3 * v});
  bom.items.push_back(ChipSpec{ChipKind::kBarrelShifter, v, 2 * v, lg_v, v});
  return bom;
}

}  // namespace pcs::sw
