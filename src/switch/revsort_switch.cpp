#include "switch/revsort_switch.hpp"

#include <algorithm>

#include "hyper/hyperconcentrator.hpp"
#include "util/assert.hpp"
#include "util/mathutil.hpp"

namespace pcs::sw {

RevsortSwitch::RevsortSwitch(std::size_t n, std::size_t m)
    : n_(n), m_(m), exec_(plan::compile_revsort_plan(n, m)) {
  side_ = exec_.plan().fp_side;
  stage1_to_2_ = transpose_wiring(side_);
  stage2_to_3_ = rev_rotate_transpose_wiring(side_);
}

SwitchRouting RevsortSwitch::finish_row_major(
    const std::vector<std::int32_t>& row_major) const {
  SwitchRouting r;
  r.output_of_input.assign(n_, -1);
  r.input_of_output.assign(m_, -1);
  for (std::size_t pos = 0; pos < m_; ++pos) {
    std::int32_t src = row_major[pos];
    if (src >= 0) {
      r.input_of_output[pos] = src;
      r.output_of_input[static_cast<std::size_t>(src)] =
          static_cast<std::int32_t>(pos);
    }
  }
  return r;
}

SwitchRouting RevsortSwitch::route_via_wiring(const BitVec& valid) const {
  PCS_REQUIRE(valid.size() == n_, "RevsortSwitch::route_via_wiring width");
  const std::size_t v = side_;
  // Input x drives stage-1 chip x / v, pin x % v: flat wire index x.
  std::vector<std::int32_t> wires(n_, hyper::kIdle);
  for (std::size_t x = 0; x < n_; ++x) {
    if (valid.get(x)) wires[x] = static_cast<std::int32_t>(x);
  }
  auto concentrate_chips = [&](std::vector<std::int32_t>& w) {
    for (std::size_t chip = 0; chip < v; ++chip) {
      std::vector<std::int32_t> slice(w.begin() + static_cast<std::ptrdiff_t>(chip * v),
                                      w.begin() + static_cast<std::ptrdiff_t>((chip + 1) * v));
      hyper::stable_concentrate(slice);
      std::copy(slice.begin(), slice.end(),
                w.begin() + static_cast<std::ptrdiff_t>(chip * v));
    }
  };
  concentrate_chips(wires);                 // stage 1 chips
  wires = stage1_to_2_.apply(wires);        // stage 1 -> 2 wiring
  concentrate_chips(wires);                 // stage 2 chips
  wires = stage2_to_3_.apply(wires);        // shifters + wiring
  concentrate_chips(wires);                 // stage 3 chips
  // Output wires are taken row-major: matrix entry (i, j) sits on stage-3
  // chip j, pin i (flat j*v + i) and is output position i*v + j.
  std::vector<std::int32_t> row_major(n_, hyper::kIdle);
  for (std::size_t j = 0; j < v; ++j) {
    for (std::size_t i = 0; i < v; ++i) {
      row_major[i * v + j] = wires[j * v + i];
    }
  }
  return finish_row_major(row_major);
}

Bom RevsortSwitch::bill_of_materials() const {
  // Figure 4: stacks 1 and 3 carry one sqrt(n)-by-sqrt(n) hyperconcentrator
  // per board; stack 2 boards add a sqrt(n)-bit barrel shifter with
  // ceil(lg sqrt(n)) hardwired control bits.
  const std::size_t v = side_;
  const std::size_t lg_v = v <= 1 ? 0 : ceil_log2(v);
  Bom bom;
  bom.items.push_back(ChipSpec{ChipKind::kHyperconcentrator, v, 2 * v, 0, 3 * v});
  bom.items.push_back(ChipSpec{ChipKind::kBarrelShifter, v, 2 * v, lg_v, v});
  return bom;
}

}  // namespace pcs::sw
