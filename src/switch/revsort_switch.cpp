#include "switch/revsort_switch.hpp"

#include <sstream>

#include "hyper/hyperconcentrator.hpp"
#include "sortnet/revsort.hpp"
#include "switch/label_mesh.hpp"
#include "util/assert.hpp"
#include "util/mathutil.hpp"

namespace pcs::sw {

RevsortSwitch::RevsortSwitch(std::size_t n, std::size_t m) : n_(n), m_(m) {
  PCS_REQUIRE(n > 0, "RevsortSwitch n");
  side_ = isqrt(n);
  PCS_REQUIRE(side_ * side_ == n, "RevsortSwitch n must be a perfect square");
  PCS_REQUIRE(is_pow2(side_), "RevsortSwitch sqrt(n) must be a power of two");
  PCS_REQUIRE(m >= 1 && m <= n, "RevsortSwitch m range");
}

std::size_t RevsortSwitch::epsilon_bound() const {
  // Dirty rows after Algorithm 1, times the row width.
  return sortnet::algorithm1_dirty_row_bound(side_) * side_;
}

SwitchRouting RevsortSwitch::finish_row_major(
    const std::vector<std::int32_t>& row_major) const {
  SwitchRouting r;
  r.output_of_input.assign(n_, -1);
  r.input_of_output.assign(m_, -1);
  for (std::size_t pos = 0; pos < m_; ++pos) {
    std::int32_t src = row_major[pos];
    if (src >= 0) {
      r.input_of_output[pos] = src;
      r.output_of_input[static_cast<std::size_t>(src)] =
          static_cast<std::int32_t>(pos);
    }
  }
  return r;
}

SwitchRouting RevsortSwitch::route(const BitVec& valid) const {
  PCS_REQUIRE(valid.size() == n_, "RevsortSwitch::route width");
  // Inputs attach chip-major: input x enters stage-1 chip x / side at pin
  // x % side, i.e. matrix position (x % side, x / side).
  LabelMesh mesh = LabelMesh::from_col_major_valid(valid, side_, side_);
  mesh.concentrate_columns();        // stage 1
  mesh.concentrate_rows();           // stage 2 (after the transpose wiring)
  mesh.rotate_rows_bit_reversed();   // on-board barrel shifters
  mesh.concentrate_columns();        // stage 3 (after the transpose wiring)
  return finish_row_major(mesh.to_row_major());
}

SwitchRouting RevsortSwitch::route_via_wiring(const BitVec& valid) const {
  PCS_REQUIRE(valid.size() == n_, "RevsortSwitch::route_via_wiring width");
  const std::size_t v = side_;
  // Input x drives stage-1 chip x / v, pin x % v: flat wire index x.
  std::vector<std::int32_t> wires(n_, hyper::kIdle);
  for (std::size_t x = 0; x < n_; ++x) {
    if (valid.get(x)) wires[x] = static_cast<std::int32_t>(x);
  }
  auto concentrate_chips = [&](std::vector<std::int32_t>& w) {
    for (std::size_t chip = 0; chip < v; ++chip) {
      std::vector<std::int32_t> slice(w.begin() + static_cast<std::ptrdiff_t>(chip * v),
                                      w.begin() + static_cast<std::ptrdiff_t>((chip + 1) * v));
      hyper::stable_concentrate(slice);
      std::copy(slice.begin(), slice.end(),
                w.begin() + static_cast<std::ptrdiff_t>(chip * v));
    }
  };
  concentrate_chips(wires);                               // stage 1 chips
  wires = transpose_wiring(v).apply(wires);               // stage 1 -> 2 wiring
  concentrate_chips(wires);                               // stage 2 chips
  wires = rev_rotate_transpose_wiring(v).apply(wires);    // shifters + wiring
  concentrate_chips(wires);                               // stage 3 chips
  // Output wires are taken row-major: matrix entry (i, j) sits on stage-3
  // chip j, pin i (flat j*v + i) and is output position i*v + j.
  std::vector<std::int32_t> row_major(n_, hyper::kIdle);
  for (std::size_t j = 0; j < v; ++j) {
    for (std::size_t i = 0; i < v; ++i) {
      row_major[i * v + j] = wires[j * v + i];
    }
  }
  return finish_row_major(row_major);
}

BitVec RevsortSwitch::nearsorted_valid_bits(const BitVec& valid) const {
  PCS_REQUIRE(valid.size() == n_, "RevsortSwitch::nearsorted_valid_bits width");
  LabelMesh mesh = LabelMesh::from_col_major_valid(valid, side_, side_);
  mesh.concentrate_columns();
  mesh.concentrate_rows();
  mesh.rotate_rows_bit_reversed();
  mesh.concentrate_columns();
  return mesh.valid_bits().to_row_major();
}

std::string RevsortSwitch::name() const {
  std::ostringstream os;
  os << "revsort(" << n_ << "," << m_ << ")";
  return os.str();
}

Bom RevsortSwitch::bill_of_materials() const {
  // Figure 4: stacks 1 and 3 carry one sqrt(n)-by-sqrt(n) hyperconcentrator
  // per board; stack 2 boards add a sqrt(n)-bit barrel shifter with
  // ceil(lg sqrt(n)) hardwired control bits.
  const std::size_t v = side_;
  const std::size_t lg_v = v <= 1 ? 0 : ceil_log2(v);
  Bom bom;
  bom.items.push_back(ChipSpec{ChipKind::kHyperconcentrator, v, 2 * v, 0, 3 * v});
  bom.items.push_back(ChipSpec{ChipKind::kBarrelShifter, v, 2 * v, lg_v, v});
  return bom;
}

}  // namespace pcs::sw
