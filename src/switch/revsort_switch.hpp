// The Revsort-based multichip partial concentrator switch (paper Section 4).
//
// Construction: three stages of sqrt(n)-by-sqrt(n) hyperconcentrator chips
// over an underlying sqrt(n) x sqrt(n) matrix of valid bits:
//   stage 1: chips = columns, fully sorting each column;
//   wiring:  transpose;
//   stage 2: chips = rows, fully sorting each row, followed on each board by
//            a barrel shifter hardwired to rotate row i right by rev(i);
//   wiring:  transpose (the rotation happened on-board);
//   stage 3: chips = columns again.
// The output wires are the first m matrix positions in row-major order.
//
// By Theorem 3 this is an (n, m, 1 - O(n^{3/4}/m)) partial concentrator:
// Algorithm 1 leaves at most 2*ceil(n^{1/4}) - 1 dirty rows, so the n-wide
// output is epsilon-nearsorted with
//   epsilon = (2*ceil(n^{1/4}) - 1) * sqrt(n),
// and Lemma 2 turns that into the load ratio 1 - epsilon/m.
//
// route() simulates the switch on a labeled mesh (fast path);
// route_via_wiring() simulates the hardware literally -- per-chip stable
// concentrations joined by the explicit wiring permutations -- and is proven
// equal to route() by the tests.
#pragma once

#include "switch/chip.hpp"
#include "switch/concentrator.hpp"
#include "switch/wiring.hpp"

namespace pcs::sw {

class RevsortSwitch : public ConcentratorSwitch {
 public:
  /// n must be a fourth power of two in the sense side = sqrt(n) = 2^q;
  /// m <= n.
  RevsortSwitch(std::size_t n, std::size_t m);

  std::size_t inputs() const override { return n_; }
  std::size_t outputs() const override { return m_; }
  std::size_t epsilon_bound() const override;
  SwitchRouting route(const BitVec& valid) const override;
  BitVec nearsorted_valid_bits(const BitVec& valid) const override;

  /// Word-parallel batch fast paths.  route_batch replays the three stable
  /// concentrations as a counting kernel over the set bits (O(n/64 + k) per
  /// pattern against the cached route plan); nearsorted_batch pushes 64
  /// patterns per word through the mesh with LaneBatch.  Both are
  /// bit-identical to the per-pattern methods (fuzz-tested).
  std::vector<SwitchRouting> route_batch(
      const std::vector<BitVec>& valids) const override;
  std::vector<BitVec> nearsorted_batch(
      const std::vector<BitVec>& valids) const override;

  std::string name() const override;

  std::size_t side() const noexcept { return side_; }

  /// Hardware-faithful simulation: per-chip concentrations joined by the
  /// explicit inter-stage wiring permutations of wiring.hpp.
  SwitchRouting route_via_wiring(const BitVec& valid) const;

  /// Number of hyperconcentrator chips a message passes through (3).
  static constexpr std::size_t kChipPasses = 3;

  /// Chip inventory: 3*sqrt(n) hyperconcentrators + sqrt(n) barrel shifters.
  Bom bill_of_materials() const;

 private:
  SwitchRouting finish_row_major(const std::vector<std::int32_t>& row_major) const;

  std::size_t n_;
  std::size_t m_;
  std::size_t side_;
  // Cached route plan: the inter-stage wirings and rev() table are fixed by
  // the topology, so they are derived once here instead of per route.  The
  // stage 1 -> 2 transpose doubles as the row-major output read-out.
  Permutation stage1_to_2_;
  Permutation stage2_to_3_;
  std::vector<std::uint32_t> rev_;
};

}  // namespace pcs::sw
