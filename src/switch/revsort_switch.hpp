// The Revsort-based multichip partial concentrator switch (paper Section 4).
//
// Construction: three stages of sqrt(n)-by-sqrt(n) hyperconcentrator chips
// over an underlying sqrt(n) x sqrt(n) matrix of valid bits:
//   stage 1: chips = columns, fully sorting each column;
//   wiring:  transpose;
//   stage 2: chips = rows, fully sorting each row, followed on each board by
//            a barrel shifter hardwired to rotate row i right by rev(i);
//   wiring:  transpose (the rotation happened on-board);
//   stage 3: chips = columns again.
// The output wires are the first m matrix positions in row-major order.
//
// By Theorem 3 this is an (n, m, 1 - O(n^{3/4}/m)) partial concentrator:
// Algorithm 1 leaves at most 2*ceil(n^{1/4}) - 1 dirty rows, so the n-wide
// output is epsilon-nearsorted with
//   epsilon = (2*ceil(n^{1/4}) - 1) * sqrt(n),
// and Lemma 2 turns that into the load ratio 1 - epsilon/m.
//
// The class is a thin wrapper over the staged-plan IR: the constructor
// compiles plan::compile_revsort_plan(n, m) and every ConcentratorSwitch
// virtual delegates to the shared PlanExecutor (which carries the counting
// kernel and LaneBatch fast paths).  route_via_wiring() remains an
// *independent* hardware-literal simulation -- per-chip stable
// concentrations joined by the explicit wiring permutations -- proven equal
// to the executor by the tests.
#pragma once

#include "plan/compile.hpp"
#include "plan/plan_executor.hpp"
#include "switch/chip.hpp"
#include "switch/concentrator.hpp"
#include "switch/wiring.hpp"

namespace pcs::sw {

class RevsortSwitch : public ConcentratorSwitch {
 public:
  /// n must be a fourth power of two in the sense side = sqrt(n) = 2^q;
  /// m <= n.
  RevsortSwitch(std::size_t n, std::size_t m);

  std::size_t inputs() const override { return n_; }
  std::size_t outputs() const override { return m_; }
  std::size_t epsilon_bound() const override { return exec_.plan().epsilon; }
  SwitchRouting route(const BitVec& valid) const override {
    return exec_.route(valid);
  }
  BitVec nearsorted_valid_bits(const BitVec& valid) const override {
    return exec_.nearsorted_valid_bits(valid);
  }

  /// Word-parallel batch fast paths, provided by the plan executor:
  /// route_batch replays the three stable concentrations as a counting
  /// kernel over the set bits (O(n/64 + k) per pattern, AVX-512 variant on
  /// capable CPUs); nearsorted_batch pushes 64 patterns per word through
  /// the staged pipeline with LaneBatch.  Both are bit-identical to the
  /// per-pattern methods (fuzz-tested).
  std::vector<SwitchRouting> route_batch(
      const std::vector<BitVec>& valids) const override {
    return exec_.route_batch(valids);
  }
  std::vector<BitVec> nearsorted_batch(
      const std::vector<BitVec>& valids) const override {
    return exec_.nearsorted_batch(valids);
  }

  std::string name() const override { return exec_.plan().name; }

  std::size_t side() const noexcept { return side_; }

  /// The compiled plan this switch executes.
  const plan::SwitchPlan& plan() const noexcept { return exec_.plan(); }

  /// Hardware-faithful simulation: per-chip concentrations joined by the
  /// explicit inter-stage wiring permutations of wiring.hpp.  Independent
  /// of the plan executor; the tests prove the two agree.
  SwitchRouting route_via_wiring(const BitVec& valid) const;

  /// Number of hyperconcentrator chips a message passes through (3).
  static constexpr std::size_t kChipPasses = 3;

  /// Chip inventory: 3*sqrt(n) hyperconcentrators + sqrt(n) barrel shifters.
  Bom bill_of_materials() const;

 private:
  SwitchRouting finish_row_major(const std::vector<std::int32_t>& row_major) const;

  std::size_t n_;
  std::size_t m_;
  plan::PlanExecutor exec_;
  std::size_t side_;
  // Wirings for the independent route_via_wiring simulation.  The stage
  // 1 -> 2 transpose doubles as the row-major output read-out.
  Permutation stage1_to_2_;
  Permutation stage2_to_3_;
};

}  // namespace pcs::sw
