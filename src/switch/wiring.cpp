#include "switch/wiring.hpp"

#include <numeric>

#include "util/assert.hpp"
#include "util/mathutil.hpp"

namespace pcs::sw {

Permutation::Permutation(std::vector<std::uint32_t> dest) : dest_(std::move(dest)) {
  PCS_REQUIRE(is_bijection(), "Permutation must be a bijection");
}

Permutation Permutation::identity(std::size_t n) {
  std::vector<std::uint32_t> d(n);
  std::iota(d.begin(), d.end(), 0u);
  return Permutation(std::move(d));
}

std::uint32_t Permutation::dest(std::size_t i) const {
  PCS_REQUIRE(i < dest_.size(), "Permutation::dest range");
  return dest_[i];
}

bool Permutation::is_bijection() const {
  std::vector<bool> seen(dest_.size(), false);
  for (std::uint32_t d : dest_) {
    if (d >= dest_.size() || seen[d]) return false;
    seen[d] = true;
  }
  return true;
}

Permutation Permutation::inverse() const {
  std::vector<std::uint32_t> inv(dest_.size());
  for (std::size_t i = 0; i < dest_.size(); ++i) {
    inv[dest_[i]] = static_cast<std::uint32_t>(i);
  }
  return Permutation(std::move(inv));
}

Permutation Permutation::then(const Permutation& next) const {
  PCS_REQUIRE(size() == next.size(), "Permutation::then size mismatch");
  std::vector<std::uint32_t> d(size());
  for (std::size_t i = 0; i < size(); ++i) d[i] = next.dest_[dest_[i]];
  return Permutation(std::move(d));
}

std::vector<std::int32_t> Permutation::apply(const std::vector<std::int32_t>& in) const {
  PCS_REQUIRE(in.size() == size(), "Permutation::apply size mismatch");
  std::vector<std::int32_t> out(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) out[dest_[i]] = in[i];
  return out;
}

BitVec Permutation::apply_bits(const BitVec& in) const {
  PCS_REQUIRE(in.size() == size(), "Permutation::apply_bits size mismatch");
  BitVec out(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) out.set(dest_[i], in.get(i));
  return out;
}

std::uint32_t wire_index(std::size_t chip, std::size_t pin, std::size_t width) {
  return static_cast<std::uint32_t>(chip * width + pin);
}

Permutation transpose_wiring(std::size_t side) {
  std::vector<std::uint32_t> dest(side * side);
  for (std::size_t chip = 0; chip < side; ++chip) {    // stage-1 chip j (column j)
    for (std::size_t pin = 0; pin < side; ++pin) {     // pin i (row i)
      dest[wire_index(chip, pin, side)] = wire_index(pin, chip, side);
    }
  }
  return Permutation(std::move(dest));
}

Permutation rev_rotate_transpose_wiring(std::size_t side) {
  PCS_REQUIRE(is_pow2(side), "rev_rotate_transpose_wiring side must be 2^q");
  const unsigned q = exact_log2(side);
  std::vector<std::uint32_t> dest(side * side);
  for (std::size_t chip = 0; chip < side; ++chip) {    // stage-2 chip i (row i)
    for (std::size_t pin = 0; pin < side; ++pin) {     // pin j (column j)
      std::size_t new_col = (static_cast<std::size_t>(bit_reverse(chip, q)) + pin) % side;
      dest[wire_index(chip, pin, side)] = wire_index(new_col, chip, side);
    }
  }
  return Permutation(std::move(dest));
}

Permutation cm_to_rm_wiring(std::size_t r, std::size_t s) {
  std::vector<std::uint32_t> dest(r * s);
  for (std::size_t chip = 0; chip < s; ++chip) {       // stage-1 chip j (column j)
    for (std::size_t pin = 0; pin < r; ++pin) {        // pin i (row i)
      std::size_t x = r * chip + pin;                  // column-major position
      dest[wire_index(chip, pin, r)] = wire_index(x % s, x / s, r);
    }
  }
  return Permutation(std::move(dest));
}

Permutation row_major_readout_wiring(std::size_t r, std::size_t s) {
  std::vector<std::uint32_t> dest(r * s);
  for (std::size_t chip = 0; chip < s; ++chip) {       // last-stage chip j (column j)
    for (std::size_t pin = 0; pin < r; ++pin) {        // pin i (row i)
      dest[wire_index(chip, pin, r)] = static_cast<std::uint32_t>(pin * s + chip);
    }
  }
  return Permutation(std::move(dest));
}

Permutation reverse_odd_rows_wiring(std::size_t side) {
  std::vector<std::uint32_t> dest(side * side);
  for (std::size_t chip = 0; chip < side; ++chip) {
    for (std::size_t pin = 0; pin < side; ++pin) {
      const std::size_t out_pin = chip % 2 == 1 ? side - 1 - pin : pin;
      dest[wire_index(chip, pin, side)] = wire_index(chip, out_pin, side);
    }
  }
  return Permutation(std::move(dest));
}

}  // namespace pcs::sw
