// Inter-stage wiring permutations (the passive part of the multichip
// switches) and the flat wire-numbering conventions that connect chips.
//
// Between two stages of chips there are n wires.  A wire is identified
// either by its flat index or by (chip, pin): stage-l chip c, pin w is flat
// index c * width + w, where width is the chip's I/O width.  The paper's
// wiring rules (Sections 4 and 5):
//
//   Revsort stage 1 -> 2:   Y_{1,j,i} -> X_{2,i,j}                (transpose)
//   Revsort stage 2 -> 3:   Y_{2,i,j} -> X_{3,(rev(i)+j) mod v, i}
//                               (rotate row i right by rev(i), then transpose;
//                                v = sqrt(n))
//   Columnsort stage 1 -> 2: Y_{1,j,i} -> X_{2,(rj+i) mod s, floor((rj+i)/s)}
//                               (column-major -> row-major conversion)
#pragma once

#include <cstdint>
#include <vector>

#include "util/bitvec.hpp"

namespace pcs::sw {

/// A permutation of n wires: dest()[i] is where wire i's signal goes.
class Permutation {
 public:
  Permutation() = default;
  explicit Permutation(std::vector<std::uint32_t> dest);

  /// The identity on n wires.
  static Permutation identity(std::size_t n);

  std::size_t size() const noexcept { return dest_.size(); }
  std::uint32_t dest(std::size_t i) const;
  const std::vector<std::uint32_t>& dests() const noexcept { return dest_; }

  /// True iff dest is a bijection on [0, n).
  bool is_bijection() const;

  Permutation inverse() const;

  /// Composition: (this then next), i.e. result.dest(i) = next.dest(this->dest(i)).
  Permutation then(const Permutation& next) const;

  /// Apply to a vector of slot labels: out[dest(i)] = in[i].
  std::vector<std::int32_t> apply(const std::vector<std::int32_t>& in) const;

  /// Apply to a bit vector: out[dest(i)] = in[i].
  BitVec apply_bits(const BitVec& in) const;

  bool operator==(const Permutation& other) const noexcept = default;

 private:
  std::vector<std::uint32_t> dest_;
};

/// Flat wire index of (chip, pin) with chips of the given width.
std::uint32_t wire_index(std::size_t chip, std::size_t pin, std::size_t width);

/// Revsort stages 1 -> 2: matrix transpose on a side-by-side mesh.
/// Chip j pin i (matrix entry row i, col j) goes to chip i pin j.
Permutation transpose_wiring(std::size_t side);

/// Revsort stages 2 -> 3: rotate row i right by rev(i), then transpose.
/// Chip i pin j goes to chip (rev(i)+j) mod side, pin i.
/// Precondition: side is a power of two.
Permutation rev_rotate_transpose_wiring(std::size_t side);

/// Columnsort stages 1 -> 2 on an r-by-s mesh: the wire at column-major
/// position x = r*chip + pin goes to chip (x mod s), pin floor(x / s).
Permutation cm_to_rm_wiring(std::size_t r, std::size_t s);

/// Final-stage read-out of an r-by-s mesh in row-major order: last-stage
/// chip j (column j) pin i (row i) feeds output position i*s + j.  With
/// r == s this is transpose_wiring(r).
Permutation row_major_readout_wiring(std::size_t r, std::size_t s);

/// Pin reversal on every odd chip: chip c pin p goes to chip c, pin
/// side-1-p when c is odd, and stays put when c is even.  Self-inverse.
/// Sandwiching a normal front-concentrate between this wiring and its
/// inverse realizes a Shearsort alternating row phase (odd rows
/// concentrate right, preserving left-to-right order) with plain chips.
Permutation reverse_odd_rows_wiring(std::size_t side);

}  // namespace pcs::sw
