#include "traffic/factory.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "traffic/injection.hpp"
#include "traffic/pattern.hpp"
#include "traffic/search.hpp"
#include "util/assert.hpp"

namespace pcs::traffic {
namespace {

std::size_t round_count(double p, std::size_t width) {
  const auto k =
      static_cast<std::size_t>(std::llround(p * static_cast<double>(width)));
  return std::min(k, width);
}

std::unique_ptr<TrafficSource> make_worstcase(const TrafficSpec& spec) {
  PCS_REQUIRE(spec.search_switch != nullptr,
              "pattern 'worstcase' needs a switch to stress (single-switch "
              "campaigns only)");
  PCS_REQUIRE(spec.width == spec.search_switch->inputs(),
              "pattern 'worstcase' width must match the switch input count");
  SearchOptions opts;
  opts.k = round_count(spec.intensity, spec.width);
  if (opts.k == 0) opts.k = std::min(
      spec.search_switch->guaranteed_capacity() + 1, spec.width);
  opts.restarts = spec.search_restarts;
  opts.steps = spec.search_steps;
  opts.seed = spec.search_seed;
  opts.chip_w = spec.chip_w;
  const SearchResult result =
      worst_concentration_search(*spec.search_switch, opts);
  std::ostringstream label;
  label << "worstcase(k=" << result.k << ",routed=" << result.routed << ")";
  return std::make_unique<FixedPatternSource>(result.worst, label.str());
}

}  // namespace

bool known_pattern(const std::string& s) {
  return s == "uniform" || s == "transpose" || s == "bitcomp" ||
         s == "bitrev" || s == "shuffle" || s == "tornado" || s == "hotspot" ||
         s == "adversarial" || s == "worstcase";
}

bool known_injection(const std::string& s) {
  return s == "bernoulli" || s == "onoff" || s == "exact";
}

std::unique_ptr<TrafficSource> make_source(const TrafficSpec& spec) {
  PCS_REQUIRE(spec.width >= 1, "traffic source needs width >= 1");
  PCS_REQUIRE(spec.intensity >= 0.0 && spec.intensity <= 1.0,
              "traffic intensity must be in [0,1]");
  PCS_REQUIRE(known_pattern(spec.pattern),
              "unknown traffic pattern '" + spec.pattern + "'");
  PCS_REQUIRE(known_injection(spec.injection),
              "unknown injection process '" + spec.injection + "'");

  if (spec.pattern == "worstcase") return make_worstcase(spec);
  if (spec.pattern == "adversarial") {
    return std::make_unique<AdversarialSource>(
        spec.width, round_count(spec.intensity, spec.width), spec.chip_w);
  }

  const PatternKind kind = pattern_from_string(spec.pattern);
  const std::vector<double> rates =
      rate_profile(kind, spec.width, spec.intensity, spec.hotspot_fraction);

  std::unique_ptr<InjectionProcess> process;
  if (spec.injection == "bernoulli") {
    process = std::make_unique<BernoulliProcess>(rates);
  } else if (spec.injection == "onoff") {
    std::vector<double> p_on(spec.width), p_off(spec.width);
    for (std::size_t i = 0; i < spec.width; ++i) {
      p_on[i] = std::min(1.0, spec.on_scale * rates[i]);
      p_off[i] = std::min(1.0, spec.off_scale * rates[i]);
    }
    process = std::make_unique<OnOffProcess>(std::move(p_on), std::move(p_off),
                                             spec.on_to_off, spec.off_to_on);
  } else {  // exact: uniform placement, the spatial profile cannot apply
    process = std::make_unique<ExactCountProcess>(
        spec.width, round_count(spec.intensity, spec.width));
  }
  return std::make_unique<ComposedSource>(kind, std::move(process),
                                          spec.hotspot_fraction);
}

}  // namespace pcs::traffic
