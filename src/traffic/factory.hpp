// The one construction point for traffic sources.  Every campaign layer
// (runtime, fabric, daemon, CLIs, benches) builds its sources here; the
// legacy msg:: generators are thin adapters over the same pieces.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "switch/concentrator.hpp"
#include "traffic/traffic_source.hpp"

namespace pcs::traffic {

/// Declarative description of a source.  Defaults reproduce the legacy
/// arrival processes exactly: `bernoulli` = uniform x bernoulli, `exact` =
/// uniform x exact(k = round(p * width)), `bursty` = uniform x onoff with
/// p_on = min(1, 3p), p_off = p/3, 0.05 transitions, `hotspot` = hotspot x
/// bernoulli (hot block at min(1, 4p), cold at p/2).
struct TrafficSpec {
  std::size_t width = 0;
  /// uniform | transpose | bitcomp | bitrev | shuffle | tornado | hotspot |
  /// adversarial | worstcase.
  std::string pattern = "uniform";
  /// bernoulli | onoff | exact.  Ignored by adversarial/worstcase, whose
  /// valid-bit streams are deterministic with k = round(intensity * width).
  std::string injection = "bernoulli";
  double intensity = 0.25;  ///< nominal per-wire intensity p

  double hotspot_fraction = 0.125;  ///< hot block fraction, in (0,1]

  // On-off shape (legacy bursty defaults): p_on = min(1, on_scale * rate),
  // p_off = min(1, off_scale * rate) per wire of the pattern's rate profile.
  double on_scale = 3.0;
  double off_scale = 1.0 / 3.0;
  double on_to_off = 0.05;
  double off_to_on = 0.05;

  std::size_t chip_w = 8;  ///< chip width for the structured adversarial family

  /// worstcase pattern only: the switch to stress plus the search shape.
  /// The search runs once at construction; the source then replays the
  /// worst pattern found every epoch.
  const sw::ConcentratorSwitch* search_switch = nullptr;
  std::size_t search_restarts = 8;
  std::size_t search_steps = 200;
  std::uint64_t search_seed = 1;
};

/// True when `s` is a known pattern keyword (including "worstcase").
bool known_pattern(const std::string& s);

/// True when `s` is a known injection keyword.
bool known_injection(const std::string& s);

/// Build a source.  Throws ContractViolation on unknown keywords, invalid
/// intensities or fractions (naming the field), patterns that cannot
/// address the width, or worstcase without a switch.
std::unique_ptr<TrafficSource> make_source(const TrafficSpec& spec);

}  // namespace pcs::traffic
