#include "traffic/injection.hpp"

#include <sstream>

#include "util/assert.hpp"

namespace pcs::traffic {
namespace {

void require_rates(const std::vector<double>& rates, const char* what) {
  for (double r : rates) {
    PCS_REQUIRE(r >= 0.0 && r <= 1.0, what);
  }
}

}  // namespace

BernoulliProcess::BernoulliProcess(std::size_t width, double p)
    : InjectionProcess(width), rates_(width, p), flat_(true) {
  PCS_REQUIRE(p >= 0.0 && p <= 1.0, "BernoulliProcess p");
}

BernoulliProcess::BernoulliProcess(std::vector<double> rates)
    : InjectionProcess(rates.size()), rates_(std::move(rates)) {
  require_rates(rates_, "BernoulliProcess rate");
  flat_ = true;
  for (double r : rates_) {
    if (r != rates_.front()) {
      flat_ = false;
      break;
    }
  }
}

BitVec BernoulliProcess::next(Rng& rng) {
  // The per-bit loop in ascending index order draws exactly the uniforms
  // Rng::bernoulli_bits(width, p) would, so flat profiles stay bit-identical
  // with the legacy BernoulliTraffic stream.
  BitVec out(width_);
  for (std::size_t i = 0; i < width_; ++i) {
    out.set(i, rng.chance(rates_[i]));
  }
  return out;
}

std::string BernoulliProcess::name() const {
  std::ostringstream os;
  if (flat_) {
    os << "bernoulli(p=" << (rates_.empty() ? 0.0 : rates_.front()) << ")";
  } else {
    os << "bernoulli(profiled/" << width_ << ")";
  }
  return os.str();
}

OnOffProcess::OnOffProcess(std::size_t width, double p_on, double p_off,
                           double on_to_off, double off_to_on)
    : OnOffProcess(std::vector<double>(width, p_on),
                   std::vector<double>(width, p_off), on_to_off, off_to_on) {}

OnOffProcess::OnOffProcess(std::vector<double> p_on, std::vector<double> p_off,
                           double on_to_off, double off_to_on)
    : InjectionProcess(p_on.size()),
      p_on_(std::move(p_on)),
      p_off_(std::move(p_off)),
      on_to_off_(on_to_off),
      off_to_on_(off_to_on),
      state_on_(width_, false) {
  PCS_REQUIRE(p_on_.size() == p_off_.size(), "OnOffProcess rate vectors");
  require_rates(p_on_, "OnOffProcess p");
  require_rates(p_off_, "OnOffProcess p");
  PCS_REQUIRE(on_to_off >= 0 && on_to_off <= 1 && off_to_on >= 0 && off_to_on <= 1,
              "OnOffProcess transitions");
}

BitVec OnOffProcess::next(Rng& rng) {
  BitVec out(width_);
  for (std::size_t i = 0; i < width_; ++i) {
    if (state_on_[i]) {
      if (rng.chance(on_to_off_)) state_on_[i] = false;
    } else {
      if (rng.chance(off_to_on_)) state_on_[i] = true;
    }
    out.set(i, rng.chance(state_on_[i] ? p_on_[i] : p_off_[i]));
  }
  return out;
}

std::string OnOffProcess::name() const {
  std::ostringstream os;
  os << "onoff(on=" << (p_on_.empty() ? 0.0 : p_on_.front())
     << ",off=" << (p_off_.empty() ? 0.0 : p_off_.front()) << ")";
  return os.str();
}

ExactCountProcess::ExactCountProcess(std::size_t width, std::size_t k)
    : InjectionProcess(width), k_(k) {
  PCS_REQUIRE(k <= width, "ExactCountProcess k");
}

BitVec ExactCountProcess::next(Rng& rng) {
  return rng.exact_weight_bits(width_, k_);
}

std::string ExactCountProcess::name() const {
  std::ostringstream os;
  os << "exact(k=" << k_ << ")";
  return os.str();
}

}  // namespace pcs::traffic
