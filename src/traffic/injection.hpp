// Injection processes: the booksim-style vocabulary of *when* load is
// injected, independent of *where* it lands (that is pattern.hpp).
//
// A process turns a per-wire rate profile into one valid-bit vector per
// epoch.  The three processes reproduce the legacy msg:: generators'
// Rng call order exactly, so a refactored campaign replays the same random
// stream bit for bit (the golden-pinned equivalence tests depend on this):
//
//  * Bernoulli draws one uniform per wire in ascending index order, which
//    is precisely Rng::bernoulli_bits when the profile is flat.
//  * OnOff runs one two-state Markov chain per wire -- per wire, first the
//    state-transition draw, then the emission draw (BurstyTraffic's order).
//  * ExactCount places exactly k bits via Rng::exact_weight_bits (Floyd)
//    and ignores the spatial profile by construction.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "util/bitvec.hpp"
#include "util/rng.hpp"

namespace pcs::traffic {

class InjectionProcess {
 public:
  virtual ~InjectionProcess() = default;
  virtual BitVec next(Rng& rng) = 0;
  virtual std::string name() const = 0;
  std::size_t width() const noexcept { return width_; }

 protected:
  explicit InjectionProcess(std::size_t width) : width_(width) {}
  std::size_t width_;
};

/// Independent Bernoulli draws against a per-wire rate vector.  With a flat
/// vector this emits the same stream as Rng::bernoulli_bits(width, p).
class BernoulliProcess : public InjectionProcess {
 public:
  BernoulliProcess(std::size_t width, double p);
  BernoulliProcess(std::vector<double> rates);
  BitVec next(Rng& rng) override;
  std::string name() const override;

 private:
  std::vector<double> rates_;
  bool flat_;
};

/// Per-wire two-state Markov chain (on-off bursty).  Per-wire rate scaling
/// comes in through the p_on/p_off vectors; the flat constructor matches
/// the legacy BurstyTraffic stream exactly.
class OnOffProcess : public InjectionProcess {
 public:
  OnOffProcess(std::size_t width, double p_on, double p_off, double on_to_off,
               double off_to_on);
  OnOffProcess(std::vector<double> p_on, std::vector<double> p_off,
               double on_to_off, double off_to_on);
  BitVec next(Rng& rng) override;
  std::string name() const override;

 private:
  std::vector<double> p_on_, p_off_;
  double on_to_off_, off_to_on_;
  std::vector<bool> state_on_;
};

/// Exactly k valid bits, uniformly placed (Floyd's sampling).
class ExactCountProcess : public InjectionProcess {
 public:
  ExactCountProcess(std::size_t width, std::size_t k);
  BitVec next(Rng& rng) override;
  std::string name() const override;
  std::size_t count() const noexcept { return k_; }

 private:
  std::size_t k_;
};

}  // namespace pcs::traffic
