#include "traffic/pattern.hpp"

#include <sstream>

#include "util/assert.hpp"

namespace pcs::traffic {
namespace {

bool power_of_two(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

std::size_t log2_exact(std::size_t n) {
  std::size_t b = 0;
  while ((std::size_t{1} << b) < n) ++b;
  return b;
}

}  // namespace

PatternKind pattern_from_string(const std::string& s) {
  if (s == "uniform") return PatternKind::kUniform;
  if (s == "transpose") return PatternKind::kTranspose;
  if (s == "bitcomp") return PatternKind::kBitComp;
  if (s == "bitrev") return PatternKind::kBitRev;
  if (s == "shuffle") return PatternKind::kShuffle;
  if (s == "tornado") return PatternKind::kTornado;
  if (s == "hotspot") return PatternKind::kHotspot;
  if (s == "adversarial") return PatternKind::kAdversarial;
  PCS_REQUIRE(false, "unknown traffic pattern '" + s + "'");
  return PatternKind::kUniform;  // unreachable
}

const char* pattern_name(PatternKind kind) noexcept {
  switch (kind) {
    case PatternKind::kUniform: return "uniform";
    case PatternKind::kTranspose: return "transpose";
    case PatternKind::kBitComp: return "bitcomp";
    case PatternKind::kBitRev: return "bitrev";
    case PatternKind::kShuffle: return "shuffle";
    case PatternKind::kTornado: return "tornado";
    case PatternKind::kHotspot: return "hotspot";
    case PatternKind::kAdversarial: return "adversarial";
  }
  return "?";
}

bool is_permutation(PatternKind kind) noexcept {
  switch (kind) {
    case PatternKind::kTranspose:
    case PatternKind::kBitComp:
    case PatternKind::kBitRev:
    case PatternKind::kShuffle:
    case PatternKind::kTornado:
      return true;
    default:
      return false;
  }
}

void require_addressable(PatternKind kind, std::size_t n) {
  PCS_REQUIRE(n >= 1, "traffic pattern needs at least one endpoint");
  switch (kind) {
    case PatternKind::kTranspose: {
      if (!power_of_two(n) || (log2_exact(n) % 2) != 0) {
        std::ostringstream os;
        os << "pattern 'transpose' needs an even power-of-two endpoint count "
              "(4^k), got "
           << n;
        PCS_REQUIRE(false, os.str());
      }
      break;
    }
    case PatternKind::kBitComp:
    case PatternKind::kBitRev:
    case PatternKind::kShuffle: {
      if (!power_of_two(n)) {
        std::ostringstream os;
        os << "pattern '" << pattern_name(kind)
           << "' needs a power-of-two endpoint count, got " << n;
        PCS_REQUIRE(false, os.str());
      }
      break;
    }
    default:
      break;  // tornado/uniform/hotspot/adversarial work at any n
  }
}

std::size_t permute_dest(PatternKind kind, std::size_t src, std::size_t n) {
  require_addressable(kind, n);
  PCS_REQUIRE(src < n, "permute_dest source out of range");
  const std::size_t bits = log2_exact(n);
  switch (kind) {
    case PatternKind::kTranspose: {
      const std::size_t half = bits / 2;
      const std::size_t lo_mask = (std::size_t{1} << half) - 1;
      return (src >> half) | ((src & lo_mask) << half);
    }
    case PatternKind::kBitComp:
      return (~src) & (n - 1);
    case PatternKind::kBitRev: {
      std::size_t out = 0;
      for (std::size_t b = 0; b < bits; ++b) {
        out = (out << 1) | ((src >> b) & 1);
      }
      return out;
    }
    case PatternKind::kShuffle:
      return ((src << 1) | (src >> (bits - 1))) & (n - 1);
    case PatternKind::kTornado:
      return (src + (n + 1) / 2 - 1) % n;
    default:
      PCS_REQUIRE(false, "permute_dest: not a permutation pattern");
      return 0;  // unreachable
  }
}

std::size_t hotspot_wires(std::size_t width, double fraction) {
  PCS_REQUIRE(fraction > 0.0 && fraction <= 1.0,
              "hotspot_fraction must be in (0,1]");
  const auto hot = static_cast<std::size_t>(static_cast<double>(width) * fraction);
  return hot < 1 ? 1 : (hot > width ? width : hot);
}

std::vector<double> rate_profile(PatternKind kind, std::size_t width, double p,
                                 double hotspot_fraction) {
  PCS_REQUIRE(p >= 0.0 && p <= 1.0, "traffic intensity must be in [0,1]");
  std::vector<double> rates(width, p);
  if (kind == PatternKind::kHotspot) {
    const std::size_t hot = hotspot_wires(width, hotspot_fraction);
    const double p_hot = 4.0 * p > 1.0 ? 1.0 : 4.0 * p;
    const double p_cold = p / 2.0;
    for (std::size_t i = 0; i < width; ++i) rates[i] = i < hot ? p_hot : p_cold;
  }
  return rates;
}

BitVec adversarial_layout(std::size_t width, std::size_t k, std::size_t chip_w,
                          std::size_t index) {
  PCS_REQUIRE(width >= 1, "adversarial_layout width");
  PCS_REQUIRE(k <= width, "adversarial_layout k");
  PCS_REQUIRE(chip_w >= 1, "adversarial_layout chip width");
  BitVec out(width);
  std::size_t placed = 0;
  switch (index % kAdversarialFamilySize) {
    case 0:  // prefix block
      for (std::size_t i = 0; i < k; ++i) out.set(i, true);
      break;
    case 1:  // suffix block
      for (std::size_t i = 0; i < k; ++i) out.set(width - 1 - i, true);
      break;
    case 2:  // even stride across the whole width
      if (k > 0) {
        for (std::size_t i = 0; i < k; ++i) out.set((i * width) / k, true);
      }
      break;
    case 3:  // first pins of each chip first (fills chips breadth-first)
      for (std::size_t pin = 0; pin < chip_w && placed < k; ++pin) {
        for (std::size_t chip = 0; chip * chip_w + pin < width && placed < k;
             ++chip) {
          out.set(chip * chip_w + pin, true);
          ++placed;
        }
      }
      break;
    case 4:  // diagonal within chips
      for (std::size_t d = 0; placed < k; ++d) {
        for (std::size_t chip = 0; chip * chip_w < width && placed < k; ++chip) {
          std::size_t idx = chip * chip_w + ((chip + d) % chip_w);
          if (idx < width && !out.get(idx)) {
            out.set(idx, true);
            ++placed;
          }
        }
        if (d > width) break;  // safety for degenerate shapes
      }
      break;
  }
  return out;
}

}  // namespace pcs::traffic
