// Spatial traffic patterns: the booksim-style vocabulary of *where* load
// lands, independent of *when* it is injected (that is injection.hpp).
//
// A pattern plays two roles depending on the campaign kind:
//
//  * Single-switch campaigns consume valid-bit vectors, so a pattern
//    contributes a per-wire intensity profile (`rate_profile`) that the
//    injection process modulates -- uniform for most patterns, skewed for
//    hotspot, and fully deterministic layouts for the adversarial family.
//
//  * Fabric campaigns consume destination-addressed flits, so a pattern
//    contributes a destination map (`permute_dest` for the permutation
//    patterns, a biased draw for hotspot, a uniform draw otherwise).
//
// The permutation patterns follow the classic definitions: transpose swaps
// the high and low address-bit halves (needs an even bit count), bitcomp
// complements every address bit, bitrev mirrors them, shuffle rotates left
// by one, and tornado sends to (src + ceil(N/2) - 1) mod N at any N.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/bitvec.hpp"

namespace pcs::traffic {

enum class PatternKind : unsigned char {
  kUniform,
  kTranspose,
  kBitComp,
  kBitRev,
  kShuffle,
  kTornado,
  kHotspot,
  kAdversarial,
};

/// Parse a pattern keyword (uniform|transpose|bitcomp|bitrev|shuffle|
/// tornado|hotspot|adversarial).  Throws ContractViolation on anything else.
PatternKind pattern_from_string(const std::string& s);

/// Canonical keyword for the kind (inverse of pattern_from_string).
const char* pattern_name(PatternKind kind) noexcept;

/// True for the deterministic address-permutation patterns (transpose,
/// bitcomp, bitrev, shuffle, tornado); these consume no randomness in
/// destination mode, which keeps trace replay and determinism trivial.
bool is_permutation(PatternKind kind) noexcept;

/// Validate that `kind` can address `n` endpoints in destination mode:
/// bit-manipulating patterns need a power of two, transpose additionally an
/// even number of address bits.  Throws ContractViolation naming the
/// pattern and the offending n.
void require_addressable(PatternKind kind, std::size_t n);

/// Destination of `src` under a permutation pattern over `n` endpoints.
/// Pre: is_permutation(kind), src < n, require_addressable passes.
std::size_t permute_dest(PatternKind kind, std::size_t src, std::size_t n);

/// Per-wire intensity profile for valid-bit campaigns: entry i is the
/// Bernoulli/Markov base rate of wire i given nominal per-input intensity
/// `p`.  Every pattern is flat at p except hotspot, which reproduces the
/// legacy HotSpotTraffic shape: the first max(1, floor(width*fraction))
/// wires run at min(1, 4p) and the rest at p/2, so `p` stays a *per-input*
/// nominal intensity that the hot block front-loads (aggregate offered load
/// is approximately 15/16 of width*p at fraction 1/8, not width*p).
std::vector<double> rate_profile(PatternKind kind, std::size_t width, double p,
                                 double hotspot_fraction);

/// Number of wires in the hotspot block: max(1, floor(width * fraction)).
/// Throws ContractViolation naming "hotspot_fraction" unless 0 < fraction <= 1.
std::size_t hotspot_wires(std::size_t width, double fraction);

/// Number of structured layouts in the adversarial family.
inline constexpr std::size_t kAdversarialFamilySize = 5;

/// Structured adversarial layout number `index % kAdversarialFamilySize`
/// with exactly min(k, width) valid bits: prefix block, suffix block, even
/// stride, chip-breadth-first pins, diagonal within chips of width chip_w.
/// These historically maximize measured nearsortedness epsilon for
/// mesh-based switches.
BitVec adversarial_layout(std::size_t width, std::size_t k, std::size_t chip_w,
                          std::size_t index);

}  // namespace pcs::traffic
