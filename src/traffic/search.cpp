#include "traffic/search.hpp"

#include <algorithm>
#include <vector>

#include "traffic/pattern.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace pcs::traffic {
namespace {

std::size_t evaluate(const sw::ConcentratorSwitch& sw, const BitVec& valid,
                     std::size_t k, std::size_t* evals) {
  const sw::SwitchRouting routing = sw.route(valid);
  ++*evals;
  const std::size_t routed = routing.routed_count();
  // The search exists to *measure* slack, not to discover contract
  // violations by accident -- if one ever shows up, fail loudly.
  const std::size_t floor_routed = std::min(k, sw.guaranteed_capacity());
  PCS_REQUIRE(routed >= floor_routed,
              "concentration contract violated during search");
  return routed;
}

}  // namespace

SearchResult worst_concentration_search(const sw::ConcentratorSwitch& sw,
                                        const SearchOptions& opts) {
  const std::size_t n = sw.inputs();
  const std::size_t m = sw.outputs();
  SearchResult best;
  best.k = opts.k != 0 ? opts.k : std::min(sw.guaranteed_capacity() + 1, n);
  PCS_REQUIRE(best.k >= 1 && best.k <= n, "search k out of range");
  PCS_REQUIRE(opts.restarts >= 1, "search needs at least one restart");

  Rng rng(opts.seed);
  std::vector<std::size_t> set_bits, unset_bits;
  for (std::size_t r = 0; r < opts.restarts; ++r) {
    // Structured layouts first (they are historically strong adversaries),
    // then independent random exact-k starts.
    BitVec current =
        r < kAdversarialFamilySize
            ? adversarial_layout(n, best.k, opts.chip_w, r)
            : rng.exact_weight_bits(n, best.k);
    std::size_t current_routed = evaluate(sw, current, best.k, &best.evaluations);
    if (best.worst.size() == 0 || current_routed < best.routed) {
      best.worst = current;
      best.routed = current_routed;
    }
    if (best.k >= n) continue;  // every pattern is the all-ones pattern

    set_bits.clear();
    unset_bits.clear();
    for (std::size_t i = 0; i < n; ++i) {
      (current.get(i) ? set_bits : unset_bits).push_back(i);
    }
    for (std::size_t step = 0; step < opts.steps; ++step) {
      const std::size_t si = rng.below(set_bits.size());
      const std::size_t ui = rng.below(unset_bits.size());
      const std::size_t drop = set_bits[si];
      const std::size_t add = unset_bits[ui];
      current.set(drop, false);
      current.set(add, true);
      const std::size_t routed = evaluate(sw, current, best.k, &best.evaluations);
      if (routed <= current_routed) {
        // Accept (plateau moves included, to slide along equal-cost ridges).
        current_routed = routed;
        std::swap(set_bits[si], unset_bits[ui]);
        if (routed < best.routed) {
          best.worst = current;
          best.routed = routed;
        }
      } else {
        current.set(add, false);
        current.set(drop, true);
      }
    }
  }

  const double denom = static_cast<double>(std::min(best.k, m));
  best.concentration = static_cast<double>(best.routed) / denom;
  best.bound =
      static_cast<double>(std::min(best.k, sw.guaranteed_capacity())) / denom;
  return best;
}

}  // namespace pcs::traffic
