// Adversarial bound-stress search: hunt the valid-bit pattern a concrete
// switch routes *worst*, and compare the measured concentration against the
// paper's guarantee.
//
// The driver is seeded hill climbing over exact-weight patterns: restarts
// start from the structured adversarial family plus random exact-k draws,
// then repeatedly swap one set bit with one unset bit, keeping moves that
// do not increase the routed count (plateau moves are accepted so the walk
// can slide along equal-cost ridges).  Everything is driven from one
// xoshiro stream, so equal seeds give identical searches.
//
// The interesting regime is k just above guaranteed_capacity() = m - eps:
// below it the contract routes everything, above it the theorem only
// promises `capacity` filled outputs, and the gap between that floor and
// what the search finds is the measured slack in the bound.
#pragma once

#include <cstddef>
#include <cstdint>

#include "switch/concentrator.hpp"
#include "util/bitvec.hpp"

namespace pcs::traffic {

struct SearchOptions {
  std::size_t k = 0;         ///< valid bits per pattern; 0 = capacity + 1
  std::size_t restarts = 8;  ///< structured seeds first, then random exact-k
  std::size_t steps = 200;   ///< hill-climb proposals per restart
  std::uint64_t seed = 1;
  std::size_t chip_w = 8;    ///< chip width for the structured seed layouts
};

struct SearchResult {
  BitVec worst;              ///< pattern minimizing the routed count
  std::size_t k = 0;         ///< valid bits in every evaluated pattern
  std::size_t routed = 0;    ///< messages the switch routed on `worst`
  std::size_t evaluations = 0;

  /// Measured worst-case concentration: routed / min(k, m).
  double concentration = 0.0;
  /// The paper's guarantee at this k: min(k, capacity) / min(k, m).
  double bound = 0.0;
};

/// Run the search against `sw`.  Deterministic for equal options.  The
/// result always satisfies routed >= min(k, guaranteed_capacity) -- the
/// concentration contract -- which the driver re-checks per evaluation.
SearchResult worst_concentration_search(const sw::ConcentratorSwitch& sw,
                                        const SearchOptions& opts);

}  // namespace pcs::traffic
