#include "traffic/trace.hpp"

#include <fstream>
#include <sstream>

#include "util/assert.hpp"

namespace pcs::traffic {
namespace {

constexpr std::uint32_t kMagic = 0x54534350;  // 'PCST' little-endian
constexpr std::uint16_t kVersion = 1;

void put_u16(std::ostream& os, std::uint16_t v) {
  char b[2] = {static_cast<char>(v & 0xff), static_cast<char>((v >> 8) & 0xff)};
  os.write(b, 2);
}

void put_u32(std::ostream& os, std::uint32_t v) {
  char b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  os.write(b, 4);
}

void put_u64(std::ostream& os, std::uint64_t v) {
  char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  os.write(b, 8);
}

std::uint16_t get_u16(std::istream& is) {
  unsigned char b[2];
  is.read(reinterpret_cast<char*>(b), 2);
  PCS_REQUIRE(bool(is), "trace file truncated");
  return static_cast<std::uint16_t>(b[0] | (b[1] << 8));
}

std::uint32_t get_u32(std::istream& is) {
  unsigned char b[4];
  is.read(reinterpret_cast<char*>(b), 4);
  PCS_REQUIRE(bool(is), "trace file truncated");
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t{b[i]} << (8 * i);
  return v;
}

std::uint64_t get_u64(std::istream& is) {
  unsigned char b[8];
  is.read(reinterpret_cast<char*>(b), 8);
  PCS_REQUIRE(bool(is), "trace file truncated");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t{b[i]} << (8 * i);
  return v;
}

/// Appends everything the wrapped source emits to one stream of the log.
class RecordingSource final : public TrafficSource {
 public:
  RecordingSource(std::unique_ptr<TrafficSource> inner, TraceLog* log,
                  std::size_t stream)
      : TrafficSource(inner->width()),
        inner_(std::move(inner)),
        log_(log),
        stream_(stream) {}

  BitVec next_valid(Rng& rng) override {
    BitVec v = inner_->next_valid(rng);
    log_->streams[stream_].epochs.push_back(TraceEpoch{v, {}});
    return v;
  }

  std::uint32_t dest_for(Rng& rng, std::size_t src, std::size_t sinks) override {
    const std::uint32_t dest = inner_->dest_for(rng, src, sinks);
    auto& epochs = log_->streams[stream_].epochs;
    PCS_REQUIRE(!epochs.empty(), "trace recorder: dest before first epoch");
    epochs.back().dests.emplace_back(static_cast<std::uint32_t>(src), dest);
    return dest;
  }

  std::string name() const override { return "record(" + inner_->name() + ")"; }

 private:
  std::unique_ptr<TrafficSource> inner_;
  TraceLog* log_;
  std::size_t stream_;
};

class TraceReplaySource final : public TrafficSource {
 public:
  TraceReplaySource(std::shared_ptr<const TraceLog> log, std::size_t stream)
      : TrafficSource(log->width), log_(std::move(log)), stream_(stream) {
    PCS_REQUIRE(stream_ < log_->streams.size(), "trace replay: no such stream");
  }

  BitVec next_valid(Rng& rng) override {
    (void)rng;  // replay consumes no randomness
    const auto& epochs = log_->streams[stream_].epochs;
    PCS_REQUIRE(cursor_ < epochs.size(),
                "trace replay: recording exhausted (campaign runs longer than "
                "the recorded stream)");
    return epochs[cursor_++].valid;
  }

  std::uint32_t dest_for(Rng& rng, std::size_t src, std::size_t sinks) override {
    (void)rng;
    PCS_REQUIRE(cursor_ > 0, "trace replay: dest before first epoch");
    const auto& epoch = log_->streams[stream_].epochs[cursor_ - 1];
    for (const auto& [rec_src, rec_dest] : epoch.dests) {
      if (rec_src == src) {
        PCS_REQUIRE(rec_dest < sinks, "trace replay: recorded dest out of range");
        return rec_dest;
      }
    }
    std::ostringstream os;
    os << "trace replay: no recorded destination for source " << src
       << " in epoch " << (cursor_ - 1);
    PCS_REQUIRE(false, os.str());
    return 0;  // unreachable
  }

  std::string name() const override {
    std::ostringstream os;
    os << "replay(stream=" << stream_ << ")";
    return os.str();
  }

 private:
  std::shared_ptr<const TraceLog> log_;
  std::size_t stream_;
  std::size_t cursor_ = 0;
};

}  // namespace

void TraceLog::write_file(const std::string& path) const {
  std::ofstream os(path, std::ios::binary);
  PCS_REQUIRE(bool(os), "cannot open trace file for writing: " + path);
  put_u32(os, kMagic);
  put_u16(os, kVersion);
  put_u16(os, 0);
  put_u64(os, width);
  put_u32(os, static_cast<std::uint32_t>(streams.size()));
  const std::size_t words_per_epoch =
      (width + BitVec::word_bits() - 1) / BitVec::word_bits();
  for (const auto& stream : streams) {
    put_u32(os, static_cast<std::uint32_t>(stream.epochs.size()));
    for (const auto& epoch : stream.epochs) {
      PCS_REQUIRE(epoch.valid.size() == width, "trace epoch width mismatch");
      const auto& words = epoch.valid.words();
      PCS_REQUIRE(words.size() == words_per_epoch, "trace epoch word count");
      for (std::uint64_t w : words) put_u64(os, w);
      put_u32(os, static_cast<std::uint32_t>(epoch.dests.size()));
      for (const auto& [src, dest] : epoch.dests) {
        put_u32(os, src);
        put_u32(os, dest);
      }
    }
  }
  os.flush();
  PCS_REQUIRE(bool(os), "trace file write failed: " + path);
}

TraceLog TraceLog::read_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  PCS_REQUIRE(bool(is), "cannot open trace file: " + path);
  PCS_REQUIRE(get_u32(is) == kMagic, "not a pcs traffic trace: " + path);
  PCS_REQUIRE(get_u16(is) == kVersion, "unsupported trace version in " + path);
  (void)get_u16(is);  // reserved
  TraceLog log;
  log.width = static_cast<std::size_t>(get_u64(is));
  const std::uint32_t stream_count = get_u32(is);
  const std::size_t words_per_epoch =
      (log.width + BitVec::word_bits() - 1) / BitVec::word_bits();
  log.streams.resize(stream_count);
  for (auto& stream : log.streams) {
    const std::uint32_t epoch_count = get_u32(is);
    stream.epochs.reserve(epoch_count);
    for (std::uint32_t e = 0; e < epoch_count; ++e) {
      std::vector<std::uint64_t> words(words_per_epoch);
      for (auto& w : words) w = get_u64(is);
      TraceEpoch epoch;
      epoch.valid = BitVec::from_words(std::move(words), log.width);
      const std::uint32_t dest_count = get_u32(is);
      epoch.dests.reserve(dest_count);
      for (std::uint32_t d = 0; d < dest_count; ++d) {
        const std::uint32_t src = get_u32(is);
        const std::uint32_t dest = get_u32(is);
        epoch.dests.emplace_back(src, dest);
      }
      stream.epochs.push_back(std::move(epoch));
    }
  }
  return log;
}

TraceRecorder::TraceRecorder(std::size_t width, std::size_t streams) {
  log_.width = width;
  log_.streams.resize(streams);
}

std::unique_ptr<TrafficSource> TraceRecorder::wrap(
    std::unique_ptr<TrafficSource> inner, std::size_t idx) {
  PCS_REQUIRE(inner != nullptr, "trace recorder: null source");
  PCS_REQUIRE(idx < log_.streams.size(), "trace recorder: no such stream");
  PCS_REQUIRE(inner->width() == log_.width, "trace recorder width mismatch");
  return std::make_unique<RecordingSource>(std::move(inner), &log_, idx);
}

std::unique_ptr<TrafficSource> make_replay(std::shared_ptr<const TraceLog> log,
                                           std::size_t stream) {
  PCS_REQUIRE(log != nullptr, "trace replay: null log");
  return std::make_unique<TraceReplaySource>(std::move(log), stream);
}

}  // namespace pcs::traffic
