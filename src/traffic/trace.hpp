// Offered-stream trace record and replay.
//
// A trace captures exactly what a campaign's traffic sources produced: per
// stream (one stream per runtime lane, or the single fabric source bundle),
// per epoch, the offered valid-bit vector plus every destination the source
// handed out, tagged by source wire.  Replaying the trace through
// TraceReplaySource reproduces the offered stream byte for byte without
// consuming the campaign rng -- including destinations, which are looked up
// by source wire within the epoch rather than by draw order, so replay
// stays exact even if the consumer's accept decisions differ.
//
// On-disk format (little-endian):
//   u32 magic 'PCST'  u16 version=1  u16 reserved
//   u64 width  u32 stream_count
//   per stream:  u32 epoch_count
//     per epoch: ceil(width/64) x u64 valid words
//                u32 dest_count, dest_count x (u32 src, u32 dest)
//
// Single campaign loops run the lanes from one thread, so the recorder
// needs no locking; one RecordingSource wrapper per stream appends in
// call order.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "traffic/traffic_source.hpp"
#include "util/bitvec.hpp"

namespace pcs::traffic {

struct TraceEpoch {
  BitVec valid;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> dests;  // (src, dest)
};

struct TraceStream {
  std::vector<TraceEpoch> epochs;
};

struct TraceLog {
  std::size_t width = 0;
  std::vector<TraceStream> streams;

  void write_file(const std::string& path) const;
  /// Throws ContractViolation on I/O failure, bad magic, or truncation.
  static TraceLog read_file(const std::string& path);
};

/// Owns the log being captured and hands out recording wrappers, one per
/// stream.  The wrappers hold a pointer back into the recorder, so it must
/// outlive them (the campaign drivers keep it on the stack around run()).
class TraceRecorder {
 public:
  explicit TraceRecorder(std::size_t width, std::size_t streams);

  /// Wrap `inner` so every next_valid / dest_for result is appended to
  /// stream `idx` while the wrapper forwards the inner source's behaviour.
  std::unique_ptr<TrafficSource> wrap(std::unique_ptr<TrafficSource> inner,
                                      std::size_t idx);

  const TraceLog& log() const noexcept { return log_; }
  TraceLog& log() noexcept { return log_; }

 private:
  TraceLog log_;
};

/// Replays stream `idx` of a recorded log.  Throws ContractViolation when
/// the campaign outruns the recording (more epochs, or a destination
/// requested for a wire the recording never addressed that epoch).
std::unique_ptr<TrafficSource> make_replay(std::shared_ptr<const TraceLog> log,
                                           std::size_t stream);

}  // namespace pcs::traffic
