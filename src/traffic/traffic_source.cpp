#include "traffic/traffic_source.hpp"

#include <sstream>

#include "util/assert.hpp"

namespace pcs::traffic {

std::uint32_t TrafficSource::dest_for(Rng& rng, std::size_t src,
                                      std::size_t sinks) {
  (void)src;
  PCS_REQUIRE(sinks >= 1, "dest_for needs at least one sink");
  return static_cast<std::uint32_t>(rng.below(sinks));
}

ComposedSource::ComposedSource(PatternKind pattern,
                               std::unique_ptr<InjectionProcess> process,
                               double hotspot_fraction)
    : TrafficSource(process ? process->width() : 0),
      pattern_(pattern),
      process_(std::move(process)),
      hotspot_fraction_(hotspot_fraction) {
  PCS_REQUIRE(process_ != nullptr, "ComposedSource needs an injection process");
  PCS_REQUIRE(pattern_ != PatternKind::kAdversarial,
              "adversarial sources are built via AdversarialSource");
  if (pattern_ == PatternKind::kHotspot) {
    (void)hotspot_wires(width_, hotspot_fraction_);  // validates the fraction
  }
}

BitVec ComposedSource::next_valid(Rng& rng) { return process_->next(rng); }

std::uint32_t ComposedSource::dest_for(Rng& rng, std::size_t src,
                                       std::size_t sinks) {
  if (is_permutation(pattern_)) {
    PCS_REQUIRE(src < sinks,
                "permutation patterns need source index < sink count");
    return static_cast<std::uint32_t>(permute_dest(pattern_, src, sinks));
  }
  if (pattern_ == PatternKind::kHotspot) {
    // Half the accepted traffic lands uniformly in the hot sink block, the
    // other half uniformly everywhere -- two draws, fixed order, so the
    // stream stays deterministic per seed.
    const std::size_t hot = hotspot_wires(sinks, hotspot_fraction_);
    const bool to_hot = rng.chance(0.5);
    return static_cast<std::uint32_t>(to_hot ? rng.below(hot)
                                             : rng.below(sinks));
  }
  return TrafficSource::dest_for(rng, src, sinks);
}

std::string ComposedSource::name() const {
  std::ostringstream os;
  os << pattern_name(pattern_) << "/" << process_->name();
  return os.str();
}

AdversarialSource::AdversarialSource(std::size_t width, std::size_t k,
                                     std::size_t chip_w)
    : TrafficSource(width), k_(k), chip_w_(chip_w) {
  PCS_REQUIRE(k <= width, "AdversarialSource k");
  PCS_REQUIRE(chip_w >= 1, "AdversarialSource chip width");
}

BitVec AdversarialSource::next_valid(Rng& rng) {
  (void)rng;  // the family is deterministic
  return adversarial_layout(width_, k_, chip_w_, cursor_++);
}

std::string AdversarialSource::name() const {
  std::ostringstream os;
  os << "adversarial(k=" << k_ << ")";
  return os.str();
}

FixedPatternSource::FixedPatternSource(BitVec pattern, std::string label)
    : TrafficSource(pattern.size()),
      pattern_(std::move(pattern)),
      label_(std::move(label)) {}

BitVec FixedPatternSource::next_valid(Rng& rng) {
  (void)rng;
  return pattern_;
}

std::string FixedPatternSource::name() const { return label_; }

}  // namespace pcs::traffic
