// TrafficSource: the single interface every campaign layer injects from.
//
// A source yields one valid-bit vector per epoch (next_valid) and, for
// fabric campaigns, a destination per *accepted* arrival (dest_for).  The
// split matters for determinism: FabricSim historically drew a destination
// only after the source-queue admission check passed, so dest_for is called
// at accept time, in ascending source order, never for rejected arrivals --
// the default uniform draw then replays the legacy rng stream bit for bit.
//
// Permutation patterns implement dest_for deterministically without
// consuming the rng at all, which is what makes trace replay byte-exact.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "traffic/injection.hpp"
#include "traffic/pattern.hpp"
#include "util/bitvec.hpp"
#include "util/rng.hpp"

namespace pcs::traffic {

class TrafficSource {
 public:
  virtual ~TrafficSource() = default;

  /// One epoch's offered valid bits over `width()` wires.
  virtual BitVec next_valid(Rng& rng) = 0;

  /// Destination for an accepted arrival from wire `src`, addressing
  /// `sinks` endpoints.  Called once per accepted arrival in ascending src
  /// order.  Default: uniform over sinks (one rng.below draw).
  virtual std::uint32_t dest_for(Rng& rng, std::size_t src, std::size_t sinks);

  virtual std::string name() const = 0;
  std::size_t width() const noexcept { return width_; }

 protected:
  explicit TrafficSource(std::size_t width) : width_(width) {}
  std::size_t width_;
};

/// Spatial pattern x injection process.  The pattern shapes the per-wire
/// rate profile consumed by the process (valid-bit side) and the
/// destination map (fabric side); the process owns the temporal draw.
class ComposedSource : public TrafficSource {
 public:
  ComposedSource(PatternKind pattern, std::unique_ptr<InjectionProcess> process,
                 double hotspot_fraction);
  BitVec next_valid(Rng& rng) override;
  std::uint32_t dest_for(Rng& rng, std::size_t src, std::size_t sinks) override;
  std::string name() const override;
  PatternKind pattern() const noexcept { return pattern_; }

 private:
  PatternKind pattern_;
  std::unique_ptr<InjectionProcess> process_;
  double hotspot_fraction_;
};

/// Deterministic structured adversarial source: cycles the five-layout
/// family with exactly k valid bits per epoch (consumes no randomness).
class AdversarialSource : public TrafficSource {
 public:
  AdversarialSource(std::size_t width, std::size_t k, std::size_t chip_w);
  BitVec next_valid(Rng& rng) override;
  std::string name() const override;
  std::size_t family_size() const noexcept { return kAdversarialFamilySize; }

 private:
  std::size_t k_;
  std::size_t chip_w_;
  std::size_t cursor_ = 0;
};

/// Replays one fixed valid-bit pattern every epoch -- the driver for the
/// worst-case patterns found by the search module.
class FixedPatternSource : public TrafficSource {
 public:
  FixedPatternSource(BitVec pattern, std::string label);
  BitVec next_valid(Rng& rng) override;
  std::string name() const override;

 private:
  BitVec pattern_;
  std::string label_;
};

}  // namespace pcs::traffic
