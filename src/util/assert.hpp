// Lightweight contract-checking macros for the pcs library.
//
// PCS_REQUIRE is a precondition check that stays on in all build types: the
// library simulates hardware whose correctness claims are the entire point,
// so we never silently accept malformed dimensions or indices.  Violations
// throw pcs::ContractViolation with file/line context so tests can assert on
// them and applications can recover.
//
// The message argument is a stream expression, built only on failure, so
// call sites can (and should) include the offending values:
//   PCS_REQUIRE(m >= 1 && m <= n, "RevsortSwitch m range: m=" << m << " n=" << n);
// A plain string literal still works unchanged.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace pcs {

/// Thrown when a PCS_REQUIRE precondition fails.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* expr, const char* file, int line,
                                       const std::string& msg) {
  std::string full = std::string("contract violated: ") + expr + " at " + file + ":" +
                     std::to_string(line);
  if (!msg.empty()) full += " (" + msg + ")";
  throw ContractViolation(full);
}
}  // namespace detail

}  // namespace pcs

#define PCS_REQUIRE(expr, msg)                                                \
  do {                                                                        \
    if (!(expr)) {                                                            \
      ::std::ostringstream pcs_require_msg_;                                  \
      pcs_require_msg_ << msg;                                                \
      ::pcs::detail::contract_fail(#expr, __FILE__, __LINE__,                 \
                                   pcs_require_msg_.str());                   \
    }                                                                         \
  } while (0)
