#include "util/bitmatrix.hpp"

#include "util/assert.hpp"

namespace pcs {

BitMatrix::BitMatrix(std::size_t rows, std::size_t cols)
    : bits_(rows * cols), rows_(rows), cols_(cols) {}

BitMatrix BitMatrix::from_row_major(const BitVec& bits, std::size_t rows, std::size_t cols) {
  PCS_REQUIRE(bits.size() == rows * cols, "BitMatrix::from_row_major size mismatch");
  BitMatrix m(rows, cols);
  m.bits_ = bits;
  return m;
}

bool BitMatrix::get(std::size_t i, std::size_t j) const {
  PCS_REQUIRE(i < rows_ && j < cols_, "BitMatrix::get out of range");
  return bits_.get(index(i, j));
}

void BitMatrix::set(std::size_t i, std::size_t j, bool value) {
  PCS_REQUIRE(i < rows_ && j < cols_, "BitMatrix::set out of range");
  bits_.set(index(i, j), value);
}

BitVec BitMatrix::to_row_major() const { return bits_; }

BitVec BitMatrix::to_col_major() const {
  BitVec out(size());
  std::size_t pos = 0;
  for (std::size_t j = 0; j < cols_; ++j) {
    for (std::size_t i = 0; i < rows_; ++i) {
      out.set(pos++, bits_.get(index(i, j)));
    }
  }
  return out;
}

BitVec BitMatrix::row(std::size_t i) const {
  PCS_REQUIRE(i < rows_, "BitMatrix::row out of range");
  BitVec out(cols_);
  for (std::size_t j = 0; j < cols_; ++j) out.set(j, bits_.get(index(i, j)));
  return out;
}

BitVec BitMatrix::col(std::size_t j) const {
  PCS_REQUIRE(j < cols_, "BitMatrix::col out of range");
  BitVec out(rows_);
  for (std::size_t i = 0; i < rows_; ++i) out.set(i, bits_.get(index(i, j)));
  return out;
}

void BitMatrix::set_row(std::size_t i, const BitVec& bits) {
  PCS_REQUIRE(i < rows_, "BitMatrix::set_row out of range");
  PCS_REQUIRE(bits.size() == cols_, "BitMatrix::set_row size mismatch");
  for (std::size_t j = 0; j < cols_; ++j) bits_.set(index(i, j), bits.get(j));
}

void BitMatrix::set_col(std::size_t j, const BitVec& bits) {
  PCS_REQUIRE(j < cols_, "BitMatrix::set_col out of range");
  PCS_REQUIRE(bits.size() == rows_, "BitMatrix::set_col size mismatch");
  for (std::size_t i = 0; i < rows_; ++i) bits_.set(index(i, j), bits.get(i));
}

std::size_t BitMatrix::count() const noexcept { return bits_.count(); }

std::size_t BitMatrix::row_count(std::size_t i) const { return row(i).count(); }

bool BitMatrix::row_is_dirty(std::size_t i) const {
  std::size_t ones = row_count(i);
  return ones != 0 && ones != cols_;
}

std::size_t BitMatrix::dirty_row_count() const {
  std::size_t dirty = 0;
  for (std::size_t i = 0; i < rows_; ++i) {
    if (row_is_dirty(i)) ++dirty;
  }
  return dirty;
}

BitMatrix BitMatrix::transposed() const {
  BitMatrix out(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t j = 0; j < cols_; ++j) {
      out.set(j, i, bits_.get(index(i, j)));
    }
  }
  return out;
}

bool BitMatrix::operator==(const BitMatrix& other) const noexcept {
  return rows_ == other.rows_ && cols_ == other.cols_ && bits_ == other.bits_;
}

std::string BitMatrix::to_string() const {
  std::string out;
  out.reserve(rows_ * (cols_ + 1));
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t j = 0; j < cols_; ++j) {
      out += bits_.get(index(i, j)) ? '1' : '0';
    }
    out += '\n';
  }
  return out;
}

}  // namespace pcs
