// r-by-s matrix of bits, stored row-major, with the row/column access and
// reordering primitives the mesh sorting algorithms (Revsort, Shearsort,
// Columnsort) are written against.
//
// Rows are numbered 0..r-1, columns 0..s-1, exactly as in the paper
// (Sections 4 and 5).  The "sequence order" of a matrix -- the order in which
// a switch's output wires read the entries -- is row-major unless a function
// says otherwise.
#pragma once

#include <cstdint>
#include <string>

#include "util/bitvec.hpp"

namespace pcs {

class BitMatrix {
 public:
  BitMatrix() = default;

  /// An r-by-s matrix of zero bits.
  BitMatrix(std::size_t rows, std::size_t cols);

  /// Reinterpret a flat row-major bit sequence as an r-by-s matrix.
  /// Precondition: bits.size() == rows * cols.
  static BitMatrix from_row_major(const BitVec& bits, std::size_t rows, std::size_t cols);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  std::size_t size() const noexcept { return rows_ * cols_; }

  bool get(std::size_t i, std::size_t j) const;
  void set(std::size_t i, std::size_t j, bool value);

  /// The whole matrix read in row-major order (how switch outputs are taken).
  BitVec to_row_major() const;

  /// The whole matrix read in column-major order.
  BitVec to_col_major() const;

  /// Copy of row i / column j as a standalone bit vector.
  BitVec row(std::size_t i) const;
  BitVec col(std::size_t j) const;

  /// Overwrite row i / column j.  Sizes must match.
  void set_row(std::size_t i, const BitVec& bits);
  void set_col(std::size_t j, const BitVec& bits);

  /// Number of 1 bits in the whole matrix / in one row.
  std::size_t count() const noexcept;
  std::size_t row_count(std::size_t i) const;

  /// True iff row i contains both a 0 and a 1 (the paper's *dirty* row).
  bool row_is_dirty(std::size_t i) const;

  /// Number of dirty rows (the quantity Theorem 3 bounds for Revsort).
  std::size_t dirty_row_count() const;

  /// s-by-r transpose (the wiring between Revsort switch stages 1 and 2).
  BitMatrix transposed() const;

  bool operator==(const BitMatrix& other) const noexcept;
  bool operator!=(const BitMatrix& other) const noexcept { return !(*this == other); }

  /// Multi-line string of '0'/'1' rows, for diagnostics and the visualizer.
  std::string to_string() const;

 private:
  std::size_t index(std::size_t i, std::size_t j) const noexcept { return i * cols_ + j; }

  BitVec bits_;
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
};

}  // namespace pcs
