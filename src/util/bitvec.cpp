#include "util/bitvec.hpp"

#include <bit>

#include "util/assert.hpp"
#include "util/mathutil.hpp"

namespace pcs {

BitVec::BitVec(std::size_t n, bool value)
    : words_(ceil_div(n, kWordBits), value ? ~std::uint64_t{0} : 0), size_(n) {
  clear_tail();
}

BitVec::BitVec(std::initializer_list<int> bits) : BitVec(bits.size()) {
  std::size_t i = 0;
  for (int b : bits) set(i++, b != 0);
}

BitVec BitVec::from_string(const std::string& s) {
  BitVec v(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    PCS_REQUIRE(s[i] == '0' || s[i] == '1', "BitVec::from_string character");
    v.set(i, s[i] == '1');
  }
  return v;
}

BitVec BitVec::prefix_ones(std::size_t n, std::size_t k) {
  PCS_REQUIRE(k <= n, "BitVec::prefix_ones k out of range");
  BitVec v(n);
  std::size_t full = k / kWordBits;
  for (std::size_t w = 0; w < full; ++w) v.words_[w] = ~std::uint64_t{0};
  std::size_t rem = k % kWordBits;
  if (rem != 0) v.words_[full] = (std::uint64_t{1} << rem) - 1;
  return v;
}

bool BitVec::get(std::size_t i) const {
  PCS_REQUIRE(i < size_, "BitVec::get out of range");
  return (words_[word_index(i)] & bit_mask(i)) != 0;
}

void BitVec::set(std::size_t i, bool value) {
  PCS_REQUIRE(i < size_, "BitVec::set out of range");
  if (value) {
    words_[word_index(i)] |= bit_mask(i);
  } else {
    words_[word_index(i)] &= ~bit_mask(i);
  }
}

void BitVec::flip(std::size_t i) {
  PCS_REQUIRE(i < size_, "BitVec::flip out of range");
  words_[word_index(i)] ^= bit_mask(i);
}

std::size_t BitVec::count() const noexcept {
  std::size_t total = 0;
  for (std::uint64_t w : words_) total += static_cast<std::size_t>(std::popcount(w));
  return total;
}

std::size_t BitVec::rank1_before(std::size_t i) const {
  PCS_REQUIRE(i <= size_, "BitVec::rank1_before out of range");
  std::size_t full_words = i / kWordBits;
  std::size_t total = 0;
  for (std::size_t w = 0; w < full_words; ++w) {
    total += static_cast<std::size_t>(std::popcount(words_[w]));
  }
  std::size_t rem = i % kWordBits;
  if (rem != 0) {
    std::uint64_t mask = (std::uint64_t{1} << rem) - 1;
    total += static_cast<std::size_t>(std::popcount(words_[full_words] & mask));
  }
  return total;
}

std::size_t BitVec::select1(std::size_t j) const noexcept {
  std::size_t seen = 0;
  for (std::size_t i = 0; i < size_; ++i) {
    if ((words_[word_index(i)] & bit_mask(i)) != 0) {
      if (seen == j) return i;
      ++seen;
    }
  }
  return size_;
}

bool BitVec::is_sorted_nonincreasing() const noexcept {
  bool seen_zero = false;
  for (std::size_t i = 0; i < size_; ++i) {
    bool b = (words_[word_index(i)] & bit_mask(i)) != 0;
    if (!b) {
      seen_zero = true;
    } else if (seen_zero) {
      return false;
    }
  }
  return true;
}

bool BitVec::is_clean() const noexcept {
  if (size_ == 0) return true;
  std::size_t ones = count();
  return ones == 0 || ones == size_;
}

void BitVec::fill(bool value) noexcept {
  for (auto& w : words_) w = value ? ~std::uint64_t{0} : 0;
  clear_tail();
}

void BitVec::push_back(bool value) {
  if (size_ % kWordBits == 0) words_.push_back(0);
  ++size_;
  set(size_ - 1, value);
}

bool BitVec::operator==(const BitVec& other) const noexcept {
  return size_ == other.size_ && words_ == other.words_;
}

std::size_t BitVec::count_diff(const BitVec& other) const {
  PCS_REQUIRE(size_ == other.size_, "BitVec::count_diff size mismatch");
  std::size_t total = 0;
  for (std::size_t w = 0; w < words_.size(); ++w) {
    total += static_cast<std::size_t>(std::popcount(words_[w] ^ other.words_[w]));
  }
  return total;
}

std::string BitVec::to_string() const {
  std::string s(size_, '0');
  for (std::size_t i = 0; i < size_; ++i) {
    if (get(i)) s[i] = '1';
  }
  return s;
}

std::vector<bool> BitVec::to_bools() const {
  std::vector<bool> v(size_);
  for (std::size_t i = 0; i < size_; ++i) v[i] = get(i);
  return v;
}

BitVec BitVec::from_bools(const std::vector<bool>& v) {
  BitVec out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) out.set(i, v[i]);
  return out;
}

BitVec BitVec::from_words(std::vector<std::uint64_t> words, std::size_t n) {
  PCS_REQUIRE(words.size() >= ceil_div(n, kWordBits), "BitVec::from_words size");
  BitVec out;
  out.words_ = std::move(words);
  out.words_.resize(ceil_div(n, kWordBits));
  out.size_ = n;
  out.clear_tail();
  return out;
}

void BitVec::clear_tail() noexcept {
  std::size_t rem = size_ % kWordBits;
  if (rem != 0 && !words_.empty()) {
    words_.back() &= (std::uint64_t{1} << rem) - 1;
  }
}

}  // namespace pcs
