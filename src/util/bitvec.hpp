// Packed bit vector with the operations the concentrator-switch simulations
// need: population counts, prefix ranks, sortedness/nearsortedness probes,
// and (de)serialization to/from boolean containers.
//
// Valid bits are the currency of the whole paper: a switch's behaviour during
// setup is a function from a BitVec of n valid bits to a routing.  BitVec is
// the type all sorting substrates and switch models agree on.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace pcs {

class BitVec {
 public:
  BitVec() = default;

  /// A vector of `n` bits, all initialized to `value`.
  explicit BitVec(std::size_t n, bool value = false);

  /// Construct from an explicit bit pattern, e.g. BitVec({1,0,1,1}).
  BitVec(std::initializer_list<int> bits);

  /// Parse from a string of '0'/'1' characters; anything else throws.
  static BitVec from_string(const std::string& s);

  /// n bits with the first k set -- a concentrated (sorted) valid pattern.
  static BitVec prefix_ones(std::size_t n, std::size_t k);

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  bool get(std::size_t i) const;
  void set(std::size_t i, bool value);
  void flip(std::size_t i);

  /// Number of 1 bits in the whole vector (the paper's k, the valid count).
  std::size_t count() const noexcept;

  /// Number of 1 bits strictly before position i (the routing rank of
  /// input i in a stable hyperconcentrator).  Precondition: i <= size().
  std::size_t rank1_before(std::size_t i) const;

  /// Position of the j-th 1 bit (0-indexed); size() if fewer than j+1 ones.
  std::size_t select1(std::size_t j) const noexcept;

  /// True iff the bits are in nonincreasing order (all 1s then all 0s) --
  /// the paper's definition of a *sorted* valid-bit sequence (Section 2).
  bool is_sorted_nonincreasing() const noexcept;

  /// True iff all bits have the same value (the paper's *clean* sequence).
  bool is_clean() const noexcept;

  /// All bits set to `value`.
  void fill(bool value) noexcept;

  /// Append one bit at the end.
  void push_back(bool value);

  bool operator==(const BitVec& other) const noexcept;
  bool operator!=(const BitVec& other) const noexcept { return !(*this == other); }

  /// Number of positions where the two vectors disagree (popcount of the
  /// XOR).  Precondition: equal sizes.
  std::size_t count_diff(const BitVec& other) const;

  /// Read-only view of the packed 64-bit words (bit i lives at word i/64,
  /// bit i%64; tail bits past size() are zero).  This is the interface the
  /// lane-transposed batch engine and word-at-a-time scans build on.
  const std::vector<std::uint64_t>& words() const noexcept { return words_; }

  /// Bits per storage word (64).
  static constexpr std::size_t word_bits() noexcept { return kWordBits; }

  std::string to_string() const;

  std::vector<bool> to_bools() const;
  static BitVec from_bools(const std::vector<bool>& v);

  /// Adopt packed words directly (words.size() must cover n bits); tail bits
  /// past n are cleared.  Fast path for word-level producers.
  static BitVec from_words(std::vector<std::uint64_t> words, std::size_t n);

 private:
  static constexpr std::size_t kWordBits = 64;
  std::size_t word_index(std::size_t i) const noexcept { return i / kWordBits; }
  std::uint64_t bit_mask(std::size_t i) const noexcept {
    return std::uint64_t{1} << (i % kWordBits);
  }
  void clear_tail() noexcept;

  std::vector<std::uint64_t> words_;
  std::size_t size_ = 0;
};

}  // namespace pcs
