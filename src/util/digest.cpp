#include "util/digest.hpp"

namespace pcs {

namespace {
constexpr std::uint64_t kPrime = 0x100000001b3ULL;
}

void Digest::mix_byte(std::uint8_t b) noexcept {
  state_ ^= b;
  state_ *= kPrime;
}

void Digest::mix_u64(std::uint64_t v) noexcept {
  for (int i = 0; i < 8; ++i) {
    mix_byte(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void Digest::mix_i32(std::int32_t v) noexcept {
  mix_u64(static_cast<std::uint64_t>(static_cast<std::uint32_t>(v)));
}

void Digest::mix_bits(const BitVec& bits) {
  mix_u64(bits.size());
  std::uint8_t acc = 0;
  int fill = 0;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    acc = static_cast<std::uint8_t>((acc << 1) | (bits.get(i) ? 1 : 0));
    if (++fill == 8) {
      mix_byte(acc);
      acc = 0;
      fill = 0;
    }
  }
  if (fill > 0) mix_byte(acc);
}

void Digest::mix_slots(const std::vector<std::int32_t>& slots) {
  mix_u64(slots.size());
  for (std::int32_t s : slots) mix_i32(s);
}

std::uint64_t digest_bits(const BitVec& bits) {
  Digest d;
  d.mix_bits(bits);
  return d.value();
}

std::uint64_t digest_slots(const std::vector<std::int32_t>& slots) {
  Digest d;
  d.mix_slots(slots);
  return d.value();
}

}  // namespace pcs
