// FNV-1a digests over the library's value types: cheap fingerprints for
// determinism tests (same seed => bit-identical behaviour across runs and
// platforms) and for golden values in the regression suite.
#pragma once

#include <cstdint>
#include <vector>

#include "util/bitvec.hpp"

namespace pcs {

class Digest {
 public:
  Digest() = default;

  void mix_byte(std::uint8_t b) noexcept;
  void mix_u64(std::uint64_t v) noexcept;
  void mix_i32(std::int32_t v) noexcept;
  void mix_bits(const BitVec& bits);
  void mix_slots(const std::vector<std::int32_t>& slots);

  std::uint64_t value() const noexcept { return state_; }

 private:
  // FNV-1a 64-bit offset basis / prime.
  std::uint64_t state_ = 0xcbf29ce484222325ULL;
};

/// One-shot digest of a bit vector.
std::uint64_t digest_bits(const BitVec& bits);

/// One-shot digest of a slot/label vector (routings, mesh read-outs).
std::uint64_t digest_slots(const std::vector<std::int32_t>& slots);

}  // namespace pcs
