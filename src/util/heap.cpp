#include "util/heap.hpp"

#include <cstdlib>  // defines __GLIBC__ on glibc before the guard below

#if defined(__GLIBC__)
#include <malloc.h>
#endif

namespace pcs {

void retain_freed_heap_pages() {
#if defined(__GLIBC__)
  // Keep freed memory in the arena: never shrink the heap top back to the
  // OS, and serve large requests from the arena instead of one-shot mmaps
  // (an mmap'd chunk is unmapped on free, so the next round faults anew).
  mallopt(M_TRIM_THRESHOLD, 1 << 30);
  mallopt(M_MMAP_THRESHOLD, 1 << 30);
#endif
}

}  // namespace pcs
