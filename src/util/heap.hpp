// Process-wide heap tuning for allocation-heavy measurement loops.
#pragma once

namespace pcs {

/// Ask the allocator to retain freed pages instead of returning them to the
/// OS.  Workloads that allocate and free large result buffers every
/// iteration (e.g. repeated route_batch calls) otherwise re-fault every page
/// of every buffer on each round: glibc trims the heap top and unmaps large
/// chunks as soon as they are freed, and the soft page faults then dominate
/// the measurement.  On this repo's batch-routing benchmark the fault storm
/// more than doubled the per-pattern cost (~24us kernel vs ~40us of faults).
///
/// Call once at process start.  No-op on allocators without mallopt.
void retain_freed_heap_pages();

}  // namespace pcs
