#include "util/mathutil.hpp"

#include <bit>

#include "util/assert.hpp"

namespace pcs {

bool is_pow2(std::uint64_t x) noexcept { return x != 0 && (x & (x - 1)) == 0; }

unsigned floor_log2(std::uint64_t x) {
  PCS_REQUIRE(x > 0, "floor_log2 of zero");
  return 63u - static_cast<unsigned>(std::countl_zero(x));
}

unsigned ceil_log2(std::uint64_t x) {
  PCS_REQUIRE(x > 0, "ceil_log2 of zero");
  unsigned f = floor_log2(x);
  return is_pow2(x) ? f : f + 1;
}

unsigned exact_log2(std::uint64_t x) {
  PCS_REQUIRE(is_pow2(x), "exact_log2 requires a power of two");
  return floor_log2(x);
}

std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) {
  PCS_REQUIRE(b > 0, "ceil_div by zero");
  return (a + b - 1) / b;
}

std::uint64_t bit_reverse(std::uint64_t v, unsigned bits) {
  PCS_REQUIRE(bits <= 64, "bit_reverse width");
  std::uint64_t out = 0;
  for (unsigned k = 0; k < bits; ++k) {
    out = (out << 1) | ((v >> k) & 1u);
  }
  return out;
}

std::uint64_t isqrt(std::uint64_t x) noexcept {
  if (x == 0) return 0;
  // Newton iteration seeded from the bit length; converges in a few steps.
  std::uint64_t r = std::uint64_t{1} << ((64 - std::countl_zero(x)) / 2 + 1);
  while (true) {
    std::uint64_t next = (r + x / r) / 2;
    if (next >= r) break;
    r = next;
  }
  return r;
}

std::uint64_t row_major(std::uint64_t i, std::uint64_t j, std::uint64_t s) noexcept {
  return s * i + j;
}

std::uint64_t col_major(std::uint64_t i, std::uint64_t j, std::uint64_t r) noexcept {
  return r * j + i;
}

RowCol row_major_inv(std::uint64_t x, std::uint64_t s) noexcept {
  return RowCol{x / s, x % s};
}

RowCol col_major_inv(std::uint64_t x, std::uint64_t r) noexcept {
  return RowCol{x % r, x / r};
}

}  // namespace pcs
