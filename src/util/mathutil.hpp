// Integer math helpers used throughout the library.
//
// The paper works with power-of-two mesh side lengths (√n = 2^q), bit-reversed
// row indices (Revsort's rev(i)), and row-major/column-major index algebra
// (Figure 5).  Everything here is exact integer arithmetic; no floating point.
#pragma once

#include <cstdint>

namespace pcs {

/// True iff x is a power of two (x = 2^k, k >= 0).  is_pow2(0) == false.
bool is_pow2(std::uint64_t x) noexcept;

/// Floor of log base 2.  Precondition: x > 0.
unsigned floor_log2(std::uint64_t x);

/// Ceiling of log base 2 (number of butterfly levels covering x slots).
/// ceil_log2(1) == 0.  Precondition: x > 0.
unsigned ceil_log2(std::uint64_t x);

/// lg n as the paper writes it: exact log2 of a power of two.
/// Precondition: is_pow2(x).
unsigned exact_log2(std::uint64_t x);

/// ceil(a / b).  Precondition: b > 0.
std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b);

/// Reverse the low `bits` bits of v (Revsort's rev(i) with q = bits).
/// Example from the paper: with sqrt(n)=16 (bits=4), bit_reverse(3,4) == 12.
std::uint64_t bit_reverse(std::uint64_t v, unsigned bits);

/// Exact integer square root: largest r with r*r <= x.
std::uint64_t isqrt(std::uint64_t x) noexcept;

/// Row-major position of matrix entry (i, j) in an r-by-s matrix: si + j.
/// Matches the paper's RM(i, j) (Section 5; Figure 5).
std::uint64_t row_major(std::uint64_t i, std::uint64_t j, std::uint64_t s) noexcept;

/// Column-major position of matrix entry (i, j) in an r-by-s matrix: rj + i.
/// Matches the paper's CM(i, j) (Section 5; Figure 5).
std::uint64_t col_major(std::uint64_t i, std::uint64_t j, std::uint64_t r) noexcept;

/// Row/column pair decoded from a row-major position: RM^-1(x) = (x/s, x%s).
struct RowCol {
  std::uint64_t row;
  std::uint64_t col;
  bool operator==(const RowCol&) const = default;
};

/// Inverse row-major mapping for an r-by-s matrix.
RowCol row_major_inv(std::uint64_t x, std::uint64_t s) noexcept;

/// Inverse column-major mapping for an r-by-s matrix.
RowCol col_major_inv(std::uint64_t x, std::uint64_t r) noexcept;

}  // namespace pcs
