#include "util/parallel.hpp"

#include <algorithm>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace pcs {

std::size_t default_thread_count() noexcept {
  unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<std::size_t>(hc);
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body, std::size_t threads) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t workers = std::min(threads == 0 ? 1 : threads, n);
  if (workers <= 1 || n < 2) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }

  std::exception_ptr first_error;
  std::mutex error_mutex;
  std::vector<std::thread> pool;
  pool.reserve(workers);

  const std::size_t chunk = (n + workers - 1) / workers;
  for (std::size_t w = 0; w < workers; ++w) {
    const std::size_t lo = begin + w * chunk;
    const std::size_t hi = std::min(end, lo + chunk);
    if (lo >= hi) break;
    pool.emplace_back([&, lo, hi] {
      try {
        for (std::size_t i = lo; i < hi; ++i) body(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (auto& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace pcs
