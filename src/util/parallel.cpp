#include "util/parallel.hpp"

namespace pcs {

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body, std::size_t threads,
                  std::size_t grain) {
  ThreadPool::global().for_range(begin, end, body, threads == 0 ? 1 : threads,
                                 grain);
}

void parallel_for_chunks(std::size_t begin, std::size_t end,
                         const std::function<void(std::size_t, std::size_t)>& body,
                         std::size_t threads, std::size_t grain) {
  ThreadPool::global().for_chunks(begin, end, body, threads == 0 ? 1 : threads,
                                  grain);
}

}  // namespace pcs
