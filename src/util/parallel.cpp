#include "util/parallel.hpp"

#include <algorithm>
#include <atomic>

namespace pcs {

namespace {

std::atomic<std::size_t> g_max_parallelism{0};

std::size_t clamp_threads(std::size_t threads) {
  const std::size_t cap = g_max_parallelism.load(std::memory_order_relaxed);
  const std::size_t want = threads == 0 ? 1 : threads;
  return cap == 0 ? want : std::min(want, cap);
}

}  // namespace

void set_max_parallelism(std::size_t threads) noexcept {
  g_max_parallelism.store(threads, std::memory_order_relaxed);
}

std::size_t max_parallelism() noexcept {
  return g_max_parallelism.load(std::memory_order_relaxed);
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body, std::size_t threads,
                  std::size_t grain) {
  ThreadPool::global().for_range(begin, end, body, clamp_threads(threads), grain);
}

void parallel_for_chunks(std::size_t begin, std::size_t end,
                         const std::function<void(std::size_t, std::size_t)>& body,
                         std::size_t threads, std::size_t grain) {
  ThreadPool::global().for_chunks(begin, end, body, clamp_threads(threads), grain);
}

}  // namespace pcs
