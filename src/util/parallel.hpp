// Shared-memory parallel-for on the persistent global ThreadPool.
//
// The simulator is embarrassingly parallel at two grains: independent chips
// within one switch stage, and independent trials in Monte-Carlo sweeps.
// parallel_for covers both without dragging in OpenMP.  Calls run on
// ThreadPool::global() — workers are started once per process and reused, so
// thread creation is no longer priced into every sweep.  Exceptions thrown by
// the body are captured and rethrown on the caller after the range finishes.
#pragma once

#include <cstddef>
#include <functional>

#include "util/thread_pool.hpp"

namespace pcs {

/// Run body(i) for every i in [begin, end), with up to `threads` threads
/// (caller included) claiming chunks of `grain` indices from the global pool.
/// With threads <= 1, or a range smaller than 2, runs inline on the caller.
/// grain == 0 picks a heuristic chunk size.  The body must be safe to call
/// concurrently for distinct i.  The first exception thrown by any body is
/// rethrown on the calling thread after the whole range has run.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  std::size_t threads = default_thread_count(),
                  std::size_t grain = 0);

/// Chunked variant: body receives whole [lo, hi) ranges, so per-thread
/// scratch (lane buffers, RNGs) is set up once per chunk instead of per index.
void parallel_for_chunks(std::size_t begin, std::size_t end,
                         const std::function<void(std::size_t, std::size_t)>& body,
                         std::size_t threads = default_thread_count(),
                         std::size_t grain = 0);

/// Process-wide clamp on the parallelism of every parallel_for /
/// parallel_for_chunks call (the per-call `threads` argument is capped to
/// this).  0 -- the default -- means no clamp.  Set to 1 for byte-
/// deterministic execution order (trace capture, CI determinism diffs):
/// every range then runs inline on the caller in index order.
void set_max_parallelism(std::size_t threads) noexcept;
std::size_t max_parallelism() noexcept;

}  // namespace pcs
