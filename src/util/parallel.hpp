// Minimal shared-memory parallel-for over std::thread.
//
// The simulator is embarrassingly parallel at two grains: independent chips
// within one switch stage, and independent trials in Monte-Carlo sweeps.
// parallel_for covers both without dragging in OpenMP: it splits [begin, end)
// into contiguous chunks, runs each chunk on its own thread, and joins.
// Exceptions thrown by the body are captured and rethrown on the caller.
#pragma once

#include <cstddef>
#include <functional>

namespace pcs {

/// Number of worker threads parallel_for will use by default
/// (hardware_concurrency, at least 1).
std::size_t default_thread_count() noexcept;

/// Run body(i) for every i in [begin, end), distributing contiguous chunks
/// across up to `threads` std::threads.  With threads <= 1, or a range
/// smaller than 2, runs inline on the caller.  The body must be safe to call
/// concurrently for distinct i.  The first exception thrown by any body is
/// rethrown on the calling thread after all threads join.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  std::size_t threads = default_thread_count());

}  // namespace pcs
