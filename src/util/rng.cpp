#include "util/rng.hpp"

#include <bit>

#include "util/assert.hpp"

namespace pcs {

namespace {
// splitmix64: expands one seed word into the four xoshiro state words.
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& w : s_) w = splitmix64(x);
  // Avoid the all-zero state, which xoshiro cannot escape.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = std::rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = std::rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  PCS_REQUIRE(bound > 0, "Rng::below zero bound");
  // Rejection sampling to remove modulo bias.
  std::uint64_t threshold = (0 - bound) % bound;
  while (true) {
    std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

std::uint64_t Rng::between(std::uint64_t lo, std::uint64_t hi) {
  PCS_REQUIRE(lo <= hi, "Rng::between bounds");
  return lo + below(hi - lo + 1);
}

bool Rng::chance(double p) {
  PCS_REQUIRE(p >= 0.0 && p <= 1.0, "Rng::chance probability");
  return uniform01() < p;
}

double Rng::uniform01() {
  // 53 random mantissa bits, as in the standard xoshiro recipe.
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

BitVec Rng::bernoulli_bits(std::size_t n, double p) {
  BitVec out(n);
  for (std::size_t i = 0; i < n; ++i) out.set(i, chance(p));
  return out;
}

BitVec Rng::exact_weight_bits(std::size_t n, std::size_t k) {
  PCS_REQUIRE(k <= n, "Rng::exact_weight_bits k > n");
  // Floyd's algorithm for a uniform k-subset of [0, n).
  BitVec out(n);
  for (std::size_t j = n - k; j < n; ++j) {
    std::uint64_t t = below(j + 1);
    if (out.get(static_cast<std::size_t>(t))) {
      out.set(j, true);
    } else {
      out.set(static_cast<std::size_t>(t), true);
    }
  }
  return out;
}

}  // namespace pcs
