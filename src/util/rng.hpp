// Deterministic pseudo-random number generator (xoshiro256**) plus the
// distributions the traffic generators and property tests need.
//
// We own the generator rather than using std::mt19937 so that test vectors
// are reproducible across standard libraries and platforms; seeds printed in
// failure messages always replay.
#pragma once

#include <cstdint>

#include "util/bitvec.hpp"

namespace pcs {

class Rng {
 public:
  /// Seeded construction; the same seed always produces the same stream.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value.
  std::uint64_t next();

  /// Uniform integer in [0, bound).  Precondition: bound > 0.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform integer in [lo, hi].  Precondition: lo <= hi.
  std::uint64_t between(std::uint64_t lo, std::uint64_t hi);

  /// Bernoulli trial with probability p of true.  Precondition: 0 <= p <= 1.
  bool chance(double p);

  /// Uniform double in [0, 1).
  double uniform01();

  /// A vector of n independent Bernoulli(p) bits (random valid-bit pattern).
  BitVec bernoulli_bits(std::size_t n, double p);

  /// A vector of n bits with exactly k ones placed uniformly at random
  /// (the paper's "k messages entering the switch" with k fixed).
  BitVec exact_weight_bits(std::size_t n, std::size_t k);

 private:
  std::uint64_t s_[4];
};

}  // namespace pcs
