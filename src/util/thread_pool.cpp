#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace pcs {

std::size_t default_thread_count() noexcept {
  unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<std::size_t>(hc);
}

namespace {
// Which pool (if any) owns the current thread; set for the lifetime of a
// worker loop so nested for_range calls can detect re-entrancy.
thread_local const ThreadPool* tls_owner_pool = nullptr;
// 1-based worker index for span attribution; 0 outside pool workers.
thread_local std::size_t tls_worker_id = 0;
}  // namespace

struct ThreadPool::Impl {
  std::vector<std::thread> workers;
  std::deque<std::function<void()>> queue;
  std::mutex mu;
  std::condition_variable task_ready;
  std::condition_variable idle;
  std::size_t busy = 0;
  bool stopping = false;

  void worker_loop(const ThreadPool* self, std::size_t worker_id) {
    tls_owner_pool = self;
    tls_worker_id = worker_id;
    std::unique_lock<std::mutex> lock(mu);
    for (;;) {
      task_ready.wait(lock, [&] { return stopping || !queue.empty(); });
      if (queue.empty()) {
        if (stopping) return;
        continue;
      }
      std::function<void()> task = std::move(queue.front());
      queue.pop_front();
      ++busy;
      lock.unlock();
      task();  // tasks must not throw; an escaping exception terminates
      lock.lock();
      --busy;
      if (queue.empty() && busy == 0) idle.notify_all();
    }
  }
};

ThreadPool::ThreadPool(std::size_t workers) : impl_(new Impl) {
  const std::size_t count = std::max<std::size_t>(1, workers);
  impl_->workers.reserve(count);
  for (std::size_t w = 0; w < count; ++w) {
    impl_->workers.emplace_back([this, w] { impl_->worker_loop(this, w + 1); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->stopping = true;
  }
  impl_->task_ready.notify_all();
  for (auto& t : impl_->workers) t.join();
  delete impl_;
}

std::size_t ThreadPool::worker_count() const noexcept {
  return impl_->workers.size();
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(default_thread_count());
  return pool;
}

bool ThreadPool::on_worker_thread() const noexcept {
  return tls_owner_pool == this;
}

std::size_t ThreadPool::current_worker_id() noexcept { return tls_worker_id; }

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->queue.push_back(std::move(task));
  }
  impl_->task_ready.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(impl_->mu);
  impl_->idle.wait(lock, [&] { return impl_->queue.empty() && impl_->busy == 0; });
}

namespace {

// One parallel range: chunks are claimed off `cursor` by the caller and by
// helper tasks until the range is exhausted or a body throws.
struct RangeJob {
  std::atomic<std::size_t> cursor;
  std::size_t end = 0;
  std::size_t grain = 1;
  const std::function<void(std::size_t, std::size_t)>* body = nullptr;
  std::atomic<bool> failed{false};
  std::exception_ptr error;
  std::mutex error_mu;
  // Helpers still enqueued or running; the caller waits for this to hit 0 so
  // no body is still executing when for_chunks returns.
  std::size_t helpers_pending = 0;
  std::mutex done_mu;
  std::condition_variable done_cv;

  void drain() {
    while (!failed.load(std::memory_order_relaxed)) {
      std::size_t lo = cursor.fetch_add(grain, std::memory_order_relaxed);
      if (lo >= end) return;
      std::size_t hi = std::min(end, lo + grain);
      try {
        (*body)(lo, hi);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!error) error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  }

  void helper_done() {
    std::lock_guard<std::mutex> lock(done_mu);
    if (--helpers_pending == 0) done_cv.notify_all();
  }
};

}  // namespace

void ThreadPool::for_chunks(std::size_t begin, std::size_t end,
                            const std::function<void(std::size_t, std::size_t)>& body,
                            std::size_t max_parallelism, std::size_t grain) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t want = std::max<std::size_t>(1, max_parallelism);
  // Caller + helpers; a nested call from one of our own workers runs inline
  // (enqueueing helpers from inside a worker can deadlock a saturated pool).
  std::size_t participants = std::min(want, worker_count() + 1);
  if (on_worker_thread()) participants = 1;
  if (participants <= 1 || n < 2) {
    body(begin, end);
    return;
  }
  if (grain == 0) {
    // Heuristic: ~8 chunks per participant balances load without hammering
    // the cursor; cheap bodies can pass an explicit larger grain.
    grain = std::max<std::size_t>(1, n / (participants * 8));
  }

  auto job = std::make_shared<RangeJob>();
  job->cursor.store(begin);
  job->end = end;
  job->grain = grain;
  job->body = &body;
  const std::size_t helpers =
      std::min(participants - 1, (n + grain - 1) / grain - 1);
  job->helpers_pending = helpers;
  for (std::size_t h = 0; h < helpers; ++h) {
    submit([job] {
      job->drain();
      job->helper_done();
    });
  }
  job->drain();
  if (helpers > 0) {
    std::unique_lock<std::mutex> lock(job->done_mu);
    job->done_cv.wait(lock, [&] { return job->helpers_pending == 0; });
  }
  if (job->error) std::rethrow_exception(job->error);
}

void ThreadPool::for_range(std::size_t begin, std::size_t end,
                           const std::function<void(std::size_t)>& body,
                           std::size_t max_parallelism, std::size_t grain) {
  for_chunks(
      begin, end,
      [&body](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) body(i);
      },
      max_parallelism, grain);
}

}  // namespace pcs
