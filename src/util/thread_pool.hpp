// Persistent worker pool behind parallel_for and the batch routing engine.
//
// The old parallel_for spawned and joined a std::thread per chunk on every
// call, which priced thread creation into every Monte-Carlo sweep.  The pool
// starts its workers once and reuses them: a parallel range is a single
// shared job whose chunks are claimed off an atomic cursor (work stealing at
// chunk granularity -- an idle worker grabs the next chunk regardless of
// which worker "owned" it), with the calling thread participating so no core
// idles while the caller blocks.
//
// Contracts kept from the old parallel_for:
//   * the first exception thrown by any body is rethrown on the caller after
//     the range finishes (chunks not yet claimed when the exception lands
//     are abandoned -- the range is already failed);
//   * with parallelism <= 1 or a range smaller than 2, the body runs inline
//     on the caller, in order.
// New: a grain-size knob (indices per claimed chunk) so cheap bodies are not
// dominated by cursor traffic, and re-entrancy -- a body that itself calls
// into the pool runs the nested range inline instead of deadlocking.
#pragma once

#include <cstddef>
#include <functional>

namespace pcs {

/// Number of worker threads the global pool starts (hardware_concurrency,
/// at least 1).
std::size_t default_thread_count() noexcept;

class ThreadPool {
 public:
  /// Start `workers` persistent worker threads (at least 1).
  explicit ThreadPool(std::size_t workers = default_thread_count());

  /// Joins all workers.  Pending submitted tasks are completed first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t worker_count() const noexcept;

  /// The process-wide pool every parallel_for runs on.  Constructed on first
  /// use with default_thread_count() workers.
  static ThreadPool& global();

  /// True when the calling thread is a worker of *this* pool (used to run
  /// nested ranges inline instead of deadlocking on our own queue).
  bool on_worker_thread() const noexcept;

  /// 1-based index of the calling pool worker thread, 0 for every other
  /// thread (the caller participating in a range, tests, main).  Stable for
  /// a worker's lifetime; the tracing layer uses it to attribute spans.
  static std::size_t current_worker_id() noexcept;

  /// Fire-and-forget task.  Tasks may submit further tasks (nested
  /// submission); they must not throw -- an escaping exception terminates.
  /// Use wait_idle() to rendezvous with everything submitted so far.
  void submit(std::function<void()> task);

  /// Block until the queue is empty and every worker is idle.
  void wait_idle();

  /// Run body(i) for i in [begin, end).  Up to `max_parallelism` threads
  /// participate (the caller plus at most max_parallelism - 1 workers);
  /// chunks of `grain` indices are claimed from a shared cursor.  grain == 0
  /// picks a heuristic chunk size.  Blocks until the whole range ran; the
  /// first exception from any body is rethrown here.
  void for_range(std::size_t begin, std::size_t end,
                 const std::function<void(std::size_t)>& body,
                 std::size_t max_parallelism, std::size_t grain = 0);

  /// Same scheduling, but the body receives whole chunks [lo, hi) -- the
  /// shape batch kernels want, so per-thread scratch is set up once per
  /// chunk instead of once per index.
  void for_chunks(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t, std::size_t)>& chunk_body,
                  std::size_t max_parallelism, std::size_t grain = 0);

 private:
  struct Impl;
  Impl* impl_;
};

}  // namespace pcs
