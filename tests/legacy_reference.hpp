// Legacy reference semantics for every multichip switch family, written
// directly against the LabelMesh mesh operations -- the exact per-family
// route() recipes the dedicated switch classes implemented before they
// became thin compilers onto the staged-plan IR (src/plan/).
//
// The plan refactor's hard constraint is bit-for-bit identity with these
// recipes, so they live here as an independent oracle: the golden-digest
// and differential test suites (tests/test_plan_*.cpp) and the fuzzer's
// plan-vs-legacy family (fuzz/fuzz_differential.cpp) all compare
// PlanExecutor output against this header.  Keep it boring and obviously
// correct; it must never route through the plan code it checks.
#pragma once

#include <cstdint>
#include <vector>

#include "plan/switch_plan.hpp"  // plan::ChipFault (just {stage, chip})
#include "sortnet/revsort.hpp"
#include "switch/concentrator.hpp"
#include "switch/label_mesh.hpp"
#include "util/bitvec.hpp"
#include "util/mathutil.hpp"

namespace pcs::legacy {

/// A reference routing plus the nearsorted occupancy it implies.
struct Reference {
  sw::SwitchRouting routing;
  BitVec nearsorted;
};

/// Assemble a SwitchRouting from the final label sequence: position pos of
/// the readout carries input seq[pos] (>= 0) or nothing.  Positions >= m
/// fall off the switch (partial concentration drops them).
inline Reference from_sequence(const std::vector<std::int32_t>& seq,
                               std::size_t n, std::size_t m) {
  Reference ref;
  ref.routing.output_of_input.assign(n, -1);
  ref.routing.input_of_output.assign(m, -1);
  ref.nearsorted = BitVec(seq.size());
  for (std::size_t pos = 0; pos < seq.size(); ++pos) {
    if (seq[pos] < 0) continue;
    ref.nearsorted.set(pos, true);
    if (pos < m) {
      ref.routing.input_of_output[pos] = seq[pos];
      ref.routing.output_of_input[static_cast<std::size_t>(seq[pos])] =
          static_cast<std::int32_t>(pos);
    }
  }
  return ref;
}

/// Silence the dead chips of one stage.  Chips are columns on every
/// concentrate_columns stage; the Revsort row stage's chips are rows.
inline void kill_column(sw::LabelMesh& mesh, std::size_t col) {
  for (std::size_t i = 0; i < mesh.rows(); ++i) mesh.set(i, col, sw::kIdle);
}
inline void kill_row(sw::LabelMesh& mesh, std::size_t row) {
  for (std::size_t j = 0; j < mesh.cols(); ++j) mesh.set(row, j, sw::kIdle);
}

/// Revsort partial concentrator (optionally with dead chips): concentrate
/// columns, concentrate rows, rotate row i right by rev(i), concentrate
/// columns, read row-major.  Stage s faults kill chip `chip` right after
/// stage s's concentration (stage 1 chips are rows).
inline Reference revsort(const BitVec& valid, std::size_t m,
                         const std::vector<plan::ChipFault>& faults = {}) {
  const std::size_t side = isqrt(valid.size());
  sw::LabelMesh mesh = sw::LabelMesh::from_col_major_valid(valid, side, side);
  mesh.concentrate_columns();
  for (const auto& f : faults)
    if (f.stage == 0) kill_column(mesh, f.chip);
  mesh.concentrate_rows();
  for (const auto& f : faults)
    if (f.stage == 1) kill_row(mesh, f.chip);
  mesh.rotate_rows_bit_reversed();
  mesh.concentrate_columns();
  for (const auto& f : faults)
    if (f.stage == 2) kill_column(mesh, f.chip);
  return from_sequence(mesh.to_row_major(), valid.size(), m);
}

/// Columnsort partial concentrator: concentrate columns, reshape
/// column-major -> row-major, concentrate columns, read row-major.  Stage s
/// faults kill column `chip` right after stage s's concentration.
inline Reference columnsort(const BitVec& valid, std::size_t r, std::size_t s,
                            std::size_t m,
                            const std::vector<plan::ChipFault>& faults = {}) {
  sw::LabelMesh mesh = sw::LabelMesh::from_col_major_valid(valid, r, s);
  mesh.concentrate_columns();
  for (const auto& f : faults)
    if (f.stage == 0) kill_column(mesh, f.chip);
  mesh.cm_to_rm_reshape();
  mesh.concentrate_columns();
  for (const auto& f : faults)
    if (f.stage == 1) kill_column(mesh, f.chip);
  return from_sequence(mesh.to_row_major(), valid.size(), m);
}

/// Multipass Columnsort: `passes` rounds of concentrate + reshape (the
/// alternating schedule inverts every second reshape), one final
/// concentration, read row-major -- except an even-pass alternating switch
/// ends column-major.
inline Reference multipass(const BitVec& valid, std::size_t r, std::size_t s,
                           std::size_t passes, std::size_t m,
                           plan::ReshapeSchedule schedule) {
  sw::LabelMesh mesh = sw::LabelMesh::from_col_major_valid(valid, r, s);
  for (std::size_t p = 0; p < passes; ++p) {
    mesh.concentrate_columns();
    if (schedule == plan::ReshapeSchedule::kAlternating && p % 2 == 1) {
      mesh.rm_to_cm_reshape();
    } else {
      mesh.cm_to_rm_reshape();
    }
  }
  mesh.concentrate_columns();
  const bool row_major =
      !(schedule == plan::ReshapeSchedule::kAlternating && passes % 2 == 0);
  return from_sequence(row_major ? mesh.to_row_major() : mesh.to_col_major(),
                       valid.size(), m);
}

/// Full-sorting Revsort hyperconcentrator (m = n): repetitions of
/// (concentrate columns, concentrate rows, bit-reversed rotation) followed
/// by the three-phase shearsort cleanup.
inline Reference full_revsort(const BitVec& valid) {
  const std::size_t n = valid.size();
  const std::size_t side = isqrt(n);
  sw::LabelMesh mesh = sw::LabelMesh::from_col_major_valid(valid, side, side);
  const std::size_t reps =
      side >= 2 ? sortnet::full_revsort_repetitions(side) : 0;
  for (std::size_t t = 0; t < reps; ++t) {
    mesh.concentrate_columns();
    mesh.concentrate_rows();
    mesh.rotate_rows_bit_reversed();
  }
  mesh.concentrate_columns();
  for (int phase = 0; phase < 3; ++phase) {
    mesh.concentrate_rows_alternating();
    mesh.concentrate_columns();
  }
  mesh.concentrate_rows();
  return from_sequence(mesh.to_row_major(), n, n);
}

/// Full-sorting Columnsort hyperconcentrator (m = n): the full eight-step
/// Columnsort on labels, read column-major.
inline Reference full_columnsort(const BitVec& valid, std::size_t r,
                                 std::size_t s) {
  sw::LabelMesh mesh = sw::LabelMesh::from_col_major_valid(valid, r, s);
  mesh.concentrate_columns();
  mesh.cm_to_rm_reshape();
  mesh.concentrate_columns();
  mesh.rm_to_cm_reshape();
  mesh.concentrate_columns();
  mesh.shift_concentrate_unshift();
  return from_sequence(mesh.to_col_major(), valid.size(), valid.size());
}

}  // namespace pcs::legacy
