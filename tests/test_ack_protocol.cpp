#include "message/ack_protocol.hpp"

#include <gtest/gtest.h>

#include "switch/hyper_switch.hpp"
#include "switch/revsort_switch.hpp"
#include "util/assert.hpp"

namespace pcs::msg {
namespace {

TEST(AckProtocol, LightLoadDeliversAllWithoutRetries) {
  pcs::sw::HyperSwitch sw(64, 32);
  Rng rng(370);
  AckStats stats = simulate_ack_protocol(sw, 0.05, 300, AckConfig{}, rng);
  EXPECT_GT(stats.offered, 400u);
  EXPECT_DOUBLE_EQ(stats.goodput(), 1.0);
  EXPECT_EQ(stats.gave_up, 0u);
  // Plenty of capacity: nothing is dropped, so the only transmissions are
  // duplicates caused by ack latency, which cannot happen here because the
  // first send always succeeds and the ack beats the timeout.
  EXPECT_EQ(stats.duplicates, 0u);
  EXPECT_EQ(stats.transmissions, stats.offered);
}

TEST(AckProtocol, OverloadRetriesAndStillConverges) {
  pcs::sw::HyperSwitch sw(64, 4);  // brutal bottleneck
  Rng rng(371);
  AckConfig cfg;
  cfg.max_retries = 50;
  AckStats stats = simulate_ack_protocol(sw, 0.5, 400, cfg, rng);
  EXPECT_GT(stats.transmissions, stats.offered);  // retries happened
  EXPECT_GT(stats.delivered, 0u);
  EXPECT_LE(stats.delivered, stats.offered);
  EXPECT_GT(stats.mean_completion(), 1.0);  // waiting visible in latency
}

TEST(AckProtocol, SlowAcksCauseDuplicates) {
  // Ack slower than the timeout: the sender refires even though the first
  // copy got through -- the protocol's intrinsic duplicate cost.
  pcs::sw::HyperSwitch sw(16, 16);
  Rng rng(372);
  AckConfig cfg;
  cfg.ack_delay = 6;
  cfg.timeout = 2;
  AckStats stats = simulate_ack_protocol(sw, 0.3, 200, cfg, rng);
  EXPECT_GT(stats.duplicates, 0u);
  EXPECT_DOUBLE_EQ(stats.goodput(), 1.0);  // everything still arrives
}

TEST(AckProtocol, GiveUpAfterMaxRetries) {
  // Zero-capacity path for most senders: m = 1 output, many contenders,
  // tiny retry budget -- some senders must give up.
  pcs::sw::HyperSwitch sw(32, 1);
  Rng rng(373);
  AckConfig cfg;
  cfg.max_retries = 1;
  cfg.timeout = 1;
  AckStats stats = simulate_ack_protocol(sw, 0.9, 200, cfg, rng);
  EXPECT_GT(stats.gave_up, 0u);
  EXPECT_LT(stats.goodput(), 1.0);
}

TEST(AckProtocol, WorksThroughPartialConcentrator) {
  pcs::sw::RevsortSwitch sw(256, 128);
  Rng rng(374);
  AckStats stats = simulate_ack_protocol(sw, 0.2, 300, AckConfig{}, rng);
  EXPECT_GT(stats.goodput(), 0.98);
  EXPECT_GE(stats.transmissions, stats.delivered + stats.duplicates);
  EXPECT_EQ(stats.gave_up, 0u);
}

TEST(AckProtocol, ConfigValidated) {
  pcs::sw::HyperSwitch sw(8, 4);
  Rng rng(375);
  AckConfig cfg;
  cfg.timeout = 0;
  EXPECT_THROW(simulate_ack_protocol(sw, 0.1, 10, cfg, rng),
               pcs::ContractViolation);
}

}  // namespace
}  // namespace pcs::msg
