// Admission control: the daemon-wide in-flight bound, per-tenant quotas,
// drain mode, and the RAII ticket that makes release exception-safe.
#include "serve/admission.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "util/assert.hpp"

namespace pcs::serve {
namespace {

TEST(Admission, AdmitsUpToGlobalLimit) {
  AdmissionController ctl(AdmissionLimits{2, 2});
  EXPECT_EQ(ctl.try_admit("a"), AdmitResult::kAdmitted);
  EXPECT_EQ(ctl.try_admit("b"), AdmitResult::kAdmitted);
  EXPECT_EQ(ctl.try_admit("c"), AdmitResult::kRejectedSaturated);
  EXPECT_EQ(ctl.inflight(), 2u);

  ctl.release("a");
  EXPECT_EQ(ctl.try_admit("c"), AdmitResult::kAdmitted);
}

TEST(Admission, PerTenantQuotaBindsBeforeGlobalLimit) {
  AdmissionController ctl(AdmissionLimits{8, 2});
  EXPECT_EQ(ctl.try_admit("t"), AdmitResult::kAdmitted);
  EXPECT_EQ(ctl.try_admit("t"), AdmitResult::kAdmitted);
  EXPECT_EQ(ctl.try_admit("t"), AdmitResult::kRejectedTenantQuota);
  // A different tenant still fits: the quota is per bucket.
  EXPECT_EQ(ctl.try_admit("u"), AdmitResult::kAdmitted);

  const AdmissionController::Stats s = ctl.stats();
  EXPECT_EQ(s.admitted, 3u);
  EXPECT_EQ(s.rejected_tenant_quota, 1u);
  EXPECT_EQ(s.rejected_saturated, 0u);
}

TEST(Admission, DrainingRejectsEverything) {
  AdmissionController ctl(AdmissionLimits{8, 8});
  EXPECT_EQ(ctl.try_admit("t"), AdmitResult::kAdmitted);
  ctl.start_draining();
  EXPECT_TRUE(ctl.draining());
  EXPECT_EQ(ctl.try_admit("t"), AdmitResult::kRejectedDraining);
  // Releases still work during drain -- that's the whole point.
  ctl.release("t");
  EXPECT_EQ(ctl.inflight(), 0u);
  EXPECT_EQ(ctl.stats().rejected_draining, 1u);
}

TEST(Admission, TicketReleasesOnScopeExit) {
  AdmissionController ctl(AdmissionLimits{1, 1});
  {
    Ticket t(ctl, "solo");
    EXPECT_TRUE(t.admitted());
    EXPECT_EQ(t.result(), AdmitResult::kAdmitted);
    EXPECT_EQ(ctl.inflight(), 1u);
    // A rejected ticket must NOT release anything on destruction.
    Ticket reject(ctl, "solo");
    EXPECT_FALSE(reject.admitted());
  }
  EXPECT_EQ(ctl.inflight(), 0u);
  EXPECT_EQ(ctl.try_admit("solo"), AdmitResult::kAdmitted);
}

TEST(Admission, ReleaseWithoutAdmitIsAContractViolation) {
  AdmissionController ctl(AdmissionLimits{1, 1});
  EXPECT_THROW(ctl.release("ghost"), ContractViolation);
}

TEST(Admission, RejectionSlugsAreStable) {
  // The CI smoke greps serve.rejected.<slug> counters; renaming a slug is a
  // protocol change, not a refactor.
  EXPECT_STREQ(admit_result_name(AdmitResult::kAdmitted), "admitted");
  EXPECT_STREQ(admit_result_name(AdmitResult::kRejectedSaturated),
               "saturated");
  EXPECT_STREQ(admit_result_name(AdmitResult::kRejectedTenantQuota),
               "tenant-quota");
  EXPECT_STREQ(admit_result_name(AdmitResult::kRejectedDraining), "draining");
}

TEST(Admission, HotReloadRaisesLimitsForWaiters) {
  AdmissionController ctl(AdmissionLimits{1, 1});
  ASSERT_EQ(ctl.try_admit("t"), AdmitResult::kAdmitted);
  EXPECT_EQ(ctl.try_admit("u"), AdmitResult::kRejectedSaturated);
  ctl.set_limits(AdmissionLimits{4, 2});
  EXPECT_EQ(ctl.try_admit("u"), AdmitResult::kAdmitted);
  EXPECT_EQ(ctl.try_admit("t"), AdmitResult::kAdmitted);  // quota now 2
  EXPECT_EQ(ctl.limits().max_inflight, 4u);
}

// Concurrent admit/release storm: the invariant is that inflight() never
// exceeds the global bound and the final count returns to zero.
TEST(Admission, ConcurrentAdmissionNeverExceedsBound) {
  constexpr std::size_t kBound = 4;
  AdmissionController ctl(AdmissionLimits{kBound, kBound});
  std::atomic<std::size_t> max_seen{0};
  std::atomic<std::size_t> admitted_total{0};

  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < 8; ++t) {
    threads.emplace_back([&ctl, &max_seen, &admitted_total, t] {
      const std::string tenant = "t" + std::to_string(t % 3);
      for (int i = 0; i < 2000; ++i) {
        Ticket ticket(ctl, tenant);
        if (!ticket.admitted()) continue;
        admitted_total.fetch_add(1);
        const std::size_t now = ctl.inflight();
        std::size_t prev = max_seen.load();
        while (now > prev && !max_seen.compare_exchange_weak(prev, now)) {
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();

  EXPECT_EQ(ctl.inflight(), 0u);
  EXPECT_LE(max_seen.load(), kBound);
  EXPECT_GT(admitted_total.load(), 0u);
  EXPECT_EQ(ctl.stats().admitted, admitted_total.load());
}

}  // namespace
}  // namespace pcs::serve
