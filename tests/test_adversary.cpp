#include "core/adversary.hpp"

#include <gtest/gtest.h>

#include "switch/columnsort_switch.hpp"
#include "switch/hyper_switch.hpp"
#include "switch/revsort_switch.hpp"

namespace pcs::core {
namespace {

TEST(Adversary, MeasuredEpsilonZeroForHyper) {
  pcs::sw::HyperSwitch sw(32, 32);
  Rng rng(250);
  WorstCase wc = worst_epsilon_search(sw, 20, 50, rng);
  EXPECT_EQ(wc.epsilon, 0u);
  EXPECT_GT(wc.trials, 0u);
}

TEST(Adversary, WorstCaseRespectsTheoremBounds) {
  Rng rng(251);
  pcs::sw::RevsortSwitch rev(256, 256);
  WorstCase wrev = worst_epsilon_search(rev, 30, 100, rng);
  EXPECT_LE(wrev.epsilon, rev.epsilon_bound());

  pcs::sw::ColumnsortSwitch col(64, 8, 512);
  WorstCase wcol = worst_epsilon_search(col, 30, 100, rng);
  EXPECT_LE(wcol.epsilon, col.epsilon_bound());
}

TEST(Adversary, FindsNonTrivialEpsilonOnPartialConcentrators) {
  // The search should exhibit *some* nonsortedness for the Columnsort
  // switch with s > 1 (epsilon bound (s-1)^2 > 0 is achievable in spirit).
  Rng rng(252);
  pcs::sw::ColumnsortSwitch col(64, 8, 512);
  WorstCase wc = worst_epsilon_search(col, 40, 200, rng);
  EXPECT_GT(wc.epsilon, 0u);
  // The recorded pattern reproduces the recorded epsilon.
  EXPECT_EQ(measured_epsilon(col, wc.pattern), wc.epsilon);
  EXPECT_EQ(wc.pattern.count(), wc.k);
}

TEST(Adversary, DeterministicUnderSeed) {
  pcs::sw::RevsortSwitch sw(64, 64);
  Rng a(253), b(253);
  WorstCase wa = worst_epsilon_search(sw, 10, 30, a);
  WorstCase wb = worst_epsilon_search(sw, 10, 30, b);
  EXPECT_EQ(wa.epsilon, wb.epsilon);
  EXPECT_EQ(wa.pattern, wb.pattern);
}

}  // namespace
}  // namespace pcs::core
