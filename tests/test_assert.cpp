#include "util/assert.hpp"

#include <gtest/gtest.h>

#include <string>

namespace pcs {
namespace {

TEST(Assert, PassingConditionIsSilent) {
  EXPECT_NO_THROW(PCS_REQUIRE(1 + 1 == 2, "arithmetic"));
}

TEST(Assert, FailureThrowsWithContext) {
  try {
    PCS_REQUIRE(false, "the reason");
    FAIL() << "should have thrown";
  } catch (const ContractViolation& e) {
    std::string what = e.what();
    EXPECT_NE(what.find("false"), std::string::npos);
    EXPECT_NE(what.find("test_assert.cpp"), std::string::npos);
    EXPECT_NE(what.find("the reason"), std::string::npos);
  }
}

TEST(Assert, EmptyMessageOmitsParens) {
  try {
    PCS_REQUIRE(false, "");
    FAIL() << "should have thrown";
  } catch (const ContractViolation& e) {
    std::string what = e.what();
    EXPECT_EQ(what.find("()"), std::string::npos);
  }
}

TEST(Assert, IsLogicError) {
  // Callers may catch std::logic_error generically.
  EXPECT_THROW(PCS_REQUIRE(false, "x"), std::logic_error);
}

TEST(Assert, ConditionEvaluatedOnce) {
  int count = 0;
  auto bump = [&]() {
    ++count;
    return true;
  };
  PCS_REQUIRE(bump(), "side effects");
  EXPECT_EQ(count, 1);
}

}  // namespace
}  // namespace pcs
