#include "util/assert.hpp"

#include <gtest/gtest.h>

#include <string>

namespace pcs {
namespace {

TEST(Assert, PassingConditionIsSilent) {
  EXPECT_NO_THROW(PCS_REQUIRE(1 + 1 == 2, "arithmetic"));
}

TEST(Assert, FailureThrowsWithContext) {
  try {
    PCS_REQUIRE(false, "the reason");
    FAIL() << "should have thrown";
  } catch (const ContractViolation& e) {
    std::string what = e.what();
    EXPECT_NE(what.find("false"), std::string::npos);
    EXPECT_NE(what.find("test_assert.cpp"), std::string::npos);
    EXPECT_NE(what.find("the reason"), std::string::npos);
  }
}

TEST(Assert, EmptyMessageOmitsParens) {
  try {
    PCS_REQUIRE(false, "");
    FAIL() << "should have thrown";
  } catch (const ContractViolation& e) {
    std::string what = e.what();
    EXPECT_EQ(what.find("()"), std::string::npos);
  }
}

TEST(Assert, IsLogicError) {
  // Callers may catch std::logic_error generically.
  EXPECT_THROW(PCS_REQUIRE(false, "x"), std::logic_error);
}

TEST(Assert, ConditionEvaluatedOnce) {
  int count = 0;
  auto bump = [&]() {
    ++count;
    return true;
  };
  PCS_REQUIRE(bump(), "side effects");
  EXPECT_EQ(count, 1);
}

TEST(Assert, MessageStreamsValues) {
  // Contract failures must name the offending values, not just a label.
  const std::size_t n = 17;
  const std::size_t m = 33;
  try {
    PCS_REQUIRE(m <= n, "m=" << m << " exceeds n=" << n << " (side=" << 4 << ")");
    FAIL() << "should have thrown";
  } catch (const ContractViolation& e) {
    std::string what = e.what();
    EXPECT_NE(what.find("m=33"), std::string::npos) << what;
    EXPECT_NE(what.find("n=17"), std::string::npos) << what;
    EXPECT_NE(what.find("side=4"), std::string::npos) << what;
  }
}

TEST(Assert, MessageIsLazy) {
  // The stream expression must not be evaluated on the passing path.
  int builds = 0;
  auto expensive = [&]() {
    ++builds;
    return 42;
  };
  PCS_REQUIRE(true, "value=" << expensive());
  EXPECT_EQ(builds, 0);
  try {
    PCS_REQUIRE(false, "value=" << expensive());
    FAIL() << "should have thrown";
  } catch (const ContractViolation& e) {
    EXPECT_EQ(builds, 1);
    EXPECT_NE(std::string(e.what()).find("value=42"), std::string::npos);
  }
}

}  // namespace
}  // namespace pcs
