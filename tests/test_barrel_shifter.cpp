#include "hyper/barrel_shifter.hpp"

#include <gtest/gtest.h>

#include "util/mathutil.hpp"
#include "util/rng.hpp"

namespace pcs::hyper {
namespace {

TEST(RotateRight, Semantics) {
  BitVec v = BitVec::from_string("1100");
  EXPECT_EQ(rotate_right(v, 0).to_string(), "1100");
  EXPECT_EQ(rotate_right(v, 1).to_string(), "0110");
  EXPECT_EQ(rotate_right(v, 3).to_string(), "1001");
  EXPECT_EQ(rotate_right(v, 4).to_string(), "1100");
  EXPECT_EQ(rotate_right(v, 7).to_string(), "1001");
}

TEST(RotateRight, EmptyVector) {
  BitVec v;
  EXPECT_EQ(rotate_right(v, 3), v);
}

TEST(HardwiredBarrelShifter, MatchesFunctionalRotation) {
  Rng rng(100);
  for (std::size_t n : {4u, 8u, 16u}) {
    for (std::size_t amount = 0; amount < n; amount += 3) {
      HardwiredBarrelShifter shifter(n, amount);
      for (int trial = 0; trial < 5; ++trial) {
        BitVec in = rng.bernoulli_bits(n, 0.5);
        EXPECT_EQ(shifter.evaluate(in), rotate_right(in, amount))
            << "n=" << n << " amount=" << amount;
      }
    }
  }
}

TEST(HardwiredBarrelShifter, ZeroGateDepth) {
  // Figure 4: the hardwired shifter is pure wiring -- zero logic depth, the
  // "only a constant number of gate delays" of Section 4.
  HardwiredBarrelShifter shifter(16, 5);
  EXPECT_EQ(shifter.data_path_depth(), 0u);
  EXPECT_EQ(shifter.circuit().gate_count(), 0u);
}

TEST(ProgrammableBarrelShifter, MatchesFunctionalRotation) {
  Rng rng(101);
  for (std::size_t n : {4u, 8u, 13u}) {
    ProgrammableBarrelShifter shifter(n);
    for (std::size_t amount = 0; amount < n; ++amount) {
      BitVec in = rng.bernoulli_bits(n, 0.5);
      EXPECT_EQ(shifter.evaluate(in, amount), rotate_right(in, amount))
          << "n=" << n << " amount=" << amount;
    }
  }
}

TEST(ProgrammableBarrelShifter, ControlBitsAndDepth) {
  ProgrammableBarrelShifter shifter(16);
  EXPECT_EQ(shifter.control_bits(), 4u);  // ceil(lg 16)
  // 2 gate delays per stage on the data path.
  EXPECT_EQ(shifter.data_path_depth(), 2 * pcs::ceil_log2(16));
}

TEST(ProgrammableBarrelShifter, HardwiredIsStrictlyShallower) {
  // The ablation the paper implies: hardwiring removes all data-path logic.
  const std::size_t n = 32;
  ProgrammableBarrelShifter prog(n);
  HardwiredBarrelShifter hard(n, 11);
  EXPECT_GT(prog.data_path_depth(), hard.data_path_depth());
}

}  // namespace
}  // namespace pcs::hyper
