#include "util/bitmatrix.hpp"

#include <gtest/gtest.h>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace pcs {
namespace {

TEST(BitMatrix, ShapeAndAccess) {
  BitMatrix m(4, 3);
  EXPECT_EQ(m.rows(), 4u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.size(), 12u);
  m.set(2, 1, true);
  EXPECT_TRUE(m.get(2, 1));
  EXPECT_FALSE(m.get(1, 2));
  EXPECT_THROW(m.get(4, 0), ContractViolation);
  EXPECT_THROW(m.set(0, 3, true), ContractViolation);
}

TEST(BitMatrix, RowMajorRoundtrip) {
  Rng rng(1);
  BitVec bits = rng.bernoulli_bits(20, 0.5);
  BitMatrix m = BitMatrix::from_row_major(bits, 5, 4);
  EXPECT_EQ(m.to_row_major(), bits);
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      EXPECT_EQ(m.get(i, j), bits.get(i * 4 + j));
    }
  }
}

TEST(BitMatrix, ColMajorOrder) {
  // 2x3 matrix [[a b c], [d e f]] reads column-major as a d b e c f.
  BitMatrix m = BitMatrix::from_row_major(BitVec{1, 0, 1, 0, 1, 0}, 2, 3);
  EXPECT_EQ(m.to_col_major().to_string(), "100110");
}

TEST(BitMatrix, RowColViews) {
  BitMatrix m = BitMatrix::from_row_major(BitVec{1, 0, 1, 0, 1, 0}, 2, 3);
  EXPECT_EQ(m.row(0).to_string(), "101");
  EXPECT_EQ(m.row(1).to_string(), "010");
  EXPECT_EQ(m.col(0).to_string(), "10");
  EXPECT_EQ(m.col(1).to_string(), "01");
  EXPECT_EQ(m.col(2).to_string(), "10");
}

TEST(BitMatrix, SetRowCol) {
  BitMatrix m(3, 3);
  m.set_row(1, BitVec{1, 1, 0});
  m.set_col(2, BitVec{1, 0, 1});
  EXPECT_EQ(m.row(1).to_string(), "110");
  EXPECT_EQ(m.col(2).to_string(), "101");
  EXPECT_THROW(m.set_row(1, BitVec{1, 1}), ContractViolation);
}

TEST(BitMatrix, CountsAndDirtyRows) {
  BitMatrix m = BitMatrix::from_row_major(BitVec{1, 1, 1, 1, 0, 1, 0, 0, 0}, 3, 3);
  EXPECT_EQ(m.count(), 5u);
  EXPECT_EQ(m.row_count(0), 3u);
  EXPECT_FALSE(m.row_is_dirty(0));  // clean 1s
  EXPECT_TRUE(m.row_is_dirty(1));   // 101 mixed
  EXPECT_FALSE(m.row_is_dirty(2));  // clean 0s
  EXPECT_EQ(m.dirty_row_count(), 1u);
}

TEST(BitMatrix, TransposeTwiceIsIdentity) {
  Rng rng(3);
  BitMatrix m = BitMatrix::from_row_major(rng.bernoulli_bits(35, 0.4), 5, 7);
  BitMatrix t = m.transposed();
  EXPECT_EQ(t.rows(), 7u);
  EXPECT_EQ(t.cols(), 5u);
  EXPECT_EQ(t.transposed(), m);
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = 0; j < 7; ++j) EXPECT_EQ(m.get(i, j), t.get(j, i));
  }
}

TEST(BitMatrix, TransposeSwapsMajorOrders) {
  Rng rng(4);
  BitMatrix m = BitMatrix::from_row_major(rng.bernoulli_bits(24, 0.5), 4, 6);
  EXPECT_EQ(m.transposed().to_row_major(), m.to_col_major());
}

TEST(BitMatrix, ToStringRendersRows) {
  BitMatrix m = BitMatrix::from_row_major(BitVec{1, 0, 0, 1}, 2, 2);
  EXPECT_EQ(m.to_string(), "10\n01\n");
}

}  // namespace
}  // namespace pcs
