#include "util/bitvec.hpp"

#include <gtest/gtest.h>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace pcs {
namespace {

TEST(BitVec, DefaultEmpty) {
  BitVec v;
  EXPECT_EQ(v.size(), 0u);
  EXPECT_TRUE(v.empty());
  EXPECT_TRUE(v.is_clean());
  EXPECT_TRUE(v.is_sorted_nonincreasing());
}

TEST(BitVec, ConstructFill) {
  BitVec zeros(100);
  EXPECT_EQ(zeros.count(), 0u);
  BitVec ones(100, true);
  EXPECT_EQ(ones.count(), 100u);
  for (std::size_t i = 0; i < 100; ++i) EXPECT_TRUE(ones.get(i));
}

TEST(BitVec, InitializerList) {
  BitVec v{1, 0, 1, 1, 0};
  EXPECT_EQ(v.size(), 5u);
  EXPECT_TRUE(v.get(0));
  EXPECT_FALSE(v.get(1));
  EXPECT_TRUE(v.get(2));
  EXPECT_TRUE(v.get(3));
  EXPECT_FALSE(v.get(4));
}

TEST(BitVec, FromToString) {
  BitVec v = BitVec::from_string("10110");
  EXPECT_EQ(v.to_string(), "10110");
  EXPECT_THROW(BitVec::from_string("10x"), ContractViolation);
}

TEST(BitVec, SetGetFlipBounds) {
  BitVec v(10);
  v.set(3, true);
  EXPECT_TRUE(v.get(3));
  v.flip(3);
  EXPECT_FALSE(v.get(3));
  v.flip(9);
  EXPECT_TRUE(v.get(9));
  EXPECT_THROW(v.get(10), ContractViolation);
  EXPECT_THROW(v.set(10, true), ContractViolation);
}

TEST(BitVec, CountAcrossWordBoundaries) {
  BitVec v(130);
  v.set(0, true);
  v.set(63, true);
  v.set(64, true);
  v.set(127, true);
  v.set(129, true);
  EXPECT_EQ(v.count(), 5u);
}

TEST(BitVec, RankSelectAgree) {
  Rng rng(42);
  BitVec v = rng.bernoulli_bits(200, 0.3);
  std::size_t k = v.count();
  for (std::size_t j = 0; j < k; ++j) {
    std::size_t pos = v.select1(j);
    ASSERT_LT(pos, v.size());
    EXPECT_TRUE(v.get(pos));
    EXPECT_EQ(v.rank1_before(pos), j);
  }
  EXPECT_EQ(v.select1(k), v.size());
  EXPECT_EQ(v.rank1_before(v.size()), k);
}

TEST(BitVec, RankPrefixMonotone) {
  BitVec v = BitVec::from_string("1101001");
  EXPECT_EQ(v.rank1_before(0), 0u);
  EXPECT_EQ(v.rank1_before(1), 1u);
  EXPECT_EQ(v.rank1_before(2), 2u);
  EXPECT_EQ(v.rank1_before(3), 2u);
  EXPECT_EQ(v.rank1_before(7), 4u);
}

TEST(BitVec, SortedNonincreasing) {
  EXPECT_TRUE(BitVec::from_string("111000").is_sorted_nonincreasing());
  EXPECT_TRUE(BitVec::from_string("000000").is_sorted_nonincreasing());
  EXPECT_TRUE(BitVec::from_string("111111").is_sorted_nonincreasing());
  EXPECT_FALSE(BitVec::from_string("110100").is_sorted_nonincreasing());
  EXPECT_FALSE(BitVec::from_string("011").is_sorted_nonincreasing());
}

TEST(BitVec, CleanDirty) {
  EXPECT_TRUE(BitVec(5).is_clean());
  EXPECT_TRUE(BitVec(5, true).is_clean());
  EXPECT_FALSE(BitVec::from_string("10").is_clean());
}

TEST(BitVec, FillAndTailMasking) {
  BitVec v(70);
  v.fill(true);
  EXPECT_EQ(v.count(), 70u);
  v.fill(false);
  EXPECT_EQ(v.count(), 0u);
}

TEST(BitVec, PushBack) {
  BitVec v;
  for (int i = 0; i < 100; ++i) v.push_back(i % 3 == 0);
  EXPECT_EQ(v.size(), 100u);
  EXPECT_EQ(v.count(), 34u);
  EXPECT_TRUE(v.get(99));
}

TEST(BitVec, EqualityIncludesSize) {
  BitVec a(10), b(10), c(11);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  b.set(5, true);
  EXPECT_NE(a, b);
}

TEST(BitVec, BoolsRoundtrip) {
  Rng rng(7);
  BitVec v = rng.bernoulli_bits(97, 0.5);
  EXPECT_EQ(BitVec::from_bools(v.to_bools()), v);
}

}  // namespace
}  // namespace pcs
