#include "core/bounds.hpp"

#include <gtest/gtest.h>

#include "cost/resource_model.hpp"

namespace pcs::core {
namespace {

TEST(Bounds, RevsortEpsilon) {
  EXPECT_EQ(revsort_epsilon_bound(16), 7u * 16u);
  EXPECT_EQ(revsort_epsilon_bound(64), 15u * 64u);
}

TEST(Bounds, ColumnsortEpsilon) {
  EXPECT_EQ(columnsort_epsilon_bound(4), 9u);
  EXPECT_EQ(columnsort_epsilon_bound(1), 0u);
}

TEST(Bounds, AlphaAndCapacity) {
  EXPECT_DOUBLE_EQ(alpha_from_epsilon(0, 100), 1.0);
  EXPECT_DOUBLE_EQ(alpha_from_epsilon(25, 100), 0.75);
  EXPECT_DOUBLE_EQ(alpha_from_epsilon(150, 100), 0.0);
  EXPECT_EQ(capacity_from_epsilon(25, 100), 75u);
  EXPECT_EQ(capacity_from_epsilon(150, 100), 0u);
  EXPECT_DOUBLE_EQ(alpha_from_epsilon(5, 0), 0.0);
}

TEST(Bounds, DelayFormulasMatchResourceModelAtZeroOverhead) {
  pcs::cost::DelayModel zero{.pad_delay = 0, .shifter_delay = 0};
  for (std::size_t n : {256u, 4096u}) {
    EXPECT_EQ(pcs::cost::revsort_report(n, n / 2, zero).gate_delays,
              revsort_delay_formula(n, 0));
  }
  EXPECT_EQ(pcs::cost::columnsort_report(256, 16, 2048, zero).gate_delays,
            columnsort_delay_formula(256, 0));
  EXPECT_EQ(hyper_chip_delay_formula(1024), 20u);
}

TEST(Bounds, ColumnsortDelayIsFourBetaLgN) {
  // r = n^beta => 4 lg r = 4 beta lg n.  Check at beta = 3/4, n = 2^12.
  EXPECT_EQ(columnsort_delay_formula(512, 0), 36u);  // 4 * 9 = 4 * 0.75 * 12
}

}  // namespace
}  // namespace pcs::core
