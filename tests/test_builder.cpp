#include "gates/builder.hpp"

#include <gtest/gtest.h>

#include "gates/evaluator.hpp"
#include "util/mathutil.hpp"
#include "util/rng.hpp"

namespace pcs::gates {
namespace {

TEST(Builder, OrTreeSemanticsAndDepth) {
  for (std::size_t n : {1u, 2u, 3u, 5u, 8u, 13u}) {
    Circuit c;
    Builder b(c);
    std::vector<NodeId> ins;
    for (std::size_t i = 0; i < n; ++i) ins.push_back(c.add_input());
    c.mark_output(b.or_tree(ins));
    EXPECT_LE(c.depth(), ceil_log2(n) + (n == 1 ? 0 : 0)) << "n=" << n;
    Evaluator eval(c);
    // All-zero -> 0; single one anywhere -> 1.
    EXPECT_FALSE(eval.evaluate(BitVec(n)).get(0));
    for (std::size_t i = 0; i < n; ++i) {
      BitVec in(n);
      in.set(i, true);
      EXPECT_TRUE(eval.evaluate(in).get(0));
    }
  }
}

TEST(Builder, AndTreeSemantics) {
  const std::size_t n = 6;
  Circuit c;
  Builder b(c);
  std::vector<NodeId> ins;
  for (std::size_t i = 0; i < n; ++i) ins.push_back(c.add_input());
  c.mark_output(b.and_tree(ins));
  Evaluator eval(c);
  EXPECT_TRUE(eval.evaluate(BitVec(n, true)).get(0));
  for (std::size_t i = 0; i < n; ++i) {
    BitVec in(n, true);
    in.set(i, false);
    EXPECT_FALSE(eval.evaluate(in).get(0));
  }
}

TEST(Builder, EmptyTreesAreConstants) {
  Circuit c;
  Builder b(c);
  c.mark_output(b.or_tree({}));
  c.mark_output(b.and_tree({}));
  Evaluator eval(c);
  BitVec out = eval.evaluate(BitVec(0));
  EXPECT_FALSE(out.get(0));
  EXPECT_TRUE(out.get(1));
}

TEST(Builder, Steer2TwoGateDepthAndSemantics) {
  Circuit c;
  Builder b(c);
  NodeId l = c.add_input();
  NodeId gl = c.add_input();
  NodeId r = c.add_input();
  NodeId gr = c.add_input();
  NodeId out = b.steer2(l, gl, r, gr);
  c.mark_output(out);
  std::vector<NodeId> data{l, r};
  EXPECT_EQ(c.output_depths_from(data)[0], 2);
  Evaluator eval(c);
  // gl selects l, gr selects r, neither -> 0, both -> OR.
  EXPECT_TRUE(eval.evaluate(BitVec{1, 1, 0, 0}).get(0));
  EXPECT_FALSE(eval.evaluate(BitVec{1, 0, 0, 0}).get(0));
  EXPECT_TRUE(eval.evaluate(BitVec{0, 0, 1, 1}).get(0));
  EXPECT_FALSE(eval.evaluate(BitVec{0, 1, 0, 0}).get(0));
}

TEST(Builder, MuxSemantics) {
  Circuit c;
  Builder b(c);
  NodeId sel = c.add_input();
  NodeId a = c.add_input();
  NodeId x = c.add_input();
  c.mark_output(b.mux(sel, a, x));
  Evaluator eval(c);
  EXPECT_TRUE(eval.evaluate(BitVec{1, 1, 0}).get(0));   // sel -> a
  EXPECT_FALSE(eval.evaluate(BitVec{1, 0, 1}).get(0));  // sel -> a
  EXPECT_TRUE(eval.evaluate(BitVec{0, 0, 1}).get(0));   // !sel -> b
  EXPECT_FALSE(eval.evaluate(BitVec{0, 1, 0}).get(0));
}

TEST(Builder, ThermometerCountCorrectOnAllPatterns) {
  const std::size_t n = 6;
  Circuit c;
  Builder b(c);
  std::vector<NodeId> ins;
  for (std::size_t i = 0; i < n; ++i) ins.push_back(c.add_input());
  auto thermo = b.thermometer_count(ins);
  ASSERT_EQ(thermo.size(), n);
  for (NodeId t : thermo) c.mark_output(t);
  Evaluator eval(c);
  for (std::uint32_t pattern = 0; pattern < (1u << n); ++pattern) {
    BitVec in(n);
    std::size_t ones = 0;
    for (std::size_t i = 0; i < n; ++i) {
      bool bit = (pattern >> i) & 1u;
      in.set(i, bit);
      ones += bit;
    }
    BitVec out = eval.evaluate(in);
    for (std::size_t k = 0; k < n; ++k) {
      EXPECT_EQ(out.get(k), ones > k) << "pattern=" << pattern << " k=" << k;
    }
  }
}

TEST(Builder, ThermometerAddRandomized) {
  Rng rng(70);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t la = 1 + rng.below(5);
    const std::size_t lb = 1 + rng.below(5);
    Circuit c;
    Builder b(c);
    std::vector<NodeId> a_in, b_in;
    for (std::size_t i = 0; i < la; ++i) a_in.push_back(c.add_input());
    for (std::size_t i = 0; i < lb; ++i) b_in.push_back(c.add_input());
    auto sum = b.thermometer_add(a_in, b_in);
    ASSERT_EQ(sum.size(), la + lb);
    for (NodeId s : sum) c.mark_output(s);
    Evaluator eval(c);
    for (std::size_t va = 0; va <= la; ++va) {
      for (std::size_t vb = 0; vb <= lb; ++vb) {
        BitVec in(la + lb);
        for (std::size_t i = 0; i < va; ++i) in.set(i, true);
        for (std::size_t i = 0; i < vb; ++i) in.set(la + i, true);
        BitVec out = eval.evaluate(in);
        for (std::size_t k = 0; k < la + lb; ++k) {
          EXPECT_EQ(out.get(k), va + vb > k) << "va=" << va << " vb=" << vb;
        }
      }
    }
  }
}

}  // namespace
}  // namespace pcs::gates
