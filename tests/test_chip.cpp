#include "switch/chip.hpp"

#include <gtest/gtest.h>

namespace pcs::sw {
namespace {

TEST(Chip, BomTotals) {
  Bom bom;
  bom.items.push_back(ChipSpec{ChipKind::kHyperconcentrator, 16, 32, 0, 48});
  bom.items.push_back(ChipSpec{ChipKind::kBarrelShifter, 16, 32, 4, 16});
  EXPECT_EQ(bom.total_chips(), 64u);
  EXPECT_EQ(bom.max_pins_per_chip(), 36u);  // shifter: 32 data + 4 control
  EXPECT_EQ(bom.total_chip_area(), 64u * 256u);
}

TEST(Chip, EmptyBom) {
  Bom bom;
  EXPECT_EQ(bom.total_chips(), 0u);
  EXPECT_EQ(bom.max_pins_per_chip(), 0u);
  EXPECT_EQ(bom.total_chip_area(), 0u);
  EXPECT_EQ(bom.to_string(), "");
}

TEST(Chip, KindNames) {
  EXPECT_EQ(chip_kind_name(ChipKind::kHyperconcentrator), "hyperconcentrator");
  EXPECT_EQ(chip_kind_name(ChipKind::kBarrelShifter), "barrel-shifter");
}

TEST(Chip, ToStringListsControlPins) {
  Bom bom;
  bom.items.push_back(ChipSpec{ChipKind::kBarrelShifter, 8, 16, 3, 8});
  std::string s = bom.to_string();
  EXPECT_NE(s.find("8 x 8-wide barrel-shifter"), std::string::npos);
  EXPECT_NE(s.find("hardwired control"), std::string::npos);
}

TEST(Chip, PinsSumsDataAndControl) {
  ChipSpec c{ChipKind::kBarrelShifter, 8, 16, 3, 1};
  EXPECT_EQ(c.pins(), 19u);
}

}  // namespace
}  // namespace pcs::sw
