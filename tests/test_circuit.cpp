#include "gates/circuit.hpp"

#include <gtest/gtest.h>

#include "gates/evaluator.hpp"
#include "util/assert.hpp"

namespace pcs::gates {
namespace {

TEST(Circuit, BasicGatesTruthTables) {
  Circuit c;
  NodeId a = c.add_input();
  NodeId b = c.add_input();
  c.mark_output(c.add_and(a, b));
  c.mark_output(c.add_or(a, b));
  c.mark_output(c.add_xor(a, b));
  c.mark_output(c.add_not(a));
  Evaluator eval(c);
  struct Case {
    int a, b, and_, or_, xor_, not_;
  };
  const Case cases[] = {{0, 0, 0, 0, 0, 1}, {0, 1, 0, 1, 1, 1},
                        {1, 0, 0, 1, 1, 0}, {1, 1, 1, 1, 0, 0}};
  for (const Case& tc : cases) {
    BitVec in{tc.a, tc.b};
    BitVec out = eval.evaluate(in);
    EXPECT_EQ(out.get(0), tc.and_ == 1);
    EXPECT_EQ(out.get(1), tc.or_ == 1);
    EXPECT_EQ(out.get(2), tc.xor_ == 1);
    EXPECT_EQ(out.get(3), tc.not_ == 1);
  }
}

TEST(Circuit, ConstantsShared) {
  Circuit c;
  EXPECT_EQ(c.const_zero(), c.const_zero());
  EXPECT_EQ(c.const_one(), c.const_one());
  c.mark_output(c.const_zero());
  c.mark_output(c.const_one());
  Evaluator eval(c);
  BitVec out = eval.evaluate(BitVec(0));
  EXPECT_FALSE(out.get(0));
  EXPECT_TRUE(out.get(1));
}

TEST(Circuit, OperandValidation) {
  Circuit c;
  NodeId a = c.add_input();
  EXPECT_THROW(c.add_and(a, 99), pcs::ContractViolation);
  EXPECT_THROW(c.add_not(99), pcs::ContractViolation);
  EXPECT_THROW(c.mark_output(99), pcs::ContractViolation);
}

TEST(Circuit, DepthCounting) {
  Circuit c;
  NodeId a = c.add_input();
  NodeId b = c.add_input();
  NodeId g1 = c.add_and(a, b);      // depth 1
  NodeId g2 = c.add_or(g1, a);      // depth 2
  NodeId g3 = c.add_not(g2);        // depth 3
  c.mark_output(a);                 // depth 0
  c.mark_output(g3);                // depth 3
  auto depths = c.output_depths();
  EXPECT_EQ(depths[0], 0u);
  EXPECT_EQ(depths[1], 3u);
  EXPECT_EQ(c.depth(), 3u);
  EXPECT_EQ(c.gate_count(), 3u);
}

TEST(Circuit, DepthsFromSubsetOfSources) {
  // d = (a AND ctrl); only paths from `a` should count when a is the source.
  Circuit c;
  NodeId a = c.add_input();
  NodeId ctrl = c.add_input();
  NodeId deep_ctrl = c.add_not(c.add_not(c.add_not(ctrl)));  // control depth 3
  NodeId out = c.add_and(a, deep_ctrl);
  c.mark_output(out);
  std::vector<NodeId> data_sources{a};
  auto from_data = c.output_depths_from(data_sources);
  EXPECT_EQ(from_data[0], 1);  // one AND between a and the output
  std::vector<NodeId> ctrl_sources{ctrl};
  auto from_ctrl = c.output_depths_from(ctrl_sources);
  EXPECT_EQ(from_ctrl[0], 4);  // three NOTs plus the AND
}

TEST(Circuit, DepthsFromUnreachableIsMinusOne) {
  Circuit c;
  NodeId a = c.add_input();
  NodeId b = c.add_input();
  c.mark_output(c.add_not(b));
  std::vector<NodeId> sources{a};
  EXPECT_EQ(c.output_depths_from(sources)[0], -1);
}

TEST(Circuit, LaneParallelEvaluationMatchesScalar) {
  Circuit c;
  NodeId a = c.add_input();
  NodeId b = c.add_input();
  NodeId x = c.add_xor(c.add_and(a, b), c.add_or(a, c.add_not(b)));
  c.mark_output(x);
  Evaluator eval(c);
  // All four input combinations packed into lanes 0..3.
  std::vector<std::uint64_t> lanes = {0b0101, 0b0011};
  auto out = eval.evaluate_lanes(lanes);
  for (int lane = 0; lane < 4; ++lane) {
    BitVec in{static_cast<int>((lanes[0] >> lane) & 1u),
              static_cast<int>((lanes[1] >> lane) & 1u)};
    BitVec scalar = eval.evaluate(in);
    EXPECT_EQ((out[0] >> lane) & 1u, scalar.get(0) ? 1u : 0u) << "lane " << lane;
  }
}

TEST(Circuit, EvaluatorArityChecked) {
  Circuit c;
  c.add_input();
  c.mark_output(c.const_one());
  Evaluator eval(c);
  EXPECT_THROW(eval.evaluate(BitVec(2)), pcs::ContractViolation);
}

}  // namespace
}  // namespace pcs::gates
