#include "message/clocked_sim.hpp"

#include <gtest/gtest.h>

#include "switch/columnsort_switch.hpp"
#include "switch/hyper_switch.hpp"
#include "switch/revsort_switch.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace pcs::msg {
namespace {

TEST(ClockedSim, PayloadsRideEstablishedPaths) {
  pcs::sw::HyperSwitch sw(8, 8);
  Rng rng(190);
  MessageBatch batch = random_batch(BitVec::from_string("01100101"), 12, 2, rng);
  ClockedSimResult result = run_clocked(sw, batch);
  EXPECT_EQ(result.cycles, 13u);  // setup + 12 payload cycles
  EXPECT_EQ(result.delivered.size(), 4u);
  EXPECT_TRUE(result.congested.empty());
  EXPECT_TRUE(result.payloads_intact(batch));
  // Stable hyperconcentration: sources appear on outputs in input order.
  EXPECT_EQ(result.delivered[0].observed.source, 1u);
  EXPECT_EQ(result.delivered[0].output_wire, 0u);
  EXPECT_EQ(result.delivered[3].observed.source, 7u);
}

TEST(ClockedSim, CongestedMessagesReported) {
  pcs::sw::HyperSwitch sw(8, 2);
  Rng rng(191);
  MessageBatch batch = random_batch(BitVec(8, true), 4, 2, rng);
  ClockedSimResult result = run_clocked(sw, batch);
  EXPECT_EQ(result.delivered.size(), 2u);
  EXPECT_EQ(result.congested.size(), 6u);
  EXPECT_TRUE(result.payloads_intact(batch));
}

TEST(ClockedSim, ThroughMultichipSwitches) {
  Rng rng(192);
  pcs::sw::RevsortSwitch rev(64, 48);
  pcs::sw::ColumnsortSwitch col(16, 4, 48);
  for (pcs::sw::ConcentratorSwitch* sw :
       std::initializer_list<pcs::sw::ConcentratorSwitch*>{&rev, &col}) {
    for (int trial = 0; trial < 10; ++trial) {
      BitVec valid = rng.bernoulli_bits(64, 0.4);
      MessageBatch batch = random_batch(valid, 20, 8, rng);
      ClockedSimResult result = run_clocked(*sw, batch);
      EXPECT_TRUE(result.payloads_intact(batch)) << sw->name();
      EXPECT_EQ(result.delivered.size() + result.congested.size(), valid.count());
      // Delivered messages occupy distinct outputs.
      std::vector<bool> used(sw->outputs(), false);
      for (const Delivery& d : result.delivered) {
        EXPECT_FALSE(used[d.output_wire]);
        used[d.output_wire] = true;
      }
    }
  }
}

TEST(ClockedSim, EmptyBatchIsFine) {
  pcs::sw::HyperSwitch sw(4, 4);
  MessageBatch batch(4);
  ClockedSimResult result = run_clocked(sw, batch);
  EXPECT_TRUE(result.delivered.empty());
  EXPECT_TRUE(result.congested.empty());
  EXPECT_EQ(result.cycles, 1u);  // setup only
}

TEST(ClockedSim, MixedPayloadLengthsRejected) {
  pcs::sw::HyperSwitch sw(4, 4);
  MessageBatch batch(4);
  Message a;
  a.source = 0;
  a.payload = BitVec(4);
  Message b;
  b.source = 1;
  b.payload = BitVec(5);
  batch.add(a);
  batch.add(b);
  EXPECT_THROW(run_clocked(sw, batch), pcs::ContractViolation);
}

TEST(ClockedSim, WidthMismatchRejected) {
  pcs::sw::HyperSwitch sw(4, 4);
  MessageBatch batch(5);
  EXPECT_THROW(run_clocked(sw, batch), pcs::ContractViolation);
}

}  // namespace
}  // namespace pcs::msg
