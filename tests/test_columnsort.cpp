#include "sortnet/columnsort.hpp"

#include <gtest/gtest.h>

#include "sortnet/mesh_ops.hpp"
#include "sortnet/nearsort.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace pcs::sortnet {
namespace {

TEST(Columnsort, ReshapeMatchesPaperFormula) {
  // Step 2: element at (i, j) moves to row floor((rj+i)/s), col (rj+i) mod s.
  const std::size_t r = 6, s = 3;
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < s; ++j) {
      BitMatrix m(r, s);
      m.set(i, j, true);
      BitMatrix out = cm_to_rm_reshape(m);
      std::size_t x = r * j + i;
      EXPECT_TRUE(out.get(x / s, x % s)) << "i=" << i << " j=" << j;
      EXPECT_EQ(out.count(), 1u);
    }
  }
}

TEST(Columnsort, ReshapeInverse) {
  Rng rng(50);
  for (int trial = 0; trial < 20; ++trial) {
    BitMatrix m = BitMatrix::from_row_major(rng.bernoulli_bits(48, 0.5), 12, 4);
    EXPECT_EQ(rm_to_cm_reshape(cm_to_rm_reshape(m)), m);
    EXPECT_EQ(cm_to_rm_reshape(rm_to_cm_reshape(m)), m);
  }
}

TEST(Columnsort, Algorithm2RequiresDivisibility) {
  BitMatrix bad(10, 4);
  EXPECT_THROW(columnsort_algorithm2(bad), pcs::ContractViolation);
}

TEST(Columnsort, EpsilonBoundFormula) {
  EXPECT_EQ(algorithm2_epsilon_bound(1), 0u);
  EXPECT_EQ(algorithm2_epsilon_bound(3), 4u);
  EXPECT_EQ(algorithm2_epsilon_bound(4), 9u);
  EXPECT_EQ(algorithm2_epsilon_bound(8), 49u);
}

struct Shape {
  std::size_t r, s;
};

class ColumnsortNearsort : public ::testing::TestWithParam<Shape> {};

// Theorem 4's prerequisite: Algorithm 2 output, read row-major, is
// (s-1)^2-nearsorted.
TEST_P(ColumnsortNearsort, Algorithm2IsNearsorter) {
  const auto [r, s] = GetParam();
  const std::size_t eps = algorithm2_epsilon_bound(s);
  Rng rng(51 + r * 7 + s);
  for (int trial = 0; trial < 60; ++trial) {
    BitMatrix m =
        BitMatrix::from_row_major(rng.bernoulli_bits(r * s, rng.uniform01()), r, s);
    std::size_t count = m.count();
    columnsort_algorithm2(m);
    EXPECT_EQ(m.count(), count);
    EXPECT_LE(min_nearsort_epsilon(m.to_row_major()), eps)
        << "r=" << r << " s=" << s << " trial=" << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, ColumnsortNearsort,
                         ::testing::Values(Shape{4, 2}, Shape{8, 2}, Shape{8, 4},
                                           Shape{16, 4}, Shape{32, 4}, Shape{32, 8},
                                           Shape{64, 8}, Shape{128, 8}, Shape{9, 3},
                                           Shape{27, 3}));

TEST(Columnsort, ShapeOkPredicate) {
  EXPECT_TRUE(columnsort_shape_ok(8, 2));    // 8 >= 2*1
  EXPECT_TRUE(columnsort_shape_ok(32, 4));   // 32 >= 2*9
  EXPECT_FALSE(columnsort_shape_ok(16, 4));  // 16 < 18
  EXPECT_FALSE(columnsort_shape_ok(10, 4));  // not divisible
  EXPECT_FALSE(columnsort_shape_ok(8, 0));
}

class ColumnsortFull : public ::testing::TestWithParam<Shape> {};

// Leighton's theorem: all eight steps fully sort (column-major order)
// whenever r >= 2(s-1)^2.
TEST_P(ColumnsortFull, SortsColumnMajor) {
  const auto [r, s] = GetParam();
  ASSERT_TRUE(columnsort_shape_ok(r, s));
  Rng rng(52 + r * 13 + s);
  for (int trial = 0; trial < 40; ++trial) {
    BitMatrix m =
        BitMatrix::from_row_major(rng.bernoulli_bits(r * s, rng.uniform01()), r, s);
    std::size_t count = m.count();
    columnsort_full(m);
    EXPECT_TRUE(is_col_major_sorted(m)) << "r=" << r << " s=" << s << " trial=" << trial;
    EXPECT_EQ(m.count(), count);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, ColumnsortFull,
                         ::testing::Values(Shape{8, 2}, Shape{16, 2}, Shape{32, 4},
                                           Shape{64, 4}, Shape{128, 8}, Shape{18, 3},
                                           Shape{4, 1}));

TEST(Columnsort, ShiftSortUnshiftPreservesCount) {
  Rng rng(53);
  for (int trial = 0; trial < 20; ++trial) {
    BitMatrix m = BitMatrix::from_row_major(rng.bernoulli_bits(64, 0.5), 16, 4);
    std::size_t count = m.count();
    columnsort_shift_sort_unshift(m);
    EXPECT_EQ(m.count(), count);
  }
}

TEST(Columnsort, FullSortEdgeDensities) {
  for (double p : {0.0, 1.0}) {
    Rng rng(54);
    BitMatrix m = BitMatrix::from_row_major(rng.bernoulli_bits(64, p), 32, 2);
    columnsort_full(m);
    EXPECT_TRUE(is_col_major_sorted(m));
  }
}

}  // namespace
}  // namespace pcs::sortnet
