#include "switch/columnsort_switch.hpp"

#include <gtest/gtest.h>

#include "sortnet/columnsort.hpp"
#include "sortnet/nearsort.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace pcs::sw {
namespace {

TEST(ColumnsortSwitch, ShapeValidation) {
  EXPECT_NO_THROW(ColumnsortSwitch(16, 4, 32));
  EXPECT_THROW(ColumnsortSwitch(10, 4, 20), pcs::ContractViolation);  // 4 !| 10
  EXPECT_THROW(ColumnsortSwitch(16, 4, 0), pcs::ContractViolation);
  EXPECT_THROW(ColumnsortSwitch(16, 4, 65), pcs::ContractViolation);
}

TEST(ColumnsortSwitch, FromBetaShapes) {
  // n = 4096, lg n = 12.
  auto half = ColumnsortSwitch::from_beta(4096, 0.5, 2048);
  EXPECT_EQ(half.r(), 64u);
  EXPECT_EQ(half.s(), 64u);
  auto five8 = ColumnsortSwitch::from_beta(4096, 0.625, 2048);
  EXPECT_EQ(five8.r(), 256u);  // e = lround(0.625 * 12) = 8
  auto three4 = ColumnsortSwitch::from_beta(4096, 0.75, 2048);
  EXPECT_EQ(three4.r(), 512u);  // e = 9
  auto one = ColumnsortSwitch::from_beta(4096, 1.0, 2048);
  EXPECT_EQ(one.r(), 4096u);
  EXPECT_EQ(one.s(), 1u);
  EXPECT_THROW(ColumnsortSwitch::from_beta(4096, 0.3, 10), pcs::ContractViolation);
  EXPECT_THROW(ColumnsortSwitch::from_beta(100, 0.5, 10), pcs::ContractViolation);
}

TEST(ColumnsortSwitch, BetaAccessorConsistent) {
  auto sw = ColumnsortSwitch::from_beta(4096, 0.75, 100);
  EXPECT_NEAR(sw.beta(), 0.75, 0.05);
}

TEST(ColumnsortSwitch, EpsilonBoundMatchesTheorem4) {
  ColumnsortSwitch sw(16, 4, 32);
  EXPECT_EQ(sw.epsilon_bound(), 9u);  // (4-1)^2
  ColumnsortSwitch sw2(64, 8, 256);
  EXPECT_EQ(sw2.epsilon_bound(), 49u);
}

class ColumnsortWiringEquivalence
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(ColumnsortWiringEquivalence, RouteEqualsRouteViaWiring) {
  auto [r, s] = GetParam();
  ColumnsortSwitch sw(r, s, (r * s) / 2);
  Rng rng(150 + r + s);
  for (int trial = 0; trial < 25; ++trial) {
    BitVec valid = rng.bernoulli_bits(r * s, rng.uniform01());
    SwitchRouting a = sw.route(valid);
    SwitchRouting b = sw.route_via_wiring(valid);
    EXPECT_EQ(a.output_of_input, b.output_of_input) << "trial " << trial;
    EXPECT_EQ(a.input_of_output, b.input_of_output) << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ColumnsortWiringEquivalence,
    ::testing::Values(std::pair<std::size_t, std::size_t>{4, 2},
                      std::pair<std::size_t, std::size_t>{16, 4},
                      std::pair<std::size_t, std::size_t>{64, 8},
                      std::pair<std::size_t, std::size_t>{256, 16},
                      std::pair<std::size_t, std::size_t>{64, 2}));

class ColumnsortEpsilon
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(ColumnsortEpsilon, MeasuredWithinBound) {
  auto [r, s] = GetParam();
  const std::size_t n = r * s;
  ColumnsortSwitch sw(r, s, n);
  Rng rng(151 + r + s);
  for (int trial = 0; trial < 40; ++trial) {
    BitVec valid = rng.bernoulli_bits(n, rng.uniform01());
    BitVec arrangement = sw.nearsorted_valid_bits(valid);
    EXPECT_EQ(arrangement.count(), valid.count());
    EXPECT_LE(sortnet::min_nearsort_epsilon(arrangement), sw.epsilon_bound())
        << "r=" << r << " s=" << s << " trial=" << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ColumnsortEpsilon,
    ::testing::Values(std::pair<std::size_t, std::size_t>{8, 4},
                      std::pair<std::size_t, std::size_t>{16, 4},
                      std::pair<std::size_t, std::size_t>{64, 8},
                      std::pair<std::size_t, std::size_t>{128, 16},
                      std::pair<std::size_t, std::size_t>{512, 8}));

TEST(ColumnsortSwitch, ConcentrationContractAcrossLoads) {
  const std::size_t r = 64, s = 8, n = r * s;
  for (std::size_t m : {128u, 256u, 400u, 512u}) {
    ColumnsortSwitch sw(r, s, m);
    Rng rng(152 + m);
    for (std::size_t k = 0; k <= n; k += 29) {
      BitVec valid = rng.exact_weight_bits(n, k);
      SwitchRouting routing = sw.route(valid);
      EXPECT_TRUE(concentration_contract_holds(sw, valid, routing))
          << "m=" << m << " k=" << k;
    }
  }
}

TEST(ColumnsortSwitch, MeshAgreesWithSortnetAlgorithm2) {
  const std::size_t r = 16, s = 4, n = r * s;
  ColumnsortSwitch sw(r, s, n);
  Rng rng(153);
  for (int trial = 0; trial < 20; ++trial) {
    BitVec valid = rng.bernoulli_bits(n, 0.5);
    BitMatrix m(r, s);
    for (std::size_t x = 0; x < n; ++x) {
      m.set(x % r, x / r, valid.get(x));
    }
    sortnet::columnsort_algorithm2(m);
    EXPECT_EQ(sw.nearsorted_valid_bits(valid), m.to_row_major());
  }
}

TEST(ColumnsortSwitch, BetaOneIsAlmostSingleChip) {
  // beta = 1: one column (s = 1), epsilon = 0 -- it degenerates to a pair of
  // full-width hyperconcentrators and routes perfectly.
  const std::size_t n = 64;
  ColumnsortSwitch sw(n, 1, n / 2);
  EXPECT_EQ(sw.epsilon_bound(), 0u);
  Rng rng(154);
  for (std::size_t k = 0; k <= n; k += 7) {
    BitVec valid = rng.exact_weight_bits(n, k);
    SwitchRouting routing = sw.route(valid);
    EXPECT_EQ(routing.routed_count(), std::min<std::size_t>(k, n / 2));
  }
}

TEST(ColumnsortSwitch, BillOfMaterials) {
  ColumnsortSwitch sw(64, 8, 256);
  Bom bom = sw.bill_of_materials();
  EXPECT_EQ(bom.total_chips(), 16u);           // 2s
  EXPECT_EQ(bom.max_pins_per_chip(), 128u);    // 2r
  EXPECT_EQ(ColumnsortSwitch::kChipPasses, 2u);
}

}  // namespace
}  // namespace pcs::sw
