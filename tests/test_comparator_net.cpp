#include "sortnet/comparator_net.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/assert.hpp"
#include "util/mathutil.hpp"
#include "util/rng.hpp"

namespace pcs::sortnet {
namespace {

TEST(ComparatorNet, ConstructionValidation) {
  EXPECT_THROW(ComparatorNetwork(4, {Comparator{0, 4, 0}}), pcs::ContractViolation);
  EXPECT_THROW(ComparatorNetwork(4, {Comparator{2, 2, 0}}), pcs::ContractViolation);
  EXPECT_THROW(ComparatorNetwork(0, {}), pcs::ContractViolation);
}

TEST(ComparatorNet, SingleComparatorSemantics) {
  ComparatorNetwork net(2, {Comparator{0, 1, 0}});
  EXPECT_EQ(net.apply(BitVec{0, 1}).to_string(), "10");
  EXPECT_EQ(net.apply(BitVec{1, 0}).to_string(), "10");
  EXPECT_EQ(net.apply(BitVec{1, 1}).to_string(), "11");
  EXPECT_EQ(net.apply(BitVec{0, 0}).to_string(), "00");
}

class BatcherSorts : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BatcherSorts, BitonicSortsExhaustively) {
  const std::size_t n = GetParam();
  ComparatorNetwork net = ComparatorNetwork::bitonic_sorter(n);
  EXPECT_TRUE(net.sorts_all_01(n <= 16));
}

TEST_P(BatcherSorts, OddEvenMergesortSortsExhaustively) {
  const std::size_t n = GetParam();
  ComparatorNetwork net = ComparatorNetwork::odd_even_mergesort(n);
  EXPECT_TRUE(net.sorts_all_01(n <= 16));
}

INSTANTIATE_TEST_SUITE_P(Sizes, BatcherSorts, ::testing::Values(2, 4, 8, 16, 32, 64));

TEST(ComparatorNet, StageCounts) {
  // Both Batcher constructions use lg n (lg n + 1) / 2 stages.
  for (std::size_t n : {4u, 16u, 64u}) {
    const std::size_t lg = pcs::exact_log2(n);
    EXPECT_EQ(ComparatorNetwork::bitonic_sorter(n).stage_count(), lg * (lg + 1) / 2);
    EXPECT_EQ(ComparatorNetwork::odd_even_mergesort(n).stage_count(),
              lg * (lg + 1) / 2);
  }
}

TEST(ComparatorNet, OddEvenMergesortSmallerThanBitonic) {
  for (std::size_t n : {16u, 64u, 256u}) {
    EXPECT_LT(ComparatorNetwork::odd_even_mergesort(n).comparator_count(),
              ComparatorNetwork::bitonic_sorter(n).comparator_count());
  }
}

TEST(ComparatorNet, OddEvenTranspositionFullSorts) {
  const std::size_t n = 9;  // works for any n, not just powers of two
  ComparatorNetwork net = ComparatorNetwork::odd_even_transposition(n, n);
  Rng rng(280);
  for (int t = 0; t < 100; ++t) {
    BitVec in = rng.bernoulli_bits(n, rng.uniform01());
    EXPECT_TRUE(net.apply(in).is_sorted_nonincreasing()) << in.to_string();
  }
}

TEST(ComparatorNet, TruncationKeepsPrefixStages) {
  ComparatorNetwork full = ComparatorNetwork::odd_even_mergesort(16);
  ComparatorNetwork half = full.truncated(full.stage_count() / 2);
  EXPECT_LT(half.comparator_count(), full.comparator_count());
  EXPECT_EQ(half.stage_count(), full.stage_count() / 2);
  for (const Comparator& c : half.comparators()) {
    EXPECT_LT(c.stage, full.stage_count() / 2);
  }
}

TEST(ComparatorNet, TruncationNearsortednessImprovesWithStages) {
  // Monotone-on-average: deeper prefixes are never worse on the same input.
  ComparatorNetwork full = ComparatorNetwork::odd_even_mergesort(64);
  Rng rng(281);
  BitVec in = rng.bernoulli_bits(64, 0.5);
  std::size_t prev = 64;
  for (std::size_t st = 0; st <= full.stage_count(); st += 3) {
    BitVec out = full.truncated(st).apply(in);
    // Count inversions proxy: number of 1s outside the first k positions.
    std::size_t k = out.count();
    std::size_t misplaced = 0;
    for (std::size_t i = k; i < 64; ++i) misplaced += out.get(i);
    EXPECT_LE(misplaced, prev);
    prev = misplaced;
  }
}

TEST(ComparatorNet, ApplyLabelsProjectsToApply) {
  ComparatorNetwork net = ComparatorNetwork::odd_even_mergesort(32);
  Rng rng(282);
  for (int t = 0; t < 30; ++t) {
    BitVec valid = rng.bernoulli_bits(32, rng.uniform01());
    std::vector<std::int32_t> slots(32, -1);
    for (std::size_t i = 0; i < 32; ++i) {
      if (valid.get(i)) slots[i] = static_cast<std::int32_t>(i);
    }
    net.apply_labels(slots);
    BitVec projected(32);
    for (std::size_t i = 0; i < 32; ++i) projected.set(i, slots[i] >= 0);
    EXPECT_EQ(projected, net.apply(valid));
  }
}

TEST(ComparatorNet, ApplyLabelsPreservesLabelSet) {
  ComparatorNetwork net = ComparatorNetwork::bitonic_sorter(16);
  std::vector<std::int32_t> slots = {-1, 3, -1, 7, 1, -1, -1, 9,
                                     -1, -1, 2, -1, 5, -1, -1, 11};
  std::vector<std::int32_t> sorted_labels;
  for (std::int32_t s : slots) {
    if (s >= 0) sorted_labels.push_back(s);
  }
  std::sort(sorted_labels.begin(), sorted_labels.end());
  net.apply_labels(slots);
  std::vector<std::int32_t> after;
  for (std::int32_t s : slots) {
    if (s >= 0) after.push_back(s);
  }
  std::sort(after.begin(), after.end());
  EXPECT_EQ(after, sorted_labels);
}

TEST(ComparatorNet, NonPow2Rejected) {
  EXPECT_THROW(ComparatorNetwork::bitonic_sorter(12), pcs::ContractViolation);
  EXPECT_THROW(ComparatorNetwork::odd_even_mergesort(12), pcs::ContractViolation);
}

}  // namespace
}  // namespace pcs::sortnet
