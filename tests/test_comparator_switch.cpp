#include "switch/comparator_switch.hpp"

#include <gtest/gtest.h>

#include "core/adversary.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace pcs::sw {
namespace {

TEST(ComparatorSwitch, BatcherHyperConcentrates) {
  ComparatorSwitch sw = ComparatorSwitch::batcher_hyper(32, 32);
  Rng rng(290);
  for (int t = 0; t < 50; ++t) {
    BitVec valid = rng.bernoulli_bits(32, rng.uniform01());
    SwitchRouting r = sw.route(valid);
    const std::size_t k = valid.count();
    EXPECT_TRUE(r.is_partial_injection());
    EXPECT_EQ(r.routed_count(), k);
    for (std::size_t j = 0; j < 32; ++j) {
      EXPECT_EQ(r.input_of_output[j] >= 0, j < k);
    }
  }
}

TEST(ComparatorSwitch, EpsilonZeroRequiresASorter) {
  // Declaring epsilon 0 on a truncated (non-sorting) network must throw.
  auto full = sortnet::ComparatorNetwork::odd_even_mergesort(16);
  auto half = full.truncated(full.stage_count() / 2);
  EXPECT_THROW(ComparatorSwitch(half, 16, 0, "bogus"), pcs::ContractViolation);
}

TEST(ComparatorSwitch, TruncatedBatcherWithinDeclaredEpsilon) {
  // Calibrate via adversarial search, then declare that epsilon and verify
  // the concentration contract holds everywhere.
  const std::size_t n = 64;
  auto full = sortnet::ComparatorNetwork::odd_even_mergesort(n);
  const std::size_t stages = full.stage_count() - 4;
  // First pass: measure.
  ComparatorSwitch probe =
      ComparatorSwitch::truncated_batcher(n, n, stages, n);  // permissive
  Rng rng(291);
  pcs::core::WorstCase wc = pcs::core::worst_epsilon_search(probe, 30, 150, rng);
  ASSERT_GT(wc.epsilon, 0u);
  // Second pass: declare the calibrated epsilon; the contract must hold.
  ComparatorSwitch sw =
      ComparatorSwitch::truncated_batcher(n, n, stages, wc.epsilon);
  for (std::size_t k = 0; k <= n; k += 7) {
    BitVec valid = rng.exact_weight_bits(n, k);
    SwitchRouting r = sw.route(valid);
    EXPECT_TRUE(concentration_contract_holds(sw, valid, r)) << "k=" << k;
  }
}

TEST(ComparatorSwitch, DelayModelVsMeshDesigns) {
  // Batcher hyperconcentrator: lg n (lg n + 1)/2 stages x 2 gate delays --
  // deeper than the crossbar chip's 2 lg n but far fewer "gates".
  ComparatorSwitch sw = ComparatorSwitch::batcher_hyper(64, 64);
  EXPECT_EQ(sw.gate_delay_model(), 2u * (6u * 7u / 2u));
  EXPECT_EQ(sw.network().stage_count(), 21u);
}

TEST(ComparatorSwitch, RestrictedOutputsCongestProperly) {
  ComparatorSwitch sw = ComparatorSwitch::batcher_hyper(16, 4);
  BitVec valid(16, true);
  SwitchRouting r = sw.route(valid);
  EXPECT_EQ(r.routed_count(), 4u);
  EXPECT_TRUE(concentration_contract_holds(sw, valid, r));
}

TEST(ComparatorSwitch, NameMentionsStages) {
  ComparatorSwitch sw = ComparatorSwitch::batcher_hyper(16, 8);
  EXPECT_NE(sw.name().find("stages="), std::string::npos);
}

}  // namespace
}  // namespace pcs::sw
