#include "switch/concentrator.hpp"

#include <gtest/gtest.h>

#include "switch/hyper_switch.hpp"
#include "util/rng.hpp"

namespace pcs::sw {
namespace {

TEST(SwitchRouting, PartialInjectionChecks) {
  SwitchRouting r;
  r.output_of_input = {0, -1, 1};
  r.input_of_output = {0, 2};
  EXPECT_TRUE(r.is_partial_injection());
  EXPECT_EQ(r.routed_count(), 2u);

  r.input_of_output = {0, 0};  // output 1 claims input 0 too
  EXPECT_FALSE(r.is_partial_injection());

  r.output_of_input = {5, -1, 1};  // out of range
  r.input_of_output = {0, 2};
  EXPECT_FALSE(r.is_partial_injection());
}

TEST(ConcentratorSwitch, LoadRatioFromEpsilon) {
  HyperSwitch sw(16, 8);
  EXPECT_DOUBLE_EQ(sw.load_ratio_bound(), 1.0);
  EXPECT_EQ(sw.guaranteed_capacity(), 8u);
}

TEST(ConcentratorSwitch, ContractCheckerOnPerfectSwitch) {
  HyperSwitch sw(16, 8);
  Rng rng(130);
  for (std::size_t k = 0; k <= 16; ++k) {
    BitVec valid = rng.exact_weight_bits(16, k);
    SwitchRouting r = sw.route(valid);
    EXPECT_TRUE(concentration_contract_holds(sw, valid, r)) << "k=" << k;
    // The perfect switch routes exactly min(k, m).
    EXPECT_EQ(r.routed_count(), std::min<std::size_t>(k, 8));
  }
}

TEST(ConcentratorSwitch, HyperSwitchNameAndBom) {
  HyperSwitch sw(16, 8);
  EXPECT_EQ(sw.name(), "hyperconcentrator(16,8)");
  Bom bom = sw.bill_of_materials();
  EXPECT_EQ(bom.total_chips(), 1u);
  EXPECT_EQ(bom.max_pins_per_chip(), 32u);  // 2n data pins
  EXPECT_EQ(bom.total_chip_area(), 256u);
}

TEST(ConcentratorSwitch, HyperSwitchRoutesToFirstOutputsOnly) {
  HyperSwitch sw(8, 4);
  SwitchRouting r = sw.route(BitVec::from_string("00111100"));
  // Inputs 2,3,4,5 valid; only the first 4 outputs exist; all routed.
  EXPECT_EQ(r.routed_count(), 4u);
  EXPECT_EQ(r.input_of_output[0], 2);
  EXPECT_EQ(r.input_of_output[3], 5);
  // A fifth message would be congested:
  SwitchRouting r2 = sw.route(BitVec::from_string("00111110"));
  EXPECT_EQ(r2.routed_count(), 4u);
  EXPECT_EQ(r2.output_of_input[6], -1);
  EXPECT_TRUE(concentration_contract_holds(sw, BitVec::from_string("00111110"), r2));
}


TEST(ConcentratorSwitch, PrefixButterflyAdapterMatchesHyperSwitch) {
  PrefixButterflyHyperSwitch pb(32, 16);
  HyperSwitch hs(32, 16);
  Rng rng(131);
  for (int t = 0; t < 25; ++t) {
    BitVec valid = rng.bernoulli_bits(32, rng.uniform01());
    SwitchRouting a = pb.route(valid);
    SwitchRouting b = hs.route(valid);
    EXPECT_EQ(a.output_of_input, b.output_of_input);
    EXPECT_EQ(pb.nearsorted_valid_bits(valid), hs.nearsorted_valid_bits(valid));
    EXPECT_TRUE(concentration_contract_holds(pb, valid, a));
  }
  EXPECT_EQ(pb.name(), "prefix-butterfly(32,16)");
  EXPECT_EQ(pb.fabric().prefix_steps(), 5u);
}

}  // namespace
}  // namespace pcs::sw
