#include "network/concentrator_tree.hpp"

#include <gtest/gtest.h>

#include "switch/hyper_switch.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace pcs::net {
namespace {

TEST(ConcentratorTree, ShapesAndAccessors) {
  // 4 groups of 64 channels -> 16 wires each -> trunk 64 -> 32.
  ConcentratorTree tree = make_revsort_tree(4, 64, 16, 32);
  EXPECT_EQ(tree.groups(), 4u);
  EXPECT_EQ(tree.inputs_per_group(), 64u);
  EXPECT_EQ(tree.total_inputs(), 256u);
  EXPECT_EQ(tree.trunk_outputs(), 32u);
  EXPECT_EQ(tree.level1(0).inputs(), 64u);
  EXPECT_EQ(tree.level2().inputs(), 64u);
}

TEST(ConcentratorTree, HyperTreeRoutesExactly) {
  ConcentratorTree tree = make_hyper_tree(4, 16, 8, 16);
  Rng rng(220);
  for (int trial = 0; trial < 20; ++trial) {
    BitVec valid = rng.bernoulli_bits(64, rng.uniform01());
    auto shot = tree.route_once(valid);
    EXPECT_EQ(shot.offered, valid.count());
    // With perfect switches: each group passes min(k_g, 8); the trunk
    // passes min(survivors, 16).
    std::size_t expected_l1 = 0;
    for (std::size_t g = 0; g < 4; ++g) {
      std::size_t kg = 0;
      for (std::size_t i = 0; i < 16; ++i) kg += valid.get(g * 16 + i);
      expected_l1 += std::min<std::size_t>(kg, 8);
    }
    EXPECT_EQ(shot.survived_level1, expected_l1);
    EXPECT_EQ(shot.reached_trunk, std::min<std::size_t>(expected_l1, 16));
  }
}

TEST(ConcentratorTree, TrunkMappingIsInjective) {
  ConcentratorTree tree = make_revsort_tree(4, 64, 16, 32);
  Rng rng(221);
  BitVec valid = rng.bernoulli_bits(256, 0.5);
  auto shot = tree.route_once(valid);
  std::vector<bool> used(tree.trunk_outputs(), false);
  std::size_t mapped = 0;
  for (std::size_t i = 0; i < 256; ++i) {
    std::int32_t out = shot.trunk_output_of_source[i];
    if (out < 0) continue;
    EXPECT_TRUE(valid.get(i)) << "idle source reached trunk";
    EXPECT_FALSE(used[static_cast<std::size_t>(out)]);
    used[static_cast<std::size_t>(out)] = true;
    ++mapped;
  }
  EXPECT_EQ(mapped, shot.reached_trunk);
}

TEST(ConcentratorTree, ColumnsortTreeBuilds) {
  // Level 1: r=16, s=4 (n=64 each), m=16; trunk: 4*16=64 inputs, r2=16.
  ConcentratorTree tree = make_columnsort_tree(4, 16, 4, 16, 32);
  EXPECT_EQ(tree.total_inputs(), 256u);
  Rng rng(222);
  BitVec valid = rng.bernoulli_bits(256, 0.3);
  auto shot = tree.route_once(valid);
  EXPECT_LE(shot.reached_trunk, shot.survived_level1);
  EXPECT_LE(shot.survived_level1, shot.offered);
}

TEST(ConcentratorTree, WidthMismatchRejected) {
  std::vector<std::unique_ptr<pcs::sw::ConcentratorSwitch>> level1;
  level1.push_back(std::make_unique<pcs::sw::HyperSwitch>(16, 8));
  auto trunk = std::make_unique<pcs::sw::HyperSwitch>(10, 5);  // wrong width
  EXPECT_THROW(ConcentratorTree(std::move(level1), std::move(trunk)),
               pcs::ContractViolation);
}

TEST(ConcentratorTree, LightLoadAllReachTrunk) {
  // Trunk inputs = groups * m = 64, a valid Revsort size (side 8).
  ConcentratorTree tree = make_revsort_tree(4, 64, 16, 32);
  Rng rng(223);
  BitVec valid = rng.exact_weight_bits(256, 8);
  auto shot = tree.route_once(valid);
  // With only 8 messages across 4 groups, losses are unlikely but not
  // contractually impossible; assert the conservation laws instead.
  EXPECT_LE(shot.reached_trunk, 8u);
  EXPECT_EQ(shot.offered, 8u);
}

}  // namespace
}  // namespace pcs::net
