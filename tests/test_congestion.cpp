#include "message/congestion.hpp"

#include <gtest/gtest.h>

#include "switch/hyper_switch.hpp"
#include "switch/revsort_switch.hpp"

namespace pcs::msg {
namespace {

TEST(Congestion, PolicyNames) {
  EXPECT_EQ(policy_name(CongestionPolicy::kDrop), "drop");
  EXPECT_EQ(policy_name(CongestionPolicy::kBufferRetry), "buffer-retry");
  EXPECT_EQ(policy_name(CongestionPolicy::kMisrouteRetry), "misroute-retry");
}

TEST(Congestion, LightLoadDeliversEverything) {
  // Offered load well under the switch capacity: all policies deliver all.
  pcs::sw::HyperSwitch sw(64, 32);
  for (CongestionPolicy p : {CongestionPolicy::kDrop, CongestionPolicy::kBufferRetry,
                             CongestionPolicy::kMisrouteRetry}) {
    Rng rng(200);
    RoundStats stats = simulate_rounds(sw, 0.1, 200, p, rng);
    EXPECT_GT(stats.offered, 500u);
    EXPECT_EQ(stats.dropped, 0u) << policy_name(p);
    EXPECT_DOUBLE_EQ(stats.delivery_rate(), 1.0) << policy_name(p);
  }
}

TEST(Congestion, OverloadDropsOnlyUnderDropPolicy) {
  pcs::sw::HyperSwitch sw(64, 8);  // heavy overload: 64 wires, 8 outputs
  Rng rng_drop(201);
  RoundStats drop = simulate_rounds(sw, 0.9, 100, CongestionPolicy::kDrop, rng_drop);
  EXPECT_GT(drop.dropped, 0u);
  EXPECT_LT(drop.delivery_rate(), 1.0);

  Rng rng_retry(201);
  RoundStats retry =
      simulate_rounds(sw, 0.9, 100, CongestionPolicy::kBufferRetry, rng_retry);
  EXPECT_EQ(retry.dropped, 0u);
  EXPECT_GT(retry.max_backlog, 0u);
  EXPECT_GT(retry.mean_latency(), 0.0);
}

TEST(Congestion, ThroughputCappedByOutputs) {
  // Delivered messages per round cannot exceed the output count.
  pcs::sw::HyperSwitch sw(32, 4);
  Rng rng(202);
  RoundStats stats = simulate_rounds(sw, 1.0, 50, CongestionPolicy::kBufferRetry, rng);
  EXPECT_LE(stats.delivered, 50u * 4u);
  // Under saturation we should be close to the cap.
  EXPECT_GE(stats.delivered, 45u * 4u);
}

TEST(Congestion, PartialConcentratorLosesOnlyBeyondCapacity) {
  pcs::sw::RevsortSwitch sw(64, 64);  // capacity 64 - 40 = 24
  Rng rng(203);
  RoundStats stats = simulate_rounds(sw, 0.2, 200, CongestionPolicy::kBufferRetry, rng);
  // 0.2 * 64 = ~13 arrivals/round < capacity 24: queue stays small and
  // everything eventually flows.
  EXPECT_GT(stats.delivered, stats.offered * 9 / 10);
  EXPECT_EQ(stats.dropped, 0u);
}

TEST(Congestion, MisrouteKeepsMessagesAlive) {
  pcs::sw::HyperSwitch sw(16, 2);
  Rng rng(204);
  RoundStats stats =
      simulate_rounds(sw, 0.8, 150, CongestionPolicy::kMisrouteRetry, rng);
  EXPECT_EQ(stats.dropped, 0u);
  EXPECT_GT(stats.retries, 0u);
  // Conservation: delivered <= offered, and what's missing is backlog.
  EXPECT_LE(stats.delivered, stats.offered);
}

TEST(Congestion, ZeroArrivalsProduceNoTraffic) {
  pcs::sw::HyperSwitch sw(16, 8);
  Rng rng(205);
  RoundStats stats = simulate_rounds(sw, 0.0, 50, CongestionPolicy::kDrop, rng);
  EXPECT_EQ(stats.offered, 0u);
  EXPECT_EQ(stats.delivered, 0u);
  EXPECT_DOUBLE_EQ(stats.delivery_rate(), 1.0);  // vacuous
}

}  // namespace
}  // namespace pcs::msg
