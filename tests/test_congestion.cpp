#include "message/congestion.hpp"

#include <gtest/gtest.h>

#include "switch/hyper_switch.hpp"
#include "switch/revsort_switch.hpp"

namespace pcs::msg {
namespace {

TEST(Congestion, PolicyNames) {
  EXPECT_EQ(policy_name(CongestionPolicy::kDrop), "drop");
  EXPECT_EQ(policy_name(CongestionPolicy::kBufferRetry), "buffer-retry");
  EXPECT_EQ(policy_name(CongestionPolicy::kMisrouteRetry), "misroute-retry");
}

TEST(Congestion, LightLoadDeliversEverything) {
  // Offered load well under the switch capacity: all policies deliver all.
  pcs::sw::HyperSwitch sw(64, 32);
  for (CongestionPolicy p : {CongestionPolicy::kDrop, CongestionPolicy::kBufferRetry,
                             CongestionPolicy::kMisrouteRetry}) {
    Rng rng(200);
    RoundStats stats = simulate_rounds(sw, 0.1, 200, p, rng);
    EXPECT_GT(stats.offered, 500u);
    EXPECT_EQ(stats.dropped, 0u) << policy_name(p);
    EXPECT_DOUBLE_EQ(stats.delivery_rate(), 1.0) << policy_name(p);
  }
}

TEST(Congestion, OverloadDropsOnlyUnderDropPolicy) {
  pcs::sw::HyperSwitch sw(64, 8);  // heavy overload: 64 wires, 8 outputs
  Rng rng_drop(201);
  RoundStats drop = simulate_rounds(sw, 0.9, 100, CongestionPolicy::kDrop, rng_drop);
  EXPECT_GT(drop.dropped, 0u);
  EXPECT_LT(drop.delivery_rate(), 1.0);

  Rng rng_retry(201);
  RoundStats retry =
      simulate_rounds(sw, 0.9, 100, CongestionPolicy::kBufferRetry, rng_retry);
  EXPECT_EQ(retry.dropped, 0u);
  EXPECT_GT(retry.max_backlog, 0u);
  EXPECT_GT(retry.mean_latency(), 0.0);
}

TEST(Congestion, ThroughputCappedByOutputs) {
  // Delivered messages per round cannot exceed the output count.
  pcs::sw::HyperSwitch sw(32, 4);
  Rng rng(202);
  RoundStats stats = simulate_rounds(sw, 1.0, 50, CongestionPolicy::kBufferRetry, rng);
  EXPECT_LE(stats.delivered, 50u * 4u);
  // Under saturation we should be close to the cap.
  EXPECT_GE(stats.delivered, 45u * 4u);
}

TEST(Congestion, PartialConcentratorLosesOnlyBeyondCapacity) {
  pcs::sw::RevsortSwitch sw(64, 64);  // capacity 64 - 40 = 24
  Rng rng(203);
  RoundStats stats = simulate_rounds(sw, 0.2, 200, CongestionPolicy::kBufferRetry, rng);
  // 0.2 * 64 = ~13 arrivals/round < capacity 24: queue stays small and
  // everything eventually flows.
  EXPECT_GT(stats.delivered, stats.offered * 9 / 10);
  EXPECT_EQ(stats.dropped, 0u);
}

TEST(Congestion, MisrouteKeepsMessagesAlive) {
  pcs::sw::HyperSwitch sw(16, 2);
  Rng rng(204);
  RoundStats stats =
      simulate_rounds(sw, 0.8, 150, CongestionPolicy::kMisrouteRetry, rng);
  EXPECT_EQ(stats.dropped, 0u);
  EXPECT_GT(stats.retries, 0u);
  // Conservation: delivered <= offered, and what's missing is backlog.
  EXPECT_LE(stats.delivered, stats.offered);
}

TEST(Congestion, LatencyHistogramAgreesWithScalarAggregates) {
  pcs::sw::HyperSwitch sw(64, 8);
  for (CongestionPolicy p : {CongestionPolicy::kDrop, CongestionPolicy::kBufferRetry,
                             CongestionPolicy::kMisrouteRetry}) {
    Rng rng(206);
    RoundStats stats = simulate_rounds(sw, 0.6, 120, p, rng);
    std::size_t hist_count = 0;
    double hist_latency = 0.0;
    for (std::size_t w = 0; w < stats.latency_histogram.size(); ++w) {
      hist_count += stats.latency_histogram[w];
      hist_latency += static_cast<double>(w * stats.latency_histogram[w]);
    }
    EXPECT_EQ(hist_count, stats.delivered) << policy_name(p);
    EXPECT_DOUBLE_EQ(hist_latency, stats.total_latency_rounds) << policy_name(p);
  }
}

TEST(Congestion, RetryPoliciesHaveALatencyTailUnderOverload) {
  // The satellite motivation: under retry policies mean latency is not the
  // whole story -- the histogram exposes the tail the mean hides.
  pcs::sw::HyperSwitch sw(64, 4);
  Rng rng(207);
  RoundStats stats =
      simulate_rounds(sw, 0.8, 150, CongestionPolicy::kBufferRetry, rng);
  ASSERT_GT(stats.latency_histogram.size(), 2u);  // some message waited > 1 round
  EXPECT_GT(stats.latency_histogram[0], 0u);
  // Deliveries beyond the mean exist (a genuine tail).
  const auto mean = static_cast<std::size_t>(stats.mean_latency());
  std::size_t beyond_mean = 0;
  for (std::size_t w = mean + 1; w < stats.latency_histogram.size(); ++w) {
    beyond_mean += stats.latency_histogram[w];
  }
  EXPECT_GT(beyond_mean, 0u);
}

// Satellite: sustained overload at arrival_p = 1.0 with k > m.  Every free
// wire refills every round, so each round presents more messages than the
// switch has outputs; exact conservation (nothing created or destroyed
// except by explicit drop) must hold for every policy.
TEST(Congestion, SustainedOverloadConservationAllPolicies) {
  pcs::sw::HyperSwitch sw(32, 8);  // k = 32 presented > m = 8 every round
  for (CongestionPolicy p : {CongestionPolicy::kDrop, CongestionPolicy::kBufferRetry,
                             CongestionPolicy::kMisrouteRetry}) {
    Rng rng(208);
    RoundStats stats = simulate_rounds(sw, 1.0, 100, p, rng);
    EXPECT_EQ(stats.offered, stats.delivered + stats.dropped + stats.final_backlog)
        << policy_name(p);
    // Throughput is output-bound: exactly m winners per saturated round.
    EXPECT_EQ(stats.delivered, 100u * 8u) << policy_name(p);
    if (p == CongestionPolicy::kDrop) {
      EXPECT_EQ(stats.final_backlog, 0u);
      EXPECT_EQ(stats.dropped, stats.offered - stats.delivered);
    } else {
      EXPECT_EQ(stats.dropped, 0u);
      EXPECT_GT(stats.final_backlog, 0u);
      EXPECT_LE(stats.final_backlog, stats.max_backlog);
    }
  }
}

TEST(Congestion, SustainedOverloadPartialConcentratorConservation) {
  // Same sustained overload through a real multichip partial concentrator
  // (epsilon > 0), where routed count per round can drop below m.
  pcs::sw::RevsortSwitch sw(256, 64);  // epsilon 112 > m: no guarantee at all
  for (CongestionPolicy p : {CongestionPolicy::kDrop, CongestionPolicy::kBufferRetry,
                             CongestionPolicy::kMisrouteRetry}) {
    Rng rng(209);
    RoundStats stats = simulate_rounds(sw, 1.0, 40, p, rng);
    EXPECT_EQ(stats.offered, stats.delivered + stats.dropped + stats.final_backlog)
        << policy_name(p);
    EXPECT_LE(stats.delivered, 40u * 64u) << policy_name(p);
    EXPECT_GT(stats.delivered, 0u) << policy_name(p);
  }
}

TEST(Congestion, ZeroArrivalsProduceNoTraffic) {
  pcs::sw::HyperSwitch sw(16, 8);
  Rng rng(205);
  RoundStats stats = simulate_rounds(sw, 0.0, 50, CongestionPolicy::kDrop, rng);
  EXPECT_EQ(stats.offered, 0u);
  EXPECT_EQ(stats.delivered, 0u);
  EXPECT_DOUBLE_EQ(stats.delivery_rate(), 1.0);  // vacuous
}

}  // namespace
}  // namespace pcs::msg
