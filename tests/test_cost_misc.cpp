// Remaining cost-model surfaces: Table 1 beta grid, custom delay models,
// the clocked flag, and report/string plumbing.
#include <gtest/gtest.h>

#include "cost/resource_model.hpp"
#include "cost/table1.hpp"

namespace pcs::cost {
namespace {

TEST(CostMisc, Table1BetaGridMatchesPaper) {
  ASSERT_EQ(std::size(kTable1Betas), 3u);
  EXPECT_DOUBLE_EQ(kTable1Betas[0], 0.5);
  EXPECT_DOUBLE_EQ(kTable1Betas[1], 0.625);
  EXPECT_DOUBLE_EQ(kTable1Betas[2], 0.75);
}

TEST(CostMisc, CustomDelayModelPropagates) {
  DelayModel heavy{.pad_delay = 10, .shifter_delay = 5};
  // Revsort: 3 chips x (2 lg 16 + 10) + 5 shifter = 3*18 + 5.
  EXPECT_EQ(revsort_report(256, 128, heavy).gate_delays, 59u);
  // Columnsort: 2 chips x (2 lg 64 + 10).
  EXPECT_EQ(columnsort_report(64, 4, 128, heavy).gate_delays, 44u);
}

TEST(CostMisc, CombinationalFlagDefaultsTrue) {
  EXPECT_TRUE(hyper_chip_report(64, 32).combinational);
  EXPECT_TRUE(revsort_report(256, 128).combinational);
  EXPECT_FALSE(prefix_butterfly_report(64).combinational);
  EXPECT_EQ(prefix_butterfly_report(64).control_steps, 6u);
}

TEST(CostMisc, ClockedReportStringMentionsControlSteps) {
  std::string s = prefix_butterfly_report(256).to_string();
  EXPECT_NE(s.find("clocked"), std::string::npos);
  EXPECT_NE(s.find("8 control steps"), std::string::npos);
}

TEST(CostMisc, PartitionedDelayGrowsWithTiling) {
  // More tiles -> more pad crossings on the data path.
  DelayModel dm{};
  ResourceReport coarse = partitioned_hyper_report(4096, 2048);
  ResourceReport fine = partitioned_hyper_report(4096, 128);
  EXPECT_GT(fine.gate_delays, coarse.gate_delays);
  EXPECT_GT(fine.chip_count, coarse.chip_count);
  (void)dm;
}

TEST(CostMisc, Table1LoadRatioUsesCallerM) {
  // Same shapes, different m: alpha scales as 1 - eps/m.
  auto big = table1_columns(1 << 12, 1 << 11);
  auto small = table1_columns(1 << 12, 1 << 9);
  for (std::size_t c = 0; c < big.size(); ++c) {
    EXPECT_GE(big[c].report.load_ratio, small[c].report.load_ratio)
        << big[c].header;
  }
}

}  // namespace
}  // namespace pcs::cost
