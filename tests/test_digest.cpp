#include "util/digest.hpp"

#include <gtest/gtest.h>

#include "switch/columnsort_switch.hpp"
#include "switch/revsort_switch.hpp"
#include "util/rng.hpp"

namespace pcs {
namespace {

TEST(Digest, DistinguishesContent) {
  EXPECT_NE(digest_bits(BitVec::from_string("1010")),
            digest_bits(BitVec::from_string("1011")));
  EXPECT_NE(digest_bits(BitVec::from_string("10")),
            digest_bits(BitVec::from_string("010")));
  EXPECT_EQ(digest_bits(BitVec::from_string("1010")),
            digest_bits(BitVec::from_string("1010")));
}

TEST(Digest, LengthIsMixedIn) {
  // Trailing zeros must change the digest (size is part of the value).
  EXPECT_NE(digest_bits(BitVec::from_string("101")),
            digest_bits(BitVec::from_string("1010")));
}

TEST(Digest, SlotVectors) {
  std::vector<std::int32_t> a = {1, -1, 3};
  std::vector<std::int32_t> b = {1, 3, -1};
  EXPECT_NE(digest_slots(a), digest_slots(b));
  EXPECT_EQ(digest_slots(a), digest_slots({1, -1, 3}));
}

// Golden determinism values: the full routing pipeline, seeded, must
// produce these exact digests on every platform and run.  If an intentional
// behaviour change breaks them, update the constants alongside the change.
TEST(Digest, GoldenRoutingDigests) {
  Rng rng(0xD1CE);
  pcs::sw::RevsortSwitch rev(256, 192);
  pcs::sw::ColumnsortSwitch col(64, 4, 192);
  Digest d;
  for (int t = 0; t < 20; ++t) {
    BitVec valid = rng.bernoulli_bits(256, 0.5);
    d.mix_slots(rev.route(valid).output_of_input);
    d.mix_slots(col.route(valid).output_of_input);
    d.mix_bits(rev.nearsorted_valid_bits(valid));
  }
  // Re-run with the same seed: identical.
  Rng rng2(0xD1CE);
  Digest d2;
  for (int t = 0; t < 20; ++t) {
    BitVec valid = rng2.bernoulli_bits(256, 0.5);
    d2.mix_slots(rev.route(valid).output_of_input);
    d2.mix_slots(col.route(valid).output_of_input);
    d2.mix_bits(rev.nearsorted_valid_bits(valid));
  }
  EXPECT_EQ(d.value(), d2.value());
}

TEST(Digest, RngStreamIsStable) {
  // The documented reproducibility promise of pcs::Rng: fixed seed, fixed
  // stream.  These constants pin the implementation.
  Rng rng(42);
  Digest d;
  for (int i = 0; i < 16; ++i) d.mix_u64(rng.next());
  Rng rng2(42);
  Digest d2;
  for (int i = 0; i < 16; ++i) d2.mix_u64(rng2.next());
  EXPECT_EQ(d.value(), d2.value());
  Rng rng3(43);
  Digest d3;
  for (int i = 0; i < 16; ++i) d3.mix_u64(rng3.next());
  EXPECT_NE(d.value(), d3.value());
}

}  // namespace
}  // namespace pcs
