#include "sortnet/displacement.hpp"

#include <gtest/gtest.h>

#include "sortnet/mesh_ops.hpp"
#include "sortnet/nearsort.hpp"
#include "util/rng.hpp"

namespace pcs::sortnet {
namespace {

TEST(Displacement, SortedSequencesAreZero) {
  for (const char* s : {"111000", "000", "111", ""}) {
    BitVec v = BitVec::from_string(s);
    EXPECT_EQ(inversion_count(v), 0u) << s;
    EXPECT_EQ(displacement_mass(v), 0u) << s;
    EXPECT_EQ(misplaced_count(v), 0u) << s;
  }
}

TEST(Displacement, HandComputedCases) {
  // "0101": inversions: (0,1),(0,3),(2,3) -> 3.
  BitVec v = BitVec::from_string("0101");
  EXPECT_EQ(inversion_count(v), 3u);
  // k = 2; 1s at 1 and 3: displacements 0 and 2; 0s at 0 and 2: 2 and 0.
  EXPECT_EQ(displacement_mass(v), 4u);
  EXPECT_EQ(misplaced_count(v), 1u);  // the 1 at position 3
}

TEST(Displacement, FullyReversedIsWorstCase) {
  // k ones at the very end: inversions = k * (n - k).
  const std::size_t n = 12, k = 5;
  BitVec v(n);
  for (std::size_t i = 0; i < k; ++i) v.set(n - 1 - i, true);
  EXPECT_EQ(inversion_count(v), static_cast<std::uint64_t>(k * (n - k)));
  EXPECT_EQ(misplaced_count(v), k);
}

TEST(Displacement, InversionCountAgainstQuadraticReference) {
  Rng rng(390);
  for (int trial = 0; trial < 50; ++trial) {
    BitVec v = rng.bernoulli_bits(60, rng.uniform01());
    std::uint64_t ref = 0;
    for (std::size_t i = 0; i < v.size(); ++i) {
      for (std::size_t j = i + 1; j < v.size(); ++j) {
        ref += (!v.get(i) && v.get(j)) ? 1 : 0;
      }
    }
    EXPECT_EQ(inversion_count(v), ref);
  }
}

TEST(Displacement, EpsilonBoundsMaxTermOfMass) {
  // Each misplaced element contributes at most epsilon to the mass, so
  // mass <= (misplaced 1s + misplaced 0s) * epsilon = 2 * misplaced * eps.
  Rng rng(391);
  for (int trial = 0; trial < 100; ++trial) {
    BitVec v = rng.bernoulli_bits(64, rng.uniform01());
    std::size_t eps = min_nearsort_epsilon(v);
    EXPECT_LE(displacement_mass(v),
              2 * static_cast<std::uint64_t>(misplaced_count(v)) * (eps == 0 ? 1 : eps));
  }
}

TEST(Displacement, SortingMonotonicallyRemovesInversions) {
  Rng rng(392);
  BitMatrix m = BitMatrix::from_row_major(rng.bernoulli_bits(64, 0.5), 8, 8);
  std::uint64_t before = inversion_count(m.to_row_major());
  sort_columns(m);
  std::uint64_t mid = inversion_count(m.to_row_major());
  sort_rows(m);
  std::uint64_t after = inversion_count(m.to_row_major());
  EXPECT_LE(mid, before);
  EXPECT_LE(after, mid);
}

}  // namespace
}  // namespace pcs::sortnet
