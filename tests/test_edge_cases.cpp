// Edge cases and error paths across modules, gathered in one sweep.
#include <gtest/gtest.h>

#include "hyper/hyper_circuit.hpp"
#include "message/congestion.hpp"
#include "message/traffic.hpp"
#include "network/multistage.hpp"
#include "switch/full_sort_hyper.hpp"
#include "switch/hyper_switch.hpp"
#include "switch/label_mesh.hpp"
#include "switch/revsort_switch.hpp"
#include "switch/wiring.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace pcs {
namespace {

TEST(EdgeCases, PermutationThenIsAssociative) {
  Rng rng(440);
  auto random_perm = [&](std::size_t n) {
    std::vector<std::uint32_t> d(n);
    for (std::size_t i = 0; i < n; ++i) d[i] = static_cast<std::uint32_t>(i);
    for (std::size_t i = n - 1; i > 0; --i) std::swap(d[i], d[rng.below(i + 1)]);
    return sw::Permutation(d);
  };
  sw::Permutation a = random_perm(12), b = random_perm(12), c = random_perm(12);
  EXPECT_EQ(a.then(b).then(c), a.then(b.then(c)));
}

TEST(EdgeCases, PermutationSizeMismatchThrows) {
  sw::Permutation a = sw::Permutation::identity(4);
  sw::Permutation b = sw::Permutation::identity(5);
  EXPECT_THROW(a.then(b), ContractViolation);
  EXPECT_THROW(a.apply(std::vector<std::int32_t>(5, -1)), ContractViolation);
}

TEST(EdgeCases, LabelMeshSizeMismatches) {
  EXPECT_THROW(sw::LabelMesh::from_row_major_valid(BitVec(7), 2, 3),
               ContractViolation);
  EXPECT_THROW(sw::LabelMesh::from_col_major_valid(BitVec(5), 2, 3),
               ContractViolation);
  sw::LabelMesh m(2, 3);
  EXPECT_THROW(m.get(2, 0), ContractViolation);
  EXPECT_THROW(m.rotate_row_right(5, 1), ContractViolation);
}

TEST(EdgeCases, HyperCircuitEmptyAndFull) {
  hyper::HyperCircuit hc(5);
  auto none = hc.evaluate(BitVec(5), BitVec(5, true));
  EXPECT_EQ(none.valid.count(), 0u);
  EXPECT_EQ(none.data.count(), 0u);  // no valid inputs: all outputs quiet
  auto all = hc.evaluate(BitVec(5, true), BitVec(5, true));
  EXPECT_EQ(all.valid.count(), 5u);
  EXPECT_EQ(all.data.count(), 5u);
}

TEST(EdgeCases, FullSorterArrangementIsSorted) {
  sw::FullRevsortHyper sw(64);
  Rng rng(441);
  for (int t = 0; t < 10; ++t) {
    BitVec valid = rng.bernoulli_bits(64, rng.uniform01());
    EXPECT_TRUE(sw.nearsorted_valid_bits(valid).is_sorted_nonincreasing());
  }
}

TEST(EdgeCases, MisroutePolicyWithEverythingBusy) {
  // All wires saturated: roaming messages must survive rounds without a
  // free wire and be placed eventually.
  sw::HyperSwitch sw(8, 1);
  Rng rng(442);
  msg::RoundStats stats = msg::simulate_rounds(
      sw, 1.0, 100, msg::CongestionPolicy::kMisrouteRetry, rng);
  EXPECT_EQ(stats.dropped, 0u);
  EXPECT_EQ(stats.delivered, 100u);  // exactly one per round through m = 1
  EXPECT_GT(stats.max_backlog, 5u);
}

TEST(EdgeCases, TrafficValidation) {
  EXPECT_THROW(msg::BernoulliTraffic(8, 1.5), ContractViolation);
  EXPECT_THROW(msg::BurstyTraffic(8, 0.5, 0.5, 1.5, 0.1), ContractViolation);
  EXPECT_THROW(msg::AdversarialTraffic(8, 3, 0), ContractViolation);
  msg::ExactCountTraffic zero(8, 0);
  Rng rng(443);
  EXPECT_EQ(zero.next(rng).count(), 0u);
}

TEST(EdgeCases, SingleLevelMultistageEqualsItsSwitch) {
  net::MultistageNetwork netw(16, {net::MultistageNetwork::LevelSpec{16, 8}},
                              net::hyper_factory());
  sw::HyperSwitch direct(16, 8);
  Rng rng(444);
  for (int t = 0; t < 10; ++t) {
    BitVec valid = rng.bernoulli_bits(16, 0.6);
    auto shot = netw.route_once(valid);
    auto r = direct.route(valid);
    EXPECT_EQ(shot.survivors[0], r.routed_count());
    for (std::size_t i = 0; i < 16; ++i) {
      EXPECT_EQ(shot.trunk_output_of_source[i], r.output_of_input[i]);
    }
  }
}

TEST(EdgeCases, WiringOnTinySides) {
  // side = 1: all wirings degenerate to the identity on one wire.
  EXPECT_EQ(sw::transpose_wiring(1), sw::Permutation::identity(1));
  EXPECT_EQ(sw::rev_rotate_transpose_wiring(1), sw::Permutation::identity(1));
  EXPECT_EQ(sw::cm_to_rm_wiring(1, 1), sw::Permutation::identity(1));
}

TEST(EdgeCases, RevsortSwitchMinimumSize) {
  // n = 4 (side 2) is the smallest legal Revsort switch.
  sw::RevsortSwitch sw(4, 4);
  for (std::uint32_t p = 0; p < 16; ++p) {
    BitVec valid(4);
    for (std::size_t i = 0; i < 4; ++i) valid.set(i, (p >> i) & 1u);
    auto r = sw.route(valid);
    EXPECT_TRUE(r.is_partial_injection()) << p;
    EXPECT_EQ(r.routed_count(), valid.count()) << p;
  }
}

TEST(EdgeCases, HyperSwitchFullWidthIdentityOnSorted) {
  // An already-sorted valid pattern routes input i to output i.
  sw::HyperSwitch sw(8, 8);
  BitVec valid = BitVec::from_string("11110000");
  auto r = sw.route(valid);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(r.output_of_input[i], static_cast<std::int32_t>(i));
  }
}

}  // namespace
}  // namespace pcs
