#include "core/epsilon_stats.hpp"

#include <gtest/gtest.h>

#include "switch/columnsort_switch.hpp"
#include "switch/hyper_switch.hpp"
#include "switch/revsort_switch.hpp"
#include "util/assert.hpp"

namespace pcs::core {
namespace {

TEST(EpsilonStats, PercentilesOrdered) {
  pcs::sw::RevsortSwitch sw(256, 256);
  Rng rng(320);
  EpsilonStats s = collect_epsilon_stats(sw, 200, 0.5, rng);
  EXPECT_EQ(s.samples, 200u);
  EXPECT_LE(s.min, s.p50);
  EXPECT_LE(s.p50, s.p90);
  EXPECT_LE(s.p90, s.p99);
  EXPECT_LE(s.p99, s.max);
  EXPECT_GE(s.mean, static_cast<double>(s.min));
  EXPECT_LE(s.mean, static_cast<double>(s.max));
}

TEST(EpsilonStats, HyperIsAlwaysZero) {
  pcs::sw::HyperSwitch sw(64, 64);
  Rng rng(321);
  EpsilonStats s = collect_epsilon_stats(sw, 100, 0.5, rng);
  EXPECT_EQ(s.max, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(EpsilonStats, MaxWithinTheoremBound) {
  pcs::sw::ColumnsortSwitch sw(64, 8, 512);
  Rng rng(322);
  for (double d : {0.2, 0.5, 0.8}) {
    EpsilonStats s = collect_epsilon_stats(sw, 150, d, rng);
    EXPECT_LE(s.max, sw.epsilon_bound()) << "density " << d;
  }
}

TEST(EpsilonStats, SweepReturnsOnePerDensity) {
  pcs::sw::RevsortSwitch sw(64, 64);
  Rng rng(323);
  auto sweep = epsilon_stats_sweep(sw, 50, {0.1, 0.5, 0.9}, rng);
  ASSERT_EQ(sweep.size(), 3u);
  EXPECT_DOUBLE_EQ(sweep[0].density, 0.1);
  EXPECT_DOUBLE_EQ(sweep[2].density, 0.9);
}

TEST(EpsilonStats, ExtremeDensitiesNearlySorted) {
  // Nearly-empty and nearly-full meshes are almost sorted already.
  pcs::sw::RevsortSwitch sw(256, 256);
  Rng rng(324);
  EpsilonStats sparse = collect_epsilon_stats(sw, 100, 0.02, rng);
  EpsilonStats half = collect_epsilon_stats(sw, 100, 0.5, rng);
  EXPECT_LT(sparse.mean, half.mean);
}

TEST(EpsilonStats, TrialsValidated) {
  pcs::sw::HyperSwitch sw(16, 16);
  Rng rng(325);
  EXPECT_THROW(collect_epsilon_stats(sw, 0, 0.5, rng), pcs::ContractViolation);
}

}  // namespace
}  // namespace pcs::core
