// Exhaustive verification at small sizes: every input pattern, every claim.
//
// These sweeps are the strongest correctness evidence in the suite -- at
// n = 16 there are only 65536 valid-bit patterns, so the partial-
// concentration contract, the epsilon bounds, the wiring equivalence, and
// the Lemma 2 derivation are checked on *all* of them, not a sample.
#include <gtest/gtest.h>

#include "core/lemmas.hpp"
#include "sortnet/nearsort.hpp"
#include "switch/columnsort_switch.hpp"
#include "switch/comparator_switch.hpp"
#include "switch/full_sort_hyper.hpp"
#include "switch/revsort_switch.hpp"

namespace pcs::sw {
namespace {

BitVec pattern_bits(std::uint32_t pattern, std::size_t n) {
  BitVec v(n);
  for (std::size_t i = 0; i < n; ++i) v.set(i, (pattern >> i) & 1u);
  return v;
}

TEST(ExhaustiveSmall, RevsortSwitchAllPatterns) {
  const std::size_t n = 16;
  RevsortSwitch full(n, n);
  RevsortSwitch cut(n, 10);
  for (std::uint32_t p = 0; p < (1u << n); ++p) {
    BitVec valid = pattern_bits(p, n);
    // Epsilon bound (Theorem 3) on every pattern.
    BitVec arr = full.nearsorted_valid_bits(valid);
    ASSERT_LE(sortnet::min_nearsort_epsilon(arr), full.epsilon_bound()) << p;
    ASSERT_EQ(arr.count(), valid.count()) << p;
    // Contract on the restricted switch.
    SwitchRouting r = cut.route(valid);
    ASSERT_TRUE(concentration_contract_holds(cut, valid, r)) << p;
  }
}

TEST(ExhaustiveSmall, RevsortWiringEquivalenceAllPatterns) {
  const std::size_t n = 16;
  RevsortSwitch sw(n, 12);
  for (std::uint32_t p = 0; p < (1u << n); ++p) {
    BitVec valid = pattern_bits(p, n);
    ASSERT_EQ(sw.route(valid).output_of_input,
              sw.route_via_wiring(valid).output_of_input)
        << p;
  }
}

TEST(ExhaustiveSmall, ColumnsortSwitchAllPatterns) {
  // r = 8, s = 2: epsilon bound (s-1)^2 = 1.
  ColumnsortSwitch sw(8, 2, 16);
  ColumnsortSwitch cut(8, 2, 9);
  for (std::uint32_t p = 0; p < (1u << 16); ++p) {
    BitVec valid = pattern_bits(p, 16);
    BitVec arr = sw.nearsorted_valid_bits(valid);
    ASSERT_LE(sortnet::min_nearsort_epsilon(arr), 1u) << p;
    SwitchRouting r = cut.route(valid);
    ASSERT_TRUE(concentration_contract_holds(cut, valid, r)) << p;
  }
}

TEST(ExhaustiveSmall, FullSortersAllPatterns) {
  FullRevsortHyper rev(16);
  FullColumnsortHyper col(8, 2);
  for (std::uint32_t p = 0; p < (1u << 16); ++p) {
    BitVec valid = pattern_bits(p, 16);
    const std::size_t k = valid.count();
    SwitchRouting rr = rev.route(valid);
    ASSERT_EQ(rr.routed_count(), k) << p;
    ASSERT_GE(rr.input_of_output[k == 0 ? 0 : k - 1], k == 0 ? -1 : 0) << p;
    SwitchRouting rc = col.route(valid);
    ASSERT_EQ(rc.routed_count(), k) << p;
    for (std::size_t j = 0; j < 16; ++j) {
      ASSERT_EQ(rc.input_of_output[j] >= 0, j < k) << p;
      ASSERT_EQ(rr.input_of_output[j] >= 0, j < k) << p;
    }
  }
}

TEST(ExhaustiveSmall, Lemma2AllPatterns) {
  ColumnsortSwitch sw(8, 2, 12);
  for (std::uint32_t p = 0; p < (1u << 16); ++p) {
    BitVec valid = pattern_bits(p, 16);
    pcs::core::Lemma2Check check = pcs::core::check_lemma2(sw, valid);
    ASSERT_TRUE(check.holds) << "pattern " << p << ": " << check.detail;
  }
}

TEST(ExhaustiveSmall, BatcherHyperAllPatterns) {
  ComparatorSwitch sw = ComparatorSwitch::batcher_hyper(16, 16);
  for (std::uint32_t p = 0; p < (1u << 16); ++p) {
    BitVec valid = pattern_bits(p, 16);
    const std::size_t k = valid.count();
    SwitchRouting r = sw.route(valid);
    ASSERT_EQ(r.routed_count(), k) << p;
    for (std::size_t j = 0; j < 16; ++j) {
      ASSERT_EQ(r.input_of_output[j] >= 0, j < k) << p;
    }
  }
}

}  // namespace
}  // namespace pcs::sw
