// VOQ allocator contracts: grants never exceed queue occupancy or the
// row/column budgets, work-conservation on easy instances, determinism,
// and rotating-pointer fairness over repeated epochs.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "fabric/allocator.hpp"
#include "util/assert.hpp"

namespace pcs::fabric {
namespace {

AllocProblem problem(std::size_t ins, std::size_t outs,
                     std::vector<std::uint32_t> queued,
                     std::vector<std::uint32_t> cap_in,
                     std::vector<std::uint32_t> cap_out) {
  AllocProblem p;
  p.ins = ins;
  p.outs = outs;
  p.queued = std::move(queued);
  p.cap_in = std::move(cap_in);
  p.cap_out = std::move(cap_out);
  return p;
}

void check_feasible(const AllocProblem& p,
                    const std::vector<std::uint32_t>& grants,
                    std::size_t total) {
  std::uint32_t sum = 0;
  for (std::size_t e = 0; e < p.ins; ++e) {
    std::uint32_t row = 0;
    for (std::size_t d = 0; d < p.outs; ++d) {
      EXPECT_LE(grants[e * p.outs + d], p.queued[e * p.outs + d]);
      row += grants[e * p.outs + d];
    }
    EXPECT_LE(row, p.cap_in[e]);
    sum += row;
  }
  for (std::size_t d = 0; d < p.outs; ++d) {
    std::uint32_t col = 0;
    for (std::size_t e = 0; e < p.ins; ++e) col += grants[e * p.outs + d];
    EXPECT_LE(col, p.cap_out[d]);
  }
  EXPECT_EQ(sum, total);
}

class BothAllocators : public ::testing::TestWithParam<const char*> {};

INSTANTIATE_TEST_SUITE_P(Fabric, BothAllocators,
                         ::testing::Values("rr", "islip"));

TEST_P(BothAllocators, RespectsAllBudgets) {
  auto alloc = make_allocator(GetParam(), 3, 3);
  AllocProblem p = problem(3, 3,
                           {5, 0, 2,   //
                            1, 7, 0,   //
                            3, 3, 3},
                           {4, 4, 4}, {2, 5, 1});
  std::vector<std::uint32_t> grants;
  const std::size_t total = alloc->allocate(p, grants);
  check_feasible(p, grants, total);
  EXPECT_GT(total, 0u);
}

TEST_P(BothAllocators, WorkConservingWhenUncontended) {
  // Diagonal demand with ample budgets: everything must be granted.
  auto alloc = make_allocator(GetParam(), 2, 2);
  AllocProblem p = problem(2, 2, {3, 0, 0, 4}, {8, 8}, {8, 8});
  std::vector<std::uint32_t> grants;
  EXPECT_EQ(alloc->allocate(p, grants), 7u);
  EXPECT_EQ(grants[0], 3u);
  EXPECT_EQ(grants[3], 4u);
}

TEST_P(BothAllocators, DrainsToColumnBudgetUnderContention) {
  // Both inputs want the one output: exactly cap_out must be granted.
  auto alloc = make_allocator(GetParam(), 2, 1);
  AllocProblem p = problem(2, 1, {6, 6}, {6, 6}, {4});
  std::vector<std::uint32_t> grants;
  EXPECT_EQ(alloc->allocate(p, grants), 4u);
}

TEST_P(BothAllocators, ZeroBudgetsGrantNothing) {
  auto alloc = make_allocator(GetParam(), 2, 2);
  AllocProblem p = problem(2, 2, {5, 5, 5, 5}, {3, 3}, {0, 0});
  std::vector<std::uint32_t> grants;
  EXPECT_EQ(alloc->allocate(p, grants), 0u);
  p = problem(2, 2, {0, 0, 0, 0}, {3, 3}, {3, 3});
  EXPECT_EQ(alloc->allocate(p, grants), 0u);
}

TEST_P(BothAllocators, DeterministicAcrossInstances) {
  auto a = make_allocator(GetParam(), 4, 4);
  auto b = make_allocator(GetParam(), 4, 4);
  std::vector<std::uint32_t> queued(16);
  std::iota(queued.begin(), queued.end(), 0);
  for (int epoch = 0; epoch < 20; ++epoch) {
    AllocProblem p = problem(4, 4, queued, {6, 6, 6, 6}, {3, 3, 3, 3});
    std::vector<std::uint32_t> ga, gb;
    const std::size_t ta = a->allocate(p, ga);
    const std::size_t tb = b->allocate(p, gb);
    EXPECT_EQ(ta, tb);
    EXPECT_EQ(ga, gb);
    check_feasible(p, ga, ta);
  }
}

TEST_P(BothAllocators, ShapeMismatchThrows) {
  auto alloc = make_allocator(GetParam(), 2, 2);
  AllocProblem p = problem(3, 3, std::vector<std::uint32_t>(9, 1), {1, 1, 1},
                           {1, 1, 1});
  std::vector<std::uint32_t> grants;
  EXPECT_THROW(alloc->allocate(p, grants), ContractViolation);
}

TEST(FabricAllocator, RoundRobinRotatesUnderContention) {
  // Two inputs, one output, one grant per epoch: the cursor must alternate
  // which input wins rather than starving one side.
  RoundRobinAllocator alloc(2, 1);
  int wins[2] = {0, 0};
  for (int epoch = 0; epoch < 10; ++epoch) {
    AllocProblem p = problem(2, 1, {1, 1}, {1, 1}, {1});
    std::vector<std::uint32_t> grants;
    ASSERT_EQ(alloc.allocate(p, grants), 1u);
    wins[grants[0] == 1 ? 0 : 1]++;
  }
  EXPECT_EQ(wins[0], 5);
  EXPECT_EQ(wins[1], 5);
}

TEST(FabricAllocator, ISlipDesynchronizesPointers) {
  // Classic iSLIP scenario: both inputs request both outputs with unit
  // budgets.  After the first epoch the pointers desynchronize, so every
  // later epoch achieves the full 2-match.
  ISlipAllocator alloc(2, 2);
  for (int epoch = 0; epoch < 6; ++epoch) {
    AllocProblem p = problem(2, 2, {1, 1, 1, 1}, {1, 1}, {1, 1});
    std::vector<std::uint32_t> grants;
    const std::size_t total = alloc.allocate(p, grants);
    EXPECT_EQ(total, 2u) << "epoch " << epoch;
  }
}

TEST(FabricAllocator, FactoryRejectsUnknownNames) {
  EXPECT_THROW(make_allocator("maxweight", 2, 2), ContractViolation);
}

// Sustained credit starvation: every VOQ permanently full (load 1.0) but the
// downstream pools return a single credit per out-link per epoch.  The
// allocator's pointer state is the only thing standing between an input and
// permanent starvation, so over 1k epochs every input must win a fair share.
TEST_P(BothAllocators, NoInputStarvedAcrossSustainedCreditStarvation) {
  constexpr std::size_t kIns = 4, kOuts = 4, kEpochs = 1000;
  auto alloc = make_allocator(GetParam(), kIns, kOuts);
  std::vector<std::uint64_t> wins(kIns, 0);
  std::uint64_t total = 0;
  for (std::size_t epoch = 0; epoch < kEpochs; ++epoch) {
    AllocProblem p = problem(kIns, kOuts,
                             std::vector<std::uint32_t>(kIns * kOuts, 8),
                             std::vector<std::uint32_t>(kIns, 8),
                             std::vector<std::uint32_t>(kOuts, 1));
    std::vector<std::uint32_t> grants;
    const std::size_t granted = alloc->allocate(p, grants);
    check_feasible(p, grants, granted);
    // Starved, not idle: all four single-credit columns must still fill.
    ASSERT_EQ(granted, kOuts) << GetParam() << " epoch " << epoch;
    for (std::size_t e = 0; e < kIns; ++e) {
      for (std::size_t d = 0; d < kOuts; ++d) wins[e] += grants[e * kOuts + d];
    }
    total += granted;
  }
  // Fairness, not mere liveness: no input may fall below half its equal
  // share (iSLIP's desynchronized pointers and rr's grand cursor both settle
  // into an exact rotation; the slack only covers the settling epochs).
  const std::uint64_t fair = total / kIns;
  for (std::size_t e = 0; e < kIns; ++e) {
    EXPECT_GE(wins[e], fair / 2)
        << GetParam() << " starved input " << e << " (" << wins[e] << "/"
        << total << " grants)";
  }
}

// The deflection path hands the allocators asymmetric, starved problems
// (deflected messages pile onto whichever link had credits).  Whatever the
// discipline, the grant TOTAL must agree: both are work-conserving to the
// budget bound min(sum cap_out, per-row limits), so neither may leave a
// grantable credit unused and quietly strand a deflected message.
TEST(FabricAllocator, DisciplinesAgreeOnTotalsUnderStarvedAsymmetry) {
  RoundRobinAllocator rr(3, 3);
  ISlipAllocator islip(3, 3);
  // Deterministic pseudo-load: skewed occupancies cycling phase, single- or
  // zero-credit columns -- the shapes bounded deflection produces.
  for (std::size_t epoch = 0; epoch < 200; ++epoch) {
    AllocProblem p;
    p.ins = 3;
    p.outs = 3;
    p.queued.resize(9);
    for (std::size_t i = 0; i < 9; ++i) {
      p.queued[i] = static_cast<std::uint32_t>((i * 7 + epoch * 3) % 5);
    }
    p.cap_in = {8, 8, 8};
    p.cap_out = {static_cast<std::uint32_t>(epoch % 2), 1, 1};
    std::vector<std::uint32_t> ga, gb;
    const std::size_t ta = rr.allocate(p, ga);
    const std::size_t tb = islip.allocate(p, gb);
    EXPECT_EQ(ta, tb) << "epoch " << epoch;
    check_feasible(p, ga, ta);
    check_feasible(p, gb, tb);
  }
}

}  // namespace
}  // namespace pcs::fabric
