// The epoch pipeline's contract: epochs_in_flight=1 is bit-identical to the
// pre-pipeline serial loop (golden metric and trace hashes captured on the
// commit before the scheduler landed), and every epochs_in_flight > 1 run
// reproduces the serial campaign counters, gauges, and histograms exactly --
// the wavefront scheduler reorders work, never results.  Also pinned here:
// the zero-padded hop metric keys at >= 11 hops, the bounded-deflection
// accounting, and the PCS_FABRIC_EPOCHS_IN_FLIGHT resolution order.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "fabric/fabric_sim.hpp"
#include "message/traffic.hpp"
#include "obs/trace.hpp"
#include "runtime/metrics.hpp"
#include "util/assert.hpp"
#include "util/digest.hpp"
#include "util/parallel.hpp"

namespace pcs::fabric {
namespace {

using rt::MetricsRegistry;
using rt::RuntimeReport;

FabricSpec base_spec(Topology t, std::size_t hops, std::size_t radix) {
  FabricSpec spec;
  spec.topology = t;
  spec.hops = hops;
  spec.radix = radix;
  spec.node.family = "columnsort";
  spec.node.n = 64;
  spec.node.m = 32;
  spec.credits = 4;
  return spec;
}

/// epochs_in_flight is always explicit here: the fabric suite runs under
/// PCS_FABRIC_EPOCHS_IN_FLIGHT overrides in CI, and these pins must not
/// drift with the environment.
FabricOptions fast_opts(std::size_t epochs_in_flight = 1) {
  FabricOptions opts;
  opts.queue_depth = 2;
  opts.seed = 7;
  opts.warmup_epochs = 4;
  opts.measure_epochs = 24;
  opts.drain_epochs_max = 128;
  opts.check_invariants = true;
  opts.epochs_in_flight = epochs_in_flight;
  return opts;
}

FabricSim::TrafficFactory bernoulli(double p) {
  return [p](std::size_t width) -> std::unique_ptr<traffic::TrafficSource> {
    return std::make_unique<traffic::ComposedSource>(
        traffic::PatternKind::kUniform,
        std::make_unique<traffic::BernoulliProcess>(width, p), 0.125);
  };
}

std::uint64_t hash_str(const std::string& s) {
  Digest d;
  for (char c : s) d.mix_byte(static_cast<std::uint8_t>(c));
  return d.value();
}

std::uint64_t ctr(const MetricsRegistry& m, const std::string& name) {
  auto it = m.counters().find(name);
  return it == m.counters().end() ? 0 : it->second.value();
}

bool pipeline_metric(const std::string& name) {
  return name.rfind("fabric.pipeline.", 0) == 0;
}

/// Deterministic dump of every campaign metric EXCEPT the fabric.pipeline.*
/// family (which describes the schedule, not the traffic, and only exists
/// when epochs_in_flight > 1).
std::string fingerprint(const MetricsRegistry& m) {
  std::string out;
  for (const auto& [name, c] : m.counters()) {
    if (pipeline_metric(name)) continue;
    out += name + "=" + std::to_string(c.value()) + "\n";
  }
  for (const auto& [name, g] : m.gauges()) {
    if (pipeline_metric(name)) continue;
    out += name + "=" + std::to_string(g.value()) + "\n";
  }
  for (const auto& [name, h] : m.histograms()) {
    if (pipeline_metric(name)) continue;
    const auto s = h.snapshot();
    out += name + ":" + std::to_string(s.count) + "," + std::to_string(s.sum) +
           "," + std::to_string(s.min) + "," + std::to_string(s.max);
    for (const std::uint64_t b : s.buckets) out += "|" + std::to_string(b);
    out += "\n";
  }
  return out;
}

struct RunResult {
  std::string fingerprint;
  RuntimeReport report;
  std::uint64_t merged_dispatches = 0;
  std::uint64_t logical_dispatches = 0;
};

RunResult run_campaign(const FabricSpec& spec, std::size_t epochs_in_flight,
                       double load) {
  FabricSim sim(spec, fast_opts(epochs_in_flight), bernoulli(load));
  MetricsRegistry metrics;
  RunResult r;
  r.report = sim.run(metrics);
  r.fingerprint = fingerprint(metrics);
  r.merged_dispatches = ctr(metrics, "fabric.pipeline.dispatches");
  r.logical_dispatches = ctr(metrics, "route_batch_dispatches");
  return r;
}

// ---------------------------------------------------------------------------
// Serial bit-identity pins.  The three hashes below were captured from the
// commit BEFORE the pipeline scheduler existed (the plain serial epoch
// loop), over MetricsRegistry::to_json() of the full campaign.  At
// epochs_in_flight=1 the rewritten FabricSim must reproduce them exactly.
// ---------------------------------------------------------------------------

TEST(FabricPipeline, SerialMetricsMatchThePrePipelineGoldens) {
  {
    FabricSim sim(base_spec(Topology::kOmega, 3, 2), fast_opts(1),
                  bernoulli(0.6));
    MetricsRegistry m;
    sim.run(m);
    EXPECT_EQ(hash_str(m.to_json()), 0x7d4d9d1ced302871ull);
  }
  {
    FabricSpec spec = base_spec(Topology::kButterfly, 3, 2);
    spec.alloc = "islip";
    FabricSim sim(spec, fast_opts(1), bernoulli(0.5));
    MetricsRegistry m;
    sim.run(m);
    EXPECT_EQ(hash_str(m.to_json()), 0x22bfe7b4c6dee2b4ull);
  }
  {
    FabricSpec spec = base_spec(Topology::kFatTree, 3, 2);
    spec.alloc = "islip";
    spec.node.faults = {{0, 0}};
    spec.fault_hop = 1;
    FabricSim sim(spec, fast_opts(1), bernoulli(0.7));
    MetricsRegistry m;
    sim.run(m);
    EXPECT_EQ(hash_str(m.to_json()), 0xd3f3b1daab7aff71ull);
  }
}

TEST(FabricPipeline, SerialLogicalTraceIsByteIdenticalToThePrePipelineLoop) {
  const std::size_t prior = max_parallelism();
  set_max_parallelism(1);
  obs::Tracer::instance().enable(obs::ClockMode::kLogical);
  FabricSim sim(base_spec(Topology::kOmega, 3, 2), fast_opts(1),
                bernoulli(0.6));
  MetricsRegistry m;
  sim.run(m);
  obs::TraceSnapshot snap = obs::Tracer::instance().drain();
  obs::Tracer::instance().disable();
  set_max_parallelism(prior);
  EXPECT_EQ(snap.spans.size(), 476u);
  EXPECT_EQ(hash_str(obs::chrome_trace_json({snap})), 0x6c16213d7b3031b2ull);
}

// ---------------------------------------------------------------------------
// Pipelined runs must reproduce the serial campaign exactly -- counters,
// gauges, histograms, and the RuntimeReport -- for every policy, including
// the cost-reading adaptive policy (which forces the stricter wavefront
// spacing so credit reads observe serial state).
// ---------------------------------------------------------------------------

TEST(FabricPipeline, PipelinedCampaignsAreBitIdenticalToSerial) {
  struct Case {
    FabricSpec spec;
    double load;
  };
  std::vector<Case> cases;
  cases.push_back({base_spec(Topology::kOmega, 3, 2), 0.6});
  {
    FabricSpec s = base_spec(Topology::kButterfly, 3, 2);
    s.alloc = "islip";
    cases.push_back({s, 0.5});
  }
  {
    FabricSpec s = base_spec(Topology::kFatTree, 3, 2);
    s.alloc = "islip";
    s.node.faults = {{0, 0}};
    s.fault_hop = 1;
    cases.push_back({s, 0.7});
  }
  {
    // Adaptive + deflection on the fat-tree's multi-candidate first hop,
    // under credit starvation: the config most likely to expose a schedule
    // leak into routing decisions.
    FabricSpec s = base_spec(Topology::kFatTree, 3, 2);
    s.credits = 2;
    s.route = "adaptive";
    s.deflect_max = 2;
    cases.push_back({s, 1.0});
  }
  for (const Case& c : cases) {
    const RunResult serial = run_campaign(c.spec, 1, c.load);
    EXPECT_EQ(serial.merged_dispatches, 0u)
        << "serial runs must not grow pipeline metrics";
    for (const std::size_t e : {std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
      const RunResult piped = run_campaign(c.spec, e, c.load);
      EXPECT_EQ(piped.fingerprint, serial.fingerprint)
          << "topology=" << topology_name(c.spec.topology)
          << " route=" << c.spec.route << " epochs_in_flight=" << e;
      EXPECT_EQ(piped.report.residual_backlog, serial.report.residual_backlog);
      EXPECT_EQ(piped.report.drained, serial.report.drained);
      EXPECT_EQ(piped.report.saturated, serial.report.saturated);
      // The pipeline exists to merge dispatches: the physical dispatch count
      // never exceeds the logical one-per-hop-per-epoch count, and strictly
      // beats it for the deterministic policy (adaptive's 3-hop wavefront
      // spacing leaves nothing to merge on a 3-hop fabric).
      EXPECT_GT(piped.merged_dispatches, 0u);
      EXPECT_LE(piped.merged_dispatches, piped.logical_dispatches);
      if (c.spec.route == "deterministic") {
        EXPECT_LT(piped.merged_dispatches, piped.logical_dispatches);
      }
      EXPECT_EQ(piped.logical_dispatches, serial.logical_dispatches);
    }
  }
}

TEST(FabricPipeline, PipelinedSpansNestPerThread) {
  obs::Tracer::instance().enable(obs::ClockMode::kLogical);
  FabricSim sim(base_spec(Topology::kOmega, 3, 2), fast_opts(4),
                bernoulli(0.6));
  MetricsRegistry m;
  sim.run(m);
  obs::TraceSnapshot snap = obs::Tracer::instance().drain();
  obs::Tracer::instance().disable();
  ASSERT_GT(snap.spans.size(), 0u);
  // Spans on one thread must form a laminar family (properly nested or
  // disjoint): a partial overlap would mean a span outlived its parent.
  for (std::size_t i = 0; i < snap.spans.size(); ++i) {
    for (std::size_t j = i + 1; j < snap.spans.size(); ++j) {
      const auto& a = snap.spans[i];
      const auto& b = snap.spans[j];
      if (a.tid != b.tid) continue;
      const bool disjoint = a.end <= b.begin || b.end <= a.begin;
      const bool a_in_b = b.begin <= a.begin && a.end <= b.end;
      const bool b_in_a = a.begin <= b.begin && b.end <= a.end;
      ASSERT_TRUE(disjoint || a_in_b || b_in_a)
          << a.name << " [" << a.begin << "," << a.end << ") overlaps "
          << b.name << " [" << b.begin << "," << b.end << ")";
    }
  }
}

// ---------------------------------------------------------------------------
// Hop metric keys: scrapes sort metrics lexicographically, so fabrics deep
// enough for two-digit hops zero-pad the index ("hop02" < "hop11"); shallow
// fabrics keep the legacy single-digit names so existing dashboards and the
// golden hashes above never move.
// ---------------------------------------------------------------------------

TEST(FabricPipeline, DeepFabricZeroPadsHopKeysSoScrapesSortNumerically) {
  // Radix-1 omega: one node per hop, so 12 hops stay cheap.
  FabricSpec spec = base_spec(Topology::kOmega, 12, 1);
  FabricSim sim(spec, fast_opts(1), bernoulli(0.8));
  MetricsRegistry metrics;
  sim.run(metrics);
  EXPECT_EQ(ctr(metrics, "fabric.hop2.accepted"), 0u)
      << "deep fabrics must not emit unpadded keys";
  std::vector<std::string> hops;
  for (const auto& [name, c] : metrics.counters()) {
    if (name.rfind("fabric.hop", 0) == 0 &&
        name.find(".accepted") != std::string::npos) {
      hops.push_back(name);
    }
  }
  // counters() is an ordered map: lexicographic iteration IS scrape order,
  // and with zero-padding it is also numeric hop order.
  ASSERT_EQ(hops.size(), 12u);
  for (std::size_t k = 0; k < hops.size(); ++k) {
    const std::string want =
        "fabric.hop" + std::string(k < 10 ? "0" : "") + std::to_string(k) +
        ".accepted";
    EXPECT_EQ(hops[k], want);
  }
}

TEST(FabricPipeline, ShallowFabricKeepsLegacySingleDigitHopKeys) {
  FabricSim sim(base_spec(Topology::kOmega, 3, 2), fast_opts(1),
                bernoulli(0.6));
  MetricsRegistry metrics;
  sim.run(metrics);
  EXPECT_GT(ctr(metrics, "fabric.hop0.accepted"), 0u);
  EXPECT_EQ(metrics.counters().count("fabric.hop00.accepted"), 0u);
}

// ---------------------------------------------------------------------------
// Bounded deflection: misroutes are accounted (fabric.hop<k>.deflections and
// the dropped.deflect reclaim path), conservation holds, and the whole path
// is deterministic per seed.
// ---------------------------------------------------------------------------

TEST(FabricPipeline, DeflectionPathConservesAndStaysDeterministic) {
  FabricSpec spec = base_spec(Topology::kFatTree, 3, 2);
  spec.credits = 1;  // single-slot pools starve candidates constantly
  spec.route = "adaptive";
  spec.deflect_max = 2;
  auto run_once = [&](std::size_t e) {
    FabricSim sim(spec, fast_opts(e), bernoulli(1.0));
    MetricsRegistry metrics;
    const RuntimeReport report = sim.run(metrics);
    EXPECT_EQ(ctr(metrics, "total.offered"),
              ctr(metrics, "total.delivered") + ctr(metrics, "total.dropped") +
                  ctr(metrics, "total.residual"));
    EXPECT_EQ(report.residual_backlog, ctr(metrics, "total.residual"));
    std::uint64_t deflections = 0;
    for (std::size_t k = 0; k < sim.graph().hops(); ++k) {
      deflections +=
          ctr(metrics, "fabric.hop" + std::to_string(k) + ".deflections");
    }
    EXPECT_GT(deflections, 0u) << "starved fat-tree hop0 must deflect";
    return fingerprint(metrics);
  };
  const std::string serial = run_once(1);
  EXPECT_EQ(run_once(1), serial);  // deterministic per seed
  EXPECT_EQ(run_once(5), serial);  // and schedule-independent
}

// ---------------------------------------------------------------------------
// Option resolution: explicit FabricOptions.epochs_in_flight wins; 0 defers
// to PCS_FABRIC_EPOCHS_IN_FLIGHT; no env means the serial default of 1.
// ---------------------------------------------------------------------------

class EpochsInFlightEnv : public ::testing::Test {
 protected:
  void SetUp() override {
    const char* prior = std::getenv("PCS_FABRIC_EPOCHS_IN_FLIGHT");
    had_prior_ = prior != nullptr;
    if (had_prior_) prior_ = prior;
    ::unsetenv("PCS_FABRIC_EPOCHS_IN_FLIGHT");
  }
  void TearDown() override {
    if (had_prior_) {
      ::setenv("PCS_FABRIC_EPOCHS_IN_FLIGHT", prior_.c_str(), 1);
    } else {
      ::unsetenv("PCS_FABRIC_EPOCHS_IN_FLIGHT");
    }
  }

  static std::size_t resolved(std::size_t opt_value) {
    FabricOptions opts = fast_opts(opt_value);
    FabricSim sim(base_spec(Topology::kOmega, 3, 2), opts, bernoulli(0.5));
    return sim.epochs_in_flight();
  }

 private:
  bool had_prior_ = false;
  std::string prior_;
};

TEST_F(EpochsInFlightEnv, ZeroDefersToTheEnvironment) {
  EXPECT_EQ(resolved(0), 1u);  // no env -> serial
  ::setenv("PCS_FABRIC_EPOCHS_IN_FLIGHT", "4", 1);
  EXPECT_EQ(resolved(0), 4u);
  EXPECT_EQ(resolved(2), 2u);  // explicit option beats the env
  EXPECT_EQ(resolved(1), 1u);
}

TEST_F(EpochsInFlightEnv, RejectsAnUnusableEnvValue) {
  ::setenv("PCS_FABRIC_EPOCHS_IN_FLIGHT", "0", 1);
  EXPECT_THROW(resolved(0), ContractViolation);
  ::setenv("PCS_FABRIC_EPOCHS_IN_FLIGHT", "5000", 1);
  EXPECT_THROW(resolved(0), ContractViolation);
  ::setenv("PCS_FABRIC_EPOCHS_IN_FLIGHT", "many", 1);
  EXPECT_THROW(resolved(0), ContractViolation);
}

}  // namespace
}  // namespace pcs::fabric
