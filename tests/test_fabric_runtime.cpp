#include "runtime/fabric_runtime.hpp"

#include <gtest/gtest.h>

#include "message/congestion.hpp"
#include "message/traffic.hpp"
#include "network/router_sim.hpp"
#include "runtime/stats_bridge.hpp"
#include "switch/columnsort_switch.hpp"
#include "switch/hyper_switch.hpp"
#include "switch/revsort_switch.hpp"
#include "util/assert.hpp"

namespace pcs::rt {
namespace {

using msg::CongestionPolicy;

FabricRuntime::TrafficFactory bernoulli(std::size_t width, double p) {
  return [width, p](std::size_t) -> std::unique_ptr<traffic::TrafficSource> {
    return std::make_unique<traffic::ComposedSource>(
        traffic::PatternKind::kUniform,
        std::make_unique<traffic::BernoulliProcess>(width, p), 0.125);
  };
}

FabricRuntime::TrafficFactory exact(std::size_t width, std::size_t k) {
  return [width, k](std::size_t) -> std::unique_ptr<traffic::TrafficSource> {
    return std::make_unique<traffic::ComposedSource>(
        traffic::PatternKind::kUniform,
        std::make_unique<traffic::ExactCountProcess>(width, k), 0.125);
  };
}

RuntimeOptions small_opts(CongestionPolicy policy) {
  RuntimeOptions opts;
  opts.queue_depth = 4;
  opts.policy = policy;
  opts.lanes = 3;
  opts.seed = 11;
  opts.warmup_epochs = 8;
  opts.measure_epochs = 64;
  opts.drain_epochs_max = 256;
  opts.check_invariants = true;  // every setup cross-checked by core/invariants
  return opts;
}

TEST(FabricRuntime, IdenticalSeedsProduceIdenticalMetricsJson) {
  sw::HyperSwitch sw(64, 16);
  auto run_once = [&sw] {
    FabricRuntime runtime(sw, small_opts(CongestionPolicy::kBufferRetry),
                          bernoulli(64, 0.4));
    MetricsRegistry metrics;
    runtime.run(metrics);
    return metrics.to_json();
  };
  EXPECT_EQ(run_once(), run_once());
}

// Acceptance: at offered load within the Theorem 3 / Lemma 2 guarantee
// (k <= m - epsilon every epoch), every message is routed in the epoch it
// arrives -- delivery rate exactly 1, latency exactly 0, nothing dropped,
// queued, or backpressured.  check_invariants keeps core/invariants'
// epsilon-bound checker in the loop for every setup.
TEST(FabricRuntime, GuaranteedCapacityLoadIsLosslessAndLatencyFree) {
  sw::RevsortSwitch revsort(256, 192);        // epsilon 112, capacity 80
  const auto columnsort =
      sw::ColumnsortSwitch::from_beta(256, 0.75, 192);  // epsilon 9, capacity 183
  for (const sw::ConcentratorSwitch* sw :
       std::initializer_list<const sw::ConcentratorSwitch*>{&revsort, &columnsort}) {
    const std::size_t cap = sw->guaranteed_capacity();
    ASSERT_GT(cap, 0u) << sw->name();
    FabricRuntime runtime(*sw, small_opts(CongestionPolicy::kBufferRetry),
                          exact(sw->inputs(), cap));
    MetricsRegistry metrics;
    RuntimeReport report = runtime.run(metrics);

    EXPECT_TRUE(report.drained) << sw->name();
    EXPECT_EQ(report.residual_backlog, 0u) << sw->name();
    EXPECT_DOUBLE_EQ(metrics.gauge("delivery_rate").value(), 1.0) << sw->name();
    EXPECT_DOUBLE_EQ(metrics.gauge("mean_latency_epochs").value(), 0.0) << sw->name();
    EXPECT_EQ(metrics.counter("dropped").value(), 0u) << sw->name();
    EXPECT_EQ(metrics.counter("retries").value(), 0u) << sw->name();
    EXPECT_EQ(metrics.counter("rejected_queue_full").value(), 0u) << sw->name();
    EXPECT_EQ(metrics.histogram("latency_epochs").max(), 0u) << sw->name();
    // Every measured epoch presented exactly cap messages on every lane.
    const Histogram& presented = metrics.histogram("presented_k");
    EXPECT_EQ(presented.min(), cap) << sw->name();
    EXPECT_EQ(presented.max(), cap) << sw->name();
  }
}

// Satellite: sustained overload, arrival_p = 1.0 with k > m, for all three
// congestion policies.  Every input wire offers a message every epoch into a
// 64 -> 8 switch; conservation (enforced by the runtime's own
// PCS_REQUIRE) plus the policy-specific loss accounting must hold, and the
// bounded queues must push back.
TEST(FabricRuntime, SustainedOverloadAllPolicies) {
  sw::HyperSwitch sw(64, 8);
  for (CongestionPolicy policy :
       {CongestionPolicy::kDrop, CongestionPolicy::kBufferRetry,
        CongestionPolicy::kMisrouteRetry}) {
    RuntimeOptions opts = small_opts(policy);
    opts.queue_depth = 2;
    FabricRuntime runtime(sw, opts, bernoulli(64, 1.0));
    MetricsRegistry metrics;
    RuntimeReport report = runtime.run(metrics);
    const std::string label = msg::policy_name(policy);

    // Per-setup service can never exceed the output count: each of the
    // route_batch dispatches resolves one setup per lane, each routing at
    // most 8 messages.
    EXPECT_LE(metrics.counter("total.delivered").value(),
              metrics.counter("route_batch_dispatches").value() * opts.lanes * 8)
        << label;

    switch (policy) {
      case CongestionPolicy::kDrop:
        // The head is consumed (delivered or dropped) every epoch, so
        // depth-2 queues never fill; losses are all explicit drops.
        EXPECT_EQ(metrics.counter("rejected_queue_full").value(), 0u) << label;
        EXPECT_GT(metrics.counter("dropped").value(), 0u) << label;
        EXPECT_LT(metrics.gauge("delivery_rate").value(), 1.0) << label;
        EXPECT_TRUE(report.drained) << label;  // drop never leaves a backlog
        break;
      case CongestionPolicy::kBufferRetry:
        // Losers hold their slots, queues fill, and the door pushes back.
        EXPECT_GT(metrics.counter("rejected_queue_full").value(), 0u) << label;
        EXPECT_EQ(metrics.counter("dropped").value(), 0u) << label;
        EXPECT_GT(metrics.counter("retries").value(), 0u) << label;
        // Every measured epoch is fully backlogged: a stable
        // hyperconcentrator serves the lowest-indexed inputs first, so
        // high-index queues starve until the drain.
        EXPECT_EQ(metrics.histogram("presented_k").min(), 64u) << label;
        break;
      case CongestionPolicy::kMisrouteRetry:
        // Losers roam to other queues, so occupancy climbs and the door
        // pushes back; with every queue saturated the re-injection
        // overflows and is an explicit, accounted drop.
        EXPECT_GT(metrics.counter("rejected_queue_full").value(), 0u) << label;
        EXPECT_GT(metrics.counter("retries").value() +
                      metrics.counter("dropped.misroute_overflow").value(),
                  0u)
            << label;
        EXPECT_EQ(metrics.counter("dropped").value(),
                  metrics.counter("dropped.misroute_overflow").value())
            << label;
        break;
    }
  }
}

TEST(FabricRuntime, SaturationDetectedWhenDrainCapTrips) {
  sw::HyperSwitch sw(64, 4);
  RuntimeOptions opts = small_opts(CongestionPolicy::kBufferRetry);
  opts.queue_depth = 8;
  opts.drain_epochs_max = 2;  // 64 wires x depth 8 cannot drain through 4
                              // outputs in 2 epochs
  FabricRuntime runtime(sw, opts, bernoulli(64, 1.0));
  MetricsRegistry metrics;
  RuntimeReport report = runtime.run(metrics);

  EXPECT_FALSE(report.drained);
  EXPECT_TRUE(report.saturated);
  EXPECT_GT(report.residual_backlog, 0u);
  EXPECT_DOUBLE_EQ(metrics.gauge("saturated").value(), 1.0);
  EXPECT_GT(metrics.gauge("backlog.residual").value(), 0.0);
}

TEST(FabricRuntime, ModerateLoadDrainsCompletely) {
  sw::HyperSwitch sw(64, 16);
  FabricRuntime runtime(sw, small_opts(CongestionPolicy::kBufferRetry),
                        bernoulli(64, 0.2));
  MetricsRegistry metrics;
  RuntimeReport report = runtime.run(metrics);
  EXPECT_TRUE(report.drained);
  EXPECT_EQ(report.residual_backlog, 0u);
  EXPECT_DOUBLE_EQ(metrics.gauge("delivery_rate").value(), 1.0);
  EXPECT_EQ(metrics.counter("epochs.measure").value(), 64u);
}

TEST(FabricRuntime, OneBatchDispatchPerEpoch) {
  sw::HyperSwitch sw(32, 8);
  RuntimeOptions opts = small_opts(CongestionPolicy::kDrop);
  FabricRuntime runtime(sw, opts, bernoulli(32, 0.3));
  MetricsRegistry metrics;
  RuntimeReport report = runtime.run(metrics);
  // warmup + measure + drain epochs each cost exactly one route_batch call.
  EXPECT_EQ(metrics.counter("route_batch_dispatches").value(),
            opts.warmup_epochs + opts.measure_epochs + report.drain_epochs_used);
}

TEST(FabricRuntime, RejectsMismatchedTrafficWidth) {
  sw::HyperSwitch sw(64, 16);
  FabricRuntime runtime(sw, small_opts(CongestionPolicy::kDrop),
                        bernoulli(32, 0.5));  // wrong width
  MetricsRegistry metrics;
  EXPECT_THROW(runtime.run(metrics), ContractViolation);
}

TEST(FabricRuntime, RejectsDegenerateOptions) {
  sw::HyperSwitch sw(16, 8);
  RuntimeOptions opts;
  opts.queue_depth = 0;
  EXPECT_THROW(FabricRuntime(sw, opts, bernoulli(16, 0.5)), ContractViolation);
  opts = RuntimeOptions{};
  opts.lanes = 0;
  EXPECT_THROW(FabricRuntime(sw, opts, bernoulli(16, 0.5)), ContractViolation);
  opts = RuntimeOptions{};
  EXPECT_THROW(FabricRuntime(sw, opts, nullptr), ContractViolation);
}

// Regression (campaign accounting): a saturated campaign's
// drain_epochs_used must count exactly the drain epochs that EXECUTED --
// equal to the epochs.drain counter and to the dispatches beyond
// warmup + measure -- not the cap, and not cap + 1.  Pinned by driving a
// switch far past its service rate so the drain cap always trips.
TEST(FabricRuntime, SaturatedDrainAccountingIsExact) {
  sw::HyperSwitch sw(64, 4);  // capacity 4 against ~32 arrivals/epoch
  RuntimeOptions opts = small_opts(CongestionPolicy::kBufferRetry);
  opts.queue_depth = 64;
  opts.drain_epochs_max = 17;
  FabricRuntime runtime(sw, opts, bernoulli(64, 0.5));
  MetricsRegistry metrics;
  RuntimeReport report = runtime.run(metrics);

  ASSERT_TRUE(report.saturated);
  EXPECT_FALSE(report.drained);
  EXPECT_EQ(report.drain_epochs_used, opts.drain_epochs_max);
  EXPECT_EQ(metrics.counter("epochs.drain").value(), report.drain_epochs_used);
  // Every executed epoch is one route_batch dispatch, so the drain count
  // must also equal dispatches minus the warmup and measure epochs.
  EXPECT_EQ(metrics.counter("route_batch_dispatches").value(),
            opts.warmup_epochs + opts.measure_epochs + report.drain_epochs_used);
  EXPECT_GT(report.residual_backlog, 0u);

  // With drain_epochs_max = 0 the campaign saturates before any drain epoch
  // runs: the counter must be exactly zero (the historical off-by-one risk).
  opts.drain_epochs_max = 0;
  FabricRuntime no_drain(sw, opts, bernoulli(64, 0.5));
  MetricsRegistry m2;
  RuntimeReport r2 = no_drain.run(m2);
  ASSERT_TRUE(r2.saturated);
  EXPECT_EQ(r2.drain_epochs_used, 0u);
  EXPECT_EQ(m2.counter("epochs.drain").value(), 0u);
  EXPECT_EQ(m2.counter("route_batch_dispatches").value(),
            opts.warmup_epochs + opts.measure_epochs);
}

// Regression (campaign accounting): the residual backlog of a saturated
// campaign is an explicit counter term, so the exported document balances
// on its own:  total.offered == total.delivered + total.dropped +
// total.residual, with `residual` carrying the measured-window share.
TEST(FabricRuntime, ResidualBacklogIsAFirstClassCounter) {
  sw::HyperSwitch sw(64, 4);
  RuntimeOptions opts = small_opts(CongestionPolicy::kBufferRetry);
  opts.queue_depth = 64;
  opts.drain_epochs_max = 8;
  FabricRuntime runtime(sw, opts, bernoulli(64, 0.5));
  MetricsRegistry metrics;
  RuntimeReport report = runtime.run(metrics);

  ASSERT_TRUE(report.saturated);
  ASSERT_GT(report.residual_backlog, 0u);
  EXPECT_EQ(metrics.counter("total.residual").value(), report.residual_backlog);
  EXPECT_EQ(metrics.counter("total.offered").value(),
            metrics.counter("total.delivered").value() +
                metrics.counter("total.dropped").value() +
                metrics.counter("total.residual").value());
  // Measured-window residual is bounded by the whole-campaign residual.
  EXPECT_LE(metrics.counter("residual").value(),
            metrics.counter("total.residual").value());

  // A drained campaign exports an explicit zero, not a missing counter.
  sw::HyperSwitch big(64, 64);
  FabricRuntime drained_rt(big, small_opts(CongestionPolicy::kBufferRetry),
                           bernoulli(64, 0.2));
  MetricsRegistry m2;
  RuntimeReport r2 = drained_rt.run(m2);
  ASSERT_TRUE(r2.drained);
  EXPECT_EQ(m2.counters().count("total.residual"), 1u);
  EXPECT_EQ(m2.counter("total.residual").value(), 0u);
}

// The three legacy simulators export through the same schema names the
// runtime uses, so one consumer reads any producer.
TEST(StatsBridge, RoundStatsMapToSharedSchema) {
  sw::HyperSwitch sw(32, 4);
  Rng rng(42);
  msg::RoundStats stats = msg::simulate_rounds(sw, 0.8, 100,
                                               CongestionPolicy::kBufferRetry, rng);
  MetricsRegistry metrics;
  record_stats(metrics, stats);

  EXPECT_EQ(metrics.counter("offered").value(), stats.offered);
  EXPECT_EQ(metrics.counter("delivered").value(), stats.delivered);
  EXPECT_EQ(metrics.counter("epochs.measure").value(), stats.rounds);
  EXPECT_DOUBLE_EQ(metrics.gauge("delivery_rate").value(), stats.delivery_rate());
  // The bulk-imported histogram agrees with the scalar aggregates.
  const Histogram& lat = metrics.histogram("latency_epochs");
  EXPECT_EQ(lat.count(), stats.delivered);
  EXPECT_DOUBLE_EQ(static_cast<double>(lat.sum()), stats.total_latency_rounds);
}

TEST(StatsBridge, TreeSimStatsMapToSharedSchema) {
  net::ConcentratorTree tree = net::make_hyper_tree(2, 32, 8, 8);
  Rng rng(43);
  net::TreeSimStats stats = net::simulate_tree(tree, 0.3, 80, rng);
  MetricsRegistry metrics;
  record_stats(metrics, stats);
  EXPECT_EQ(metrics.counter("offered").value(), stats.offered);
  EXPECT_EQ(metrics.counter("rejected.level1").value(), stats.level1_rejections);
  EXPECT_EQ(metrics.histogram("latency_epochs").count(), stats.delivered);
}

}  // namespace
}  // namespace pcs::rt
