// End-to-end fabric campaigns: conservation (per-epoch inside run(), plus
// the exported total.* identity), per-hop accounting, all topologies, the
// degenerate radix, a faulted middle hop, saturation, and determinism.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "fabric/fabric_config.hpp"
#include "fabric/fabric_sim.hpp"
#include "message/traffic.hpp"
#include "runtime/metrics.hpp"
#include "util/assert.hpp"

namespace pcs::fabric {
namespace {

using rt::MetricsRegistry;
using rt::RuntimeReport;

FabricSpec base_spec(Topology t, std::size_t hops, std::size_t radix) {
  FabricSpec spec;
  spec.topology = t;
  spec.hops = hops;
  spec.radix = radix;
  // Columnsort(64 -> 32): r=32, s=2, epsilon 1, guaranteed capacity 31.
  spec.node.family = "columnsort";
  spec.node.n = 64;
  spec.node.m = 32;
  spec.credits = 4;
  return spec;
}

FabricOptions fast_opts() {
  FabricOptions opts;
  opts.queue_depth = 2;
  opts.seed = 7;
  opts.warmup_epochs = 4;
  opts.measure_epochs = 24;
  opts.drain_epochs_max = 128;
  opts.check_invariants = true;  // credit mirror + allocator postconditions
  return opts;
}

FabricSim::TrafficFactory bernoulli(double p) {
  return [p](std::size_t width) -> std::unique_ptr<traffic::TrafficSource> {
    return std::make_unique<traffic::ComposedSource>(
        traffic::PatternKind::kUniform,
        std::make_unique<traffic::BernoulliProcess>(width, p), 0.125);
  };
}

std::uint64_t ctr(const MetricsRegistry& m, const std::string& name) {
  auto it = m.counters().find(name);
  return it == m.counters().end() ? 0 : it->second.value();
}

void check_conservation(const MetricsRegistry& m, const RuntimeReport& r) {
  EXPECT_EQ(ctr(m, "total.offered"),
            ctr(m, "total.delivered") + ctr(m, "total.dropped") +
                ctr(m, "total.residual"));
  EXPECT_EQ(ctr(m, "total.residual"), r.residual_backlog);
  EXPECT_EQ(r.drained, r.residual_backlog == 0);
}

void check_hop_accounting(const MetricsRegistry& m, const FabricGraph& g) {
  for (std::size_t k = 0; k < g.hops(); ++k) {
    const std::string p = "fabric.hop" + std::to_string(k) + ".";
    const auto res = m.gauges().find(p + "residual");
    ASSERT_NE(res, m.gauges().end());
    EXPECT_EQ(ctr(m, p + "accepted"),
              ctr(m, p + "sent") + ctr(m, p + "delivered") +
                  ctr(m, p + "dropped.fault") + ctr(m, p + "dropped.deflect") +
                  static_cast<std::uint64_t>(res->second.value()));
    if (k + 1 < g.hops()) EXPECT_EQ(ctr(m, p + "delivered"), 0u);
    if (k + 1 == g.hops()) EXPECT_EQ(ctr(m, p + "sent"), 0u);
  }
}

class AllTopologies
    : public ::testing::TestWithParam<std::tuple<Topology, std::size_t,
                                                 std::size_t, const char*>> {};

INSTANTIATE_TEST_SUITE_P(
    Fabric, AllTopologies,
    ::testing::Values(
        std::make_tuple(Topology::kSingle, std::size_t{1}, std::size_t{4}, "rr"),
        std::make_tuple(Topology::kOmega, std::size_t{3}, std::size_t{2}, "rr"),
        std::make_tuple(Topology::kOmega, std::size_t{3}, std::size_t{2}, "islip"),
        std::make_tuple(Topology::kButterfly, std::size_t{3}, std::size_t{2}, "rr"),
        std::make_tuple(Topology::kFatTree, std::size_t{3}, std::size_t{2}, "islip")));

TEST_P(AllTopologies, ConservesEveryMessageEndToEnd) {
  const auto& [topo, hops, radix, alloc] = GetParam();
  FabricSpec spec = base_spec(topo, hops, radix);
  spec.alloc = alloc;
  FabricSim sim(spec, fast_opts(), bernoulli(0.6));
  MetricsRegistry metrics;
  const RuntimeReport report = sim.run(metrics);
  EXPECT_GT(ctr(metrics, "total.offered"), 0u);
  EXPECT_GT(ctr(metrics, "total.delivered"), 0u);
  check_conservation(metrics, report);
  check_hop_accounting(metrics, sim.graph());
  // Healthy fabric under a moderate load: nothing is lost to faults.
  for (std::size_t k = 0; k < sim.graph().hops(); ++k) {
    EXPECT_EQ(ctr(metrics, "fabric.hop" + std::to_string(k) + ".dropped.fault"),
              0u);
  }
}

TEST(FabricSim, DegenerateRadixOneChainDeliversEverything) {
  FabricSpec spec = base_spec(Topology::kOmega, 3, 1);
  FabricSim sim(spec, fast_opts(), bernoulli(0.8));
  MetricsRegistry metrics;
  const RuntimeReport report = sim.run(metrics);
  EXPECT_TRUE(report.drained);
  check_conservation(metrics, report);
  check_hop_accounting(metrics, sim.graph());
  // One source, one sink: no contention, so nothing can be dropped.
  EXPECT_EQ(ctr(metrics, "total.dropped"), 0u);
  EXPECT_EQ(ctr(metrics, "total.offered"), ctr(metrics, "total.delivered"));
}

TEST(FabricSim, FaultedMiddleHopAccountsEveryLoss) {
  FabricSpec spec = base_spec(Topology::kOmega, 3, 2);
  // Columnsort(64, 32) has 32-wide chips; stage 0 chip 0 covers the first
  // port block, where grant placement concentrates, so losses are guaranteed.
  spec.node.faults = {{0, 0}};
  spec.fault_hop = 1;
  FabricSim sim(spec, fast_opts(), bernoulli(0.7));
  MetricsRegistry metrics;
  const RuntimeReport report = sim.run(metrics);
  const std::uint64_t fault_drops = ctr(metrics, "fabric.hop1.dropped.fault");
  EXPECT_GT(fault_drops, 0u);
  EXPECT_EQ(ctr(metrics, "fabric.hop0.dropped.fault"), 0u);
  EXPECT_EQ(ctr(metrics, "fabric.hop2.dropped.fault"), 0u);
  // The losses are accounted, never silent: conservation still balances.
  check_conservation(metrics, report);
  check_hop_accounting(metrics, sim.graph());
  EXPECT_GE(ctr(metrics, "total.dropped"), fault_drops);
  EXPECT_TRUE(sim.name().find("faulted") != std::string::npos);
}

TEST(FabricSim, SaturatesWhenDrainCapTrips) {
  FabricSpec spec = base_spec(Topology::kOmega, 3, 2);
  spec.credits = 2;
  FabricOptions opts = fast_opts();
  opts.drain_epochs_max = 0;  // any backlog at measure end saturates
  opts.queue_depth = 8;
  FabricSim sim(spec, opts, bernoulli(1.0));
  MetricsRegistry metrics;
  const RuntimeReport report = sim.run(metrics);
  EXPECT_TRUE(report.saturated);
  EXPECT_FALSE(report.drained);
  EXPECT_EQ(report.drain_epochs_used, 0u);
  EXPECT_GT(report.residual_backlog, 0u);
  check_conservation(metrics, report);
  check_hop_accounting(metrics, sim.graph());
  EXPECT_EQ(metrics.gauges().at("saturated").value(), 1.0);
}

TEST(FabricSim, BackpressurePropagatesWhenCreditsAreTight) {
  FabricSpec spec = base_spec(Topology::kOmega, 3, 2);
  spec.credits = 1;  // single-slot pools: credit stalls are unavoidable
  FabricSim sim(spec, fast_opts(), bernoulli(1.0));
  MetricsRegistry metrics;
  const RuntimeReport report = sim.run(metrics);
  check_conservation(metrics, report);
  std::uint64_t stalls = 0;
  for (std::size_t k = 0; k + 1 < sim.graph().hops(); ++k) {
    stalls += ctr(metrics, "fabric.hop" + std::to_string(k) + ".credit_stalls");
  }
  EXPECT_GT(stalls, 0u);
}

TEST(FabricSim, DeterministicPerSeed) {
  auto run_once = [] {
    FabricSpec spec = base_spec(Topology::kButterfly, 3, 2);
    spec.alloc = "islip";
    FabricSim sim(spec, fast_opts(), bernoulli(0.5));
    MetricsRegistry metrics;
    sim.run(metrics);
    return metrics.to_json();
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(FabricSim, MakeFabricSimBridgesTheRuntimeConfig) {
  rt::RuntimeConfig cfg;
  cfg.family = "columnsort";
  cfg.n = 64;
  cfg.m = 32;
  cfg.topology = "omega";
  cfg.fabric_hops = 2;
  cfg.fabric_radix = 2;
  cfg.fabric_alloc = "islip";
  cfg.fabric_credits = 3;
  cfg.warmup_epochs = 2;
  cfg.measure_epochs = 8;
  cfg.drain_epochs_max = 64;
  cfg.seed = 3;
  auto sim = make_fabric_sim(cfg, "columnsort", 0.4);
  EXPECT_EQ(sim->graph().hops(), 2u);
  EXPECT_EQ(sim->graph().spec().credits, 3u);
  EXPECT_EQ(sim->options().seed, 3u);
  MetricsRegistry metrics;
  const RuntimeReport report = sim->run(metrics);
  check_conservation(metrics, report);
  EXPECT_EQ(sim->name(), "omega(hops=2, radix=2) of columnsort(r=32,s=2,m=32)");
}

TEST(FabricSim, RejectsBadConstruction) {
  FabricSpec spec = base_spec(Topology::kOmega, 2, 2);
  FabricOptions opts = fast_opts();
  opts.queue_depth = 0;
  EXPECT_THROW(FabricSim(spec, opts, bernoulli(0.5)), ContractViolation);
  EXPECT_THROW(FabricSim(spec, fast_opts(), nullptr), ContractViolation);
  // A traffic generator of the wrong width is rejected at run().
  FabricSim sim(spec, fast_opts(), [](std::size_t) -> std::unique_ptr<traffic::TrafficSource> {
    return std::make_unique<traffic::ComposedSource>(
        traffic::PatternKind::kUniform,
        std::make_unique<traffic::BernoulliProcess>(3, 0.5), 0.125);
  });
  MetricsRegistry metrics;
  EXPECT_THROW(sim.run(metrics), ContractViolation);
}

}  // namespace
}  // namespace pcs::fabric
