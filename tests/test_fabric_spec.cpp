// pcs::FabricSpec is the public declarative fabric description and its
// digest() keys serving-daemon campaign replies (the fabric analogue of the
// SwitchSpec plan-cache key).  The golden values pin the byte layout: a
// failure here means "you changed the digest algorithm", which strands
// every persisted key -- bump deliberately, not by accident.  validate()
// must name the offending field so daemon error replies are actionable.
#include "fabric/fabric_spec.hpp"

#include <gtest/gtest.h>

#include <string>

#include "fabric/make_fabric.hpp"
#include "util/assert.hpp"

namespace pcs {
namespace {

FabricSpec base_spec() {
  FabricSpec spec;  // omega, hops 3, radix 2, rr, deterministic
  spec.node.family = "columnsort";
  spec.node.n = 64;
  spec.node.m = 32;
  return spec;
}

TEST(FabricSpecDigest, GoldenValuesArePinned) {
  // Computed once from the FNV-1a layout (node digest, topology byte, hops,
  // radix, credits, length-prefixed alloc + route, deflect_max, fault_hop);
  // pinned forever.
  EXPECT_EQ(base_spec().digest(plan::ExecMode::kFused),
            0x7dfec259cfa8fb77ull);
  EXPECT_EQ(base_spec().digest(plan::ExecMode::kLegacy),
            0x05b210df10e8f382ull);

  FabricSpec ft = base_spec();
  ft.topology = fabric::Topology::kFatTree;
  ft.alloc = "islip";
  ft.route = "adaptive";
  ft.deflect_max = 3;
  EXPECT_EQ(ft.digest(), 0x7defa472f6d95a61ull);

  FabricSpec faulted = base_spec();
  faulted.node.faults.push_back(plan::ChipFault{1, 0});
  faulted.fault_hop = 1;
  EXPECT_EQ(faulted.digest(), 0x5979772a04202dcaull);
}

TEST(FabricSpecDigest, StableAcrossCalls) {
  const FabricSpec spec = base_spec();
  EXPECT_EQ(spec.digest(), spec.digest());
}

TEST(FabricSpecDigest, EveryFieldFeedsTheDigest) {
  const std::uint64_t base = base_spec().digest();

  FabricSpec s = base_spec();
  s.topology = fabric::Topology::kButterfly;
  EXPECT_NE(s.digest(), base);

  s = base_spec();
  s.hops = 4;
  EXPECT_NE(s.digest(), base);

  s = base_spec();
  s.radix = 4;
  EXPECT_NE(s.digest(), base);

  s = base_spec();
  s.node.m = 16;  // node switch digest feeds through
  EXPECT_NE(s.digest(), base);

  s = base_spec();
  s.node.faults.push_back(plan::ChipFault{0, 1});
  EXPECT_NE(s.digest(), base);

  s = base_spec();
  s.credits = 16;
  EXPECT_NE(s.digest(), base);

  s = base_spec();
  s.alloc = "islip";
  EXPECT_NE(s.digest(), base);

  s = base_spec();
  s.route = "adaptive";
  EXPECT_NE(s.digest(), base);

  s = base_spec();
  s.deflect_max = 1;
  EXPECT_NE(s.digest(), base);

  s = base_spec();
  s.fault_hop = 2;
  EXPECT_NE(s.digest(), base);

  // Exec mode flows through the node digest: fused and legacy plans must
  // never share a key.
  EXPECT_NE(base_spec().digest(plan::ExecMode::kFused),
            base_spec().digest(plan::ExecMode::kLegacy));
}

/// validate() must throw ContractViolation whose message names the field,
/// so a daemon reply carrying e.what() tells the tenant what to fix.
void expect_names_field(const FabricSpec& spec, const std::string& field) {
  try {
    spec.validate();
    FAIL() << "expected ContractViolation naming " << field;
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find(field), std::string::npos)
        << "message '" << e.what() << "' does not name " << field;
  }
}

TEST(FabricSpecValidate, NamesTheOffendingField) {
  FabricSpec s = base_spec();
  s.hops = 0;
  expect_names_field(s, "FabricSpec.hops");

  s = base_spec();
  s.radix = 0;
  expect_names_field(s, "FabricSpec.radix");

  s = base_spec();
  s.topology = fabric::Topology::kSingle;  // needs hops == 1
  expect_names_field(s, "FabricSpec.hops");

  s = base_spec();
  s.topology = fabric::Topology::kFatTree;
  s.hops = 2;  // fat-tree is the fixed 3-hop shape
  expect_names_field(s, "FabricSpec.hops");

  s = base_spec();
  s.node.n = 63;  // not divisible by radix
  expect_names_field(s, "FabricSpec.node.n");

  s = base_spec();
  s.node.m = 31;
  expect_names_field(s, "FabricSpec.node.m");

  s = base_spec();
  s.credits = 0;
  expect_names_field(s, "FabricSpec.credits");

  s = base_spec();
  s.fault_hop = 3;  // hops = 3 -> max hop index 2
  expect_names_field(s, "FabricSpec.fault_hop");

  s = base_spec();
  s.route = "random";
  expect_names_field(s, "FabricSpec.route");

  s = base_spec();
  s.deflect_max = 2;  // deterministic never deflects
  expect_names_field(s, "FabricSpec.deflect_max");
}

TEST(FabricSpecValidate, AcceptsEveryShippedConfiguration) {
  EXPECT_NO_THROW(base_spec().validate());

  FabricSpec s = base_spec();
  s.route = "adaptive";
  s.deflect_max = 4;
  EXPECT_NO_THROW(s.validate());

  s = base_spec();
  s.topology = fabric::Topology::kSingle;
  s.hops = 1;
  s.radix = 4;
  EXPECT_NO_THROW(s.validate());
}

TEST(FabricSpecNodeAt, FaultsLandOnTheFaultHopOnly) {
  FabricSpec s = base_spec();
  s.node.faults.push_back(plan::ChipFault{1, 0});
  s.fault_hop = 1;
  EXPECT_TRUE(s.node_spec_at(0).faults.empty());
  ASSERT_EQ(s.node_spec_at(1).faults.size(), 1u);
  EXPECT_EQ(s.node_spec_at(1).faults[0].stage, 1u);
  EXPECT_TRUE(s.node_spec_at(2).faults.empty());
  EXPECT_THROW(s.node_spec_at(3), ContractViolation);
}

TEST(MakeFabric, RejectsInvalidSpecsBeforeBuildingAnything) {
  FabricSpec s = base_spec();
  s.node.family = "hyper";  // no plan -> not a fabric node
  fabric::FabricOptions opts;
  EXPECT_THROW(
      make_fabric(s, opts, [](std::size_t) {
        return std::unique_ptr<traffic::TrafficSource>();
      }),
      ContractViolation);
}

}  // namespace
}  // namespace pcs
