// FabricGraph wiring: shapes, the destination-tag self-routing property
// (following channel()/out_link() from any source lands on exactly the
// destination sink), channel/upstream inversion, and spec validation.
#include <gtest/gtest.h>

#include "fabric/topology.hpp"
#include "util/assert.hpp"

namespace pcs::fabric {
namespace {

SwitchSpec small_node() {
  SwitchSpec node;
  // Columnsort(64 -> 32) compiles to r=32, s=2 with epsilon 1: plenty of
  // guaranteed capacity (31) at a size small enough for fast campaigns.
  node.family = "columnsort";
  node.n = 64;
  node.m = 32;
  return node;
}

FabricSpec spec_of(Topology t, std::size_t hops, std::size_t radix) {
  FabricSpec spec;
  spec.topology = t;
  spec.hops = hops;
  spec.radix = radix;
  spec.node = small_node();
  return spec;
}

TEST(FabricTopology, FromStringRoundTrips) {
  for (Topology t : {Topology::kSingle, Topology::kOmega, Topology::kButterfly,
                     Topology::kFatTree}) {
    EXPECT_EQ(topology_from_string(topology_name(t)), t);
  }
  EXPECT_THROW(topology_from_string("torus"), ContractViolation);
}

TEST(FabricTopology, OmegaShape) {
  FabricGraph g(spec_of(Topology::kOmega, 3, 2));
  EXPECT_EQ(g.nodes_at(0), 4u);  // 2^(3-1)
  EXPECT_EQ(g.total_nodes(), 12u);
  EXPECT_EQ(g.sources(), 8u);
  EXPECT_EQ(g.sinks(), 8u);
  EXPECT_EQ(g.in_block(), 32u);
  EXPECT_EQ(g.out_block(), 16u);
}

TEST(FabricTopology, FatTreeShape) {
  FabricGraph g(spec_of(Topology::kFatTree, 3, 4));
  EXPECT_EQ(g.nodes_at(0), 4u);  // r leaves / spines / leaves
  EXPECT_EQ(g.total_nodes(), 12u);
  EXPECT_EQ(g.sources(), 16u);  // r^2 hosts
}

TEST(FabricTopology, SingleIsTheOneHopFabric) {
  FabricGraph g(spec_of(Topology::kSingle, 1, 4));
  EXPECT_EQ(g.nodes_at(0), 1u);
  EXPECT_EQ(g.sources(), 4u);
  // Routing is direct ejection: the out-link is the sink.
  for (std::size_t dest = 0; dest < g.sinks(); ++dest) {
    EXPECT_EQ(g.out_link(0, 0, dest), dest);
  }
}

// The load-bearing property: from EVERY source, digit routing through the
// channels delivers to EVERY destination exactly.
void check_self_routing(const FabricGraph& g) {
  const std::size_t r = g.radix();
  for (std::size_t src = 0; src < g.sources(); ++src) {
    for (std::size_t dest = 0; dest < g.sinks(); ++dest) {
      std::size_t node = src / r;
      for (std::size_t hop = 0; hop + 1 < g.hops(); ++hop) {
        const std::size_t link = g.out_link(hop, node, dest);
        ASSERT_LT(link, r);
        node = g.channel(hop, node, link).node;
      }
      const std::size_t last = g.hops() - 1;
      EXPECT_EQ(node * r + g.out_link(last, node, dest), dest)
          << "src " << src << " dest " << dest;
    }
  }
}

TEST(FabricTopology, OmegaSelfRoutes) {
  check_self_routing(FabricGraph(spec_of(Topology::kOmega, 3, 2)));
  check_self_routing(FabricGraph(spec_of(Topology::kOmega, 2, 4)));
  check_self_routing(FabricGraph(spec_of(Topology::kOmega, 4, 2)));
}

TEST(FabricTopology, ButterflySelfRoutes) {
  check_self_routing(FabricGraph(spec_of(Topology::kButterfly, 3, 2)));
  check_self_routing(FabricGraph(spec_of(Topology::kButterfly, 2, 4)));
  check_self_routing(FabricGraph(spec_of(Topology::kButterfly, 4, 2)));
}

TEST(FabricTopology, FatTreeSelfRoutes) {
  check_self_routing(FabricGraph(spec_of(Topology::kFatTree, 3, 2)));
  check_self_routing(FabricGraph(spec_of(Topology::kFatTree, 3, 4)));
}

TEST(FabricTopology, DegenerateRadixOneChainSelfRoutes) {
  check_self_routing(FabricGraph(spec_of(Topology::kOmega, 3, 1)));
  check_self_routing(FabricGraph(spec_of(Topology::kButterfly, 2, 1)));
}

// Every inter-hop boundary must be a permutation: distinct (node, link)
// channels land on distinct (node, inlink) pairs, and upstream() inverts
// channel() exactly (credits returned to the wrong channel would corrupt
// flow control silently).
void check_channel_inversion(const FabricGraph& g) {
  const std::size_t r = g.radix();
  for (std::size_t hop = 0; hop + 1 < g.hops(); ++hop) {
    std::vector<bool> seen(g.nodes_at(hop + 1) * r, false);
    for (std::size_t node = 0; node < g.nodes_at(hop); ++node) {
      for (std::size_t link = 0; link < r; ++link) {
        const FabricGraph::Channel ch = g.channel(hop, node, link);
        const std::size_t slot = ch.node * r + ch.inlink;
        EXPECT_FALSE(seen[slot]) << "two channels feed one in-link";
        seen[slot] = true;
        const FabricGraph::Upstream up = g.upstream(hop + 1, ch.node, ch.inlink);
        EXPECT_EQ(up.node, node);
        EXPECT_EQ(up.link, link);
      }
    }
  }
}

TEST(FabricTopology, BoundariesArePermutationsAndInvert) {
  check_channel_inversion(FabricGraph(spec_of(Topology::kOmega, 3, 2)));
  check_channel_inversion(FabricGraph(spec_of(Topology::kOmega, 4, 2)));
  check_channel_inversion(FabricGraph(spec_of(Topology::kButterfly, 3, 2)));
  check_channel_inversion(FabricGraph(spec_of(Topology::kButterfly, 2, 4)));
  check_channel_inversion(FabricGraph(spec_of(Topology::kFatTree, 3, 4)));
  check_channel_inversion(FabricGraph(spec_of(Topology::kOmega, 3, 1)));
}

TEST(FabricTopology, ValidationRejectsBadSpecs) {
  // single requires hops == 1; fattree requires hops == 3.
  EXPECT_THROW(FabricGraph{spec_of(Topology::kSingle, 2, 2)}, ContractViolation);
  EXPECT_THROW(FabricGraph{spec_of(Topology::kFatTree, 2, 2)}, ContractViolation);
  // Node shape must divide by the radix.
  FabricSpec odd = spec_of(Topology::kOmega, 2, 2);
  odd.node.n = 64;
  odd.node.m = 31;
  EXPECT_THROW(FabricGraph{odd}, ContractViolation);
  FabricSpec r3 = spec_of(Topology::kOmega, 2, 3);
  EXPECT_THROW(FabricGraph{r3}, ContractViolation);  // 64 % 3 != 0
  // Non-plan families cannot be fabric nodes.
  FabricSpec hyper = spec_of(Topology::kOmega, 2, 2);
  hyper.node.family = "hyper";
  EXPECT_THROW(FabricGraph{hyper}, ContractViolation);
  // Zero credits would deadlock every channel.
  FabricSpec zc = spec_of(Topology::kOmega, 2, 2);
  zc.credits = 0;
  EXPECT_THROW(FabricGraph{zc}, ContractViolation);
  // fault_hop must name a real hop.
  FabricSpec fh = spec_of(Topology::kOmega, 2, 2);
  fh.fault_hop = 2;
  EXPECT_THROW(FabricGraph{fh}, ContractViolation);
}

// candidate_mask() is adaptive routing's view of the topology: bit d set
// iff out-link d stays on a minimal path.  It must agree with the
// deterministic digit rule everywhere the digit rule applies, expose ALL
// equal-cost links where the topology genuinely multipaths (the fat-tree
// up-hop), and return 0 exactly where a deflected message is stranded.
TEST(FabricTopology, CandidateMaskContainsTheDeterministicLink) {
  for (const FabricSpec& s :
       {spec_of(Topology::kOmega, 3, 2), spec_of(Topology::kButterfly, 3, 2),
        spec_of(Topology::kFatTree, 3, 4), spec_of(Topology::kSingle, 1, 4)}) {
    FabricGraph g(s);
    const std::size_t r = g.radix();
    for (std::size_t dest = 0; dest < g.sinks(); ++dest) {
      // Walk the deterministic path from every source; at every visited
      // node the mask must include the link the digit rule takes.
      for (std::size_t src = 0; src < g.sources(); ++src) {
        std::size_t node = src / r;
        for (std::size_t hop = 0; hop < g.hops(); ++hop) {
          const std::size_t link = g.out_link(hop, node, dest);
          const std::uint64_t mask = g.candidate_mask(hop, node, dest);
          EXPECT_NE(mask & (std::uint64_t{1} << link), 0u)
              << g.name() << " hop " << hop << " node " << node << " dest "
              << dest;
          if (hop + 1 < g.hops()) node = g.channel(hop, node, link).node;
        }
      }
    }
  }
}

TEST(FabricTopology, SingleMinimalPathTopologiesHaveSingletonMasks) {
  for (const FabricSpec& s :
       {spec_of(Topology::kOmega, 3, 2), spec_of(Topology::kButterfly, 3, 2)}) {
    FabricGraph g(s);
    for (std::size_t hop = 0; hop < g.hops(); ++hop) {
      for (std::size_t node = 0; node < g.nodes_at(hop); ++node) {
        for (std::size_t dest = 0; dest < g.sinks(); ++dest) {
          const std::uint64_t mask = g.candidate_mask(hop, node, dest);
          // Zero or a power of two: omega/butterfly paths are unique.
          EXPECT_EQ(mask & (mask - 1), 0u) << g.name();
          EXPECT_EQ(mask != 0, g.reachable(hop, node, dest));
        }
      }
    }
  }
}

TEST(FabricTopology, FatTreeUpHopExposesAllEqualCostLinks) {
  FabricGraph g(spec_of(Topology::kFatTree, 3, 4));
  const std::uint64_t full = (std::uint64_t{1} << g.radix()) - 1;
  for (std::size_t node = 0; node < g.nodes_at(0); ++node) {
    for (std::size_t dest = 0; dest < g.sinks(); ++dest) {
      // Every spine reaches every leaf: all four up-links are candidates.
      EXPECT_EQ(g.candidate_mask(0, node, dest), full);
    }
  }
  // The spine hop collapses to the destination leaf's link; the down hop is
  // reachable only on the destination leaf itself.
  for (std::size_t spine = 0; spine < g.nodes_at(1); ++spine) {
    EXPECT_EQ(g.candidate_mask(1, spine, 13), std::uint64_t{1} << (13 / 4));
  }
  EXPECT_EQ(g.candidate_mask(2, 13 / 4, 13), std::uint64_t{1} << (13 % 4));
  EXPECT_EQ(g.candidate_mask(2, 0, 13), 0u) << "wrong down-leaf is a dead end";
}

TEST(FabricTopology, UnreachableMeansZeroMask) {
  // Omega: after hop 1 the node's low digit has consumed dest's top digit;
  // a node whose low digit disagrees can no longer reach dest.
  FabricGraph g(spec_of(Topology::kOmega, 3, 2));
  std::size_t reachable = 0, stranded = 0;
  for (std::size_t node = 0; node < g.nodes_at(1); ++node) {
    for (std::size_t dest = 0; dest < g.sinks(); ++dest) {
      const bool ok = (node % 2) == (dest / 4);
      EXPECT_EQ(g.reachable(1, node, dest), ok);
      (ok ? reachable : stranded)++;
    }
  }
  EXPECT_EQ(reachable, stranded);  // half the pairs are off-path at hop 1
}

TEST(FabricTopology, NameIsDescriptive) {
  EXPECT_EQ(FabricGraph(spec_of(Topology::kOmega, 3, 2)).name(),
            "omega(hops=3, radix=2)");
}

}  // namespace
}  // namespace pcs::fabric
