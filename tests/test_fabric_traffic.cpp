// Composable traffic through multi-hop fabrics: transpose and tornado
// drive an omega fabric end to end, the pattern choice visibly changes the
// flow distribution, and a recorded fabric campaign replays to identical
// counters through the config's replay= path.
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <tuple>

#include "fabric/fabric_config.hpp"
#include "fabric/fabric_sim.hpp"
#include "runtime/config.hpp"
#include "runtime/metrics.hpp"
#include "traffic/trace.hpp"
#include "util/assert.hpp"

namespace pcs::fabric {
namespace {

using rt::MetricsRegistry;
using rt::RuntimeReport;

// radix 4 x 2 hops = 16 endpoints: a power of two with an even address-bit
// count, so every permutation pattern (including transpose) is addressable.
rt::RuntimeConfig omega16_config() {
  rt::RuntimeConfig cfg;
  cfg.family = "columnsort";
  cfg.n = 64;
  cfg.m = 32;
  cfg.topology = "omega";
  cfg.fabric_hops = 2;
  cfg.fabric_radix = 4;
  cfg.fabric_credits = 4;
  cfg.queue_depth = 2;
  cfg.seed = 7;
  cfg.warmup_epochs = 4;
  cfg.measure_epochs = 24;
  cfg.drain_epochs_max = 128;
  cfg.check_invariants = true;
  return cfg;
}

std::uint64_t ctr(const MetricsRegistry& m, const std::string& name) {
  auto it = m.counters().find(name);
  return it == m.counters().end() ? 0 : it->second.value();
}

void check_conservation(const MetricsRegistry& m, const RuntimeReport& r) {
  EXPECT_EQ(ctr(m, "total.offered"),
            ctr(m, "total.delivered") + ctr(m, "total.dropped") +
                ctr(m, "total.residual"));
  EXPECT_EQ(ctr(m, "total.residual"), r.residual_backlog);
}

class PermutationPatterns : public ::testing::TestWithParam<const char*> {};

INSTANTIATE_TEST_SUITE_P(FabricTraffic, PermutationPatterns,
                         ::testing::Values("transpose", "tornado", "bitrev",
                                           "shuffle"));

TEST_P(PermutationPatterns, DrivesAnOmegaFabricEndToEnd) {
  rt::RuntimeConfig cfg = omega16_config();
  cfg.pattern = GetParam();
  auto sim = make_fabric_sim(cfg, "columnsort", 0.5);
  EXPECT_EQ(sim->graph().sinks(), 16u);
  MetricsRegistry metrics;
  const RuntimeReport report = sim->run(metrics);
  EXPECT_GT(ctr(metrics, "total.offered"), 0u);
  EXPECT_GT(ctr(metrics, "total.delivered"), 0u);
  check_conservation(metrics, report);
}

TEST(FabricTraffic, PatternShapesTheFlowDistribution) {
  // Same seed, same fabric, same injection process: only the destination
  // map differs, and the campaign metrics must reflect it.
  auto run_with = [](const std::string& pattern) {
    rt::RuntimeConfig cfg = omega16_config();
    cfg.pattern = pattern;
    auto sim = make_fabric_sim(cfg, "columnsort", 0.5);
    MetricsRegistry metrics;
    sim->run(metrics);
    return metrics.to_json();
  };
  const std::string uniform = run_with("uniform");
  const std::string transpose = run_with("transpose");
  const std::string tornado = run_with("tornado");
  EXPECT_NE(uniform, transpose);
  EXPECT_NE(uniform, tornado);
  EXPECT_NE(transpose, tornado);
  // Each run is itself deterministic: the difference is the pattern, not
  // noise.
  EXPECT_EQ(uniform, run_with("uniform"));
}

TEST(FabricTraffic, TransposeRequiresAnAddressableEndpointCount) {
  // 2 hops x radix 2 = 4 endpoints would work; 3 hops x radix 2 = 8 has an
  // odd address-bit count, which transpose cannot serve.
  rt::RuntimeConfig cfg = omega16_config();
  cfg.fabric_hops = 3;
  cfg.fabric_radix = 2;
  cfg.pattern = "transpose";
  auto sim = make_fabric_sim(cfg, "columnsort", 0.5);
  MetricsRegistry metrics;
  EXPECT_THROW(sim->run(metrics), ContractViolation);
  // Tornado is defined at every endpoint count, including 8.
  cfg.pattern = "tornado";
  auto ok = make_fabric_sim(cfg, "columnsort", 0.5);
  MetricsRegistry metrics2;
  const RuntimeReport report = ok->run(metrics2);
  EXPECT_GT(ctr(metrics2, "total.delivered"), 0u);
  check_conservation(metrics2, report);
}

TEST(FabricTraffic, RecordedCampaignReplaysToIdenticalCounters) {
  const std::string path = ::testing::TempDir() + "pcs_fabric_replay.bin";
  rt::RuntimeConfig cfg = omega16_config();
  cfg.pattern = "hotspot";
  cfg.injection = "onoff";

  // Record: wrap the config-built source in a trace recorder by hand (the
  // pcs_serve CLI wires this up for single-switch campaigns; fabrics record
  // through the same wrapper).
  traffic::TraceRecorder recorder(16, 1);
  {
    rt::RuntimeConfig point = cfg;
    point.arrival_p = 0.5;
    FabricSim sim(fabric_spec_from(cfg, "columnsort"),
                  fabric_options_from(cfg),
                  [&recorder, &point](std::size_t width) {
                    return recorder.wrap(rt::make_traffic(point, width), 0);
                  });
    MetricsRegistry metrics;
    sim.run(metrics);
  }
  recorder.log().write_file(path);

  auto counters = [](const rt::RuntimeConfig& c) {
    auto sim = make_fabric_sim(c, "columnsort", 0.5);
    MetricsRegistry metrics;
    sim->run(metrics);
    return std::make_tuple(
        ctr(metrics, "total.offered"), ctr(metrics, "total.delivered"),
        ctr(metrics, "total.dropped"), ctr(metrics, "total.residual"));
  };
  const auto live = counters(cfg);
  rt::RuntimeConfig replay_cfg = cfg;
  replay_cfg.replay = path;
  const auto replayed = counters(replay_cfg);
  std::remove(path.c_str());
  EXPECT_EQ(live, replayed);
  EXPECT_GT(std::get<0>(live), 0u);
}

TEST(FabricTraffic, ReplayRejectsAWidthMismatch) {
  const std::string path = ::testing::TempDir() + "pcs_fabric_badwidth.bin";
  traffic::TraceLog log;
  log.width = 8;  // fabric below has 16 sources
  log.streams.emplace_back();
  log.write_file(path);
  rt::RuntimeConfig cfg = omega16_config();
  cfg.replay = path;
  auto sim = make_fabric_sim(cfg, "columnsort", 0.5);
  MetricsRegistry metrics;
  EXPECT_THROW(sim->run(metrics), ContractViolation);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace pcs::fabric
