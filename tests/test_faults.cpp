#include "switch/faults.hpp"

#include <gtest/gtest.h>

#include "switch/revsort_switch.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace pcs::sw {
namespace {

TEST(Faults, NoFaultsEqualsHealthySwitch) {
  const std::size_t n = 256;
  FaultyRevsortSwitch faulty(n, n, {});
  RevsortSwitch healthy(n, n);
  Rng rng(310);
  for (int t = 0; t < 20; ++t) {
    BitVec valid = rng.bernoulli_bits(n, rng.uniform01());
    EXPECT_EQ(faulty.route(valid).output_of_input,
              healthy.route(valid).output_of_input);
  }
}

TEST(Faults, FaultCoordinatesValidated) {
  EXPECT_THROW(FaultyRevsortSwitch(64, 64, {ChipFault{3, 0}}),
               pcs::ContractViolation);
  EXPECT_THROW(FaultyRevsortSwitch(64, 64, {ChipFault{0, 8}}),
               pcs::ContractViolation);
  EXPECT_THROW(FaultyColumnsortSwitch(16, 4, 64, {ChipFault{2, 0}}),
               pcs::ContractViolation);
}

TEST(Faults, DeadStage0ChipLosesExactlyItsMessages) {
  // Stage-0 chip c handles the inputs attached chip-major to column c:
  // input wires [c*side, (c+1)*side).
  const std::size_t n = 64, side = 8, dead = 3;
  FaultyRevsortSwitch sw(n, n, {ChipFault{0, dead}});
  Rng rng(311);
  for (int t = 0; t < 25; ++t) {
    BitVec valid = rng.bernoulli_bits(n, 0.5);
    SwitchRouting r = sw.route(valid);
    EXPECT_TRUE(r.is_partial_injection());
    std::size_t k = valid.count();
    std::size_t on_dead_chip = 0;
    for (std::size_t i = dead * side; i < (dead + 1) * side; ++i) {
      on_dead_chip += valid.get(i);
    }
    EXPECT_EQ(r.routed_count(), k - on_dead_chip) << "t=" << t;
    // Every lost message came from the dead chip.
    for (std::size_t i = 0; i < n; ++i) {
      if (valid.get(i) && r.output_of_input[i] < 0) {
        EXPECT_GE(i, dead * side);
        EXPECT_LT(i, (dead + 1) * side);
      }
    }
  }
}

TEST(Faults, LossBoundedByChipWidthPerFault) {
  const std::size_t n = 256;
  Rng rng(312);
  for (std::size_t stage = 0; stage < 3; ++stage) {
    FaultyRevsortSwitch sw(n, n, {ChipFault{stage, 5}, ChipFault{stage, 9}});
    for (int t = 0; t < 15; ++t) {
      BitVec valid = rng.bernoulli_bits(n, rng.uniform01());
      SwitchRouting r = sw.route(valid);
      EXPECT_TRUE(r.is_partial_injection());
      EXPECT_GE(r.routed_count() + sw.max_fault_loss(), valid.count())
          << "stage=" << stage << " t=" << t;
    }
  }
}

TEST(Faults, ColumnsortDeadChipsDegradeGracefully) {
  const std::size_t r = 64, s = 8, n = r * s;
  Rng rng(313);
  FaultyColumnsortSwitch sw(r, s, n, {ChipFault{0, 2}, ChipFault{1, 6}});
  for (int t = 0; t < 20; ++t) {
    BitVec valid = rng.bernoulli_bits(n, 0.5);
    SwitchRouting routing = sw.route(valid);
    EXPECT_TRUE(routing.is_partial_injection());
    EXPECT_GE(routing.routed_count() + sw.max_fault_loss(), valid.count());
  }
}

TEST(Faults, FaultySwitchStillFeedsClockedSimSafely) {
  // Downstream machinery must keep working: lost messages surface as
  // congestion, not corruption.
  FaultyRevsortSwitch sw(64, 48, {ChipFault{1, 2}});
  Rng rng(314);
  BitVec valid = rng.bernoulli_bits(64, 0.4);
  SwitchRouting routing = sw.route(valid);
  EXPECT_TRUE(routing.is_partial_injection());
  std::size_t delivered = routing.routed_count();
  std::size_t lost = valid.count() - delivered;
  EXPECT_LE(lost, valid.count());
}

TEST(Faults, MoreDeadChipsNeverDeliverMore) {
  const std::size_t n = 256;
  Rng rng(315);
  BitVec valid = rng.bernoulli_bits(n, 0.6);
  std::size_t prev = n + 1;
  std::vector<ChipFault> faults;
  for (std::size_t c = 0; c < 6; ++c) {
    FaultyRevsortSwitch sw(n, n, faults);
    std::size_t routed = sw.route(valid).routed_count();
    EXPECT_LE(routed, prev);
    prev = routed;
    faults.push_back(ChipFault{0, c});
  }
}

TEST(Faults, DuplicateFaultsCollapse) {
  // Regression: a chip is either dead or not.  Listing it three times must
  // not triple max_fault_loss() or change the routing.
  const std::vector<ChipFault> dup = {ChipFault{1, 2}, ChipFault{1, 2},
                                      ChipFault{1, 2}};
  FaultyRevsortSwitch repeated(64, 64, dup);
  FaultyRevsortSwitch once(64, 64, {ChipFault{1, 2}});
  EXPECT_EQ(repeated.faults().size(), 1u);
  EXPECT_EQ(repeated.max_fault_loss(), once.max_fault_loss());
  EXPECT_EQ(repeated.max_fault_loss(), repeated.side());
  Rng rng(316);
  for (int t = 0; t < 10; ++t) {
    BitVec valid = rng.bernoulli_bits(64, rng.uniform01());
    EXPECT_EQ(repeated.route(valid).output_of_input,
              once.route(valid).output_of_input);
  }

  FaultyColumnsortSwitch crep(16, 4, 64, {ChipFault{0, 3}, ChipFault{0, 3}});
  EXPECT_EQ(crep.faults().size(), 1u);
  EXPECT_EQ(crep.max_fault_loss(), crep.r());
  EXPECT_NE(crep.name().find("dead=1"), std::string::npos);
}

TEST(Faults, DistinctFaultsAreKept) {
  // Dedupe must only collapse exact (stage, chip) repeats.
  FaultyRevsortSwitch sw(64, 64,
                         {ChipFault{1, 2}, ChipFault{0, 2}, ChipFault{1, 3},
                          ChipFault{1, 2}});
  EXPECT_EQ(sw.faults().size(), 3u);
  EXPECT_EQ(sw.max_fault_loss(), 3 * sw.side());
}

TEST(Faults, NamesReportDeadCount) {
  FaultyRevsortSwitch sw(64, 64, {ChipFault{0, 1}, ChipFault{2, 3}});
  EXPECT_NE(sw.name().find("dead=2"), std::string::npos);
  FaultyColumnsortSwitch cw(16, 4, 64, {ChipFault{1, 0}});
  EXPECT_NE(cw.name().find("dead=1"), std::string::npos);
}

}  // namespace
}  // namespace pcs::sw
