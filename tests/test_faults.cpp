// Chip-fault semantics through the plan IR: compile a family's plan, mark
// chips dead with plan::apply_chip_faults, run it behind plan::PlanSwitch.
// These tests preserve the loss-bound and dedupe guarantees the dedicated
// Faulty* switch classes used to provide.
#include "plan/plan_switch.hpp"

#include <gtest/gtest.h>

#include "plan/compile.hpp"
#include "switch/revsort_switch.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace pcs::plan {
namespace {

PlanSwitch faulty_revsort(std::size_t n, std::size_t m,
                          std::vector<ChipFault> faults) {
  SwitchPlan p = compile_revsort_plan(n, m);
  apply_chip_faults(p, std::move(faults));
  return PlanSwitch(std::move(p));
}

PlanSwitch faulty_columnsort(std::size_t r, std::size_t s, std::size_t m,
                             std::vector<ChipFault> faults) {
  SwitchPlan p = compile_columnsort_plan(r, s, m);
  apply_chip_faults(p, std::move(faults));
  return PlanSwitch(std::move(p));
}

TEST(Faults, NoFaultsEqualsHealthySwitch) {
  const std::size_t n = 256;
  PlanSwitch faulty = faulty_revsort(n, n, {});
  sw::RevsortSwitch healthy(n, n);
  Rng rng(310);
  for (int t = 0; t < 20; ++t) {
    BitVec valid = rng.bernoulli_bits(n, rng.uniform01());
    EXPECT_EQ(faulty.route(valid).output_of_input,
              healthy.route(valid).output_of_input);
  }
}

TEST(Faults, FaultCoordinatesValidated) {
  EXPECT_THROW(faulty_revsort(64, 64, {ChipFault{3, 0}}),
               pcs::ContractViolation);
  EXPECT_THROW(faulty_revsort(64, 64, {ChipFault{0, 8}}),
               pcs::ContractViolation);
  EXPECT_THROW(faulty_columnsort(16, 4, 64, {ChipFault{2, 0}}),
               pcs::ContractViolation);
}

TEST(Faults, DeadStage0ChipLosesExactlyItsMessages) {
  // Stage-0 chip c handles the inputs attached chip-major to column c:
  // input wires [c*side, (c+1)*side).
  const std::size_t n = 64, side = 8, dead = 3;
  PlanSwitch sw = faulty_revsort(n, n, {ChipFault{0, dead}});
  Rng rng(311);
  for (int t = 0; t < 25; ++t) {
    BitVec valid = rng.bernoulli_bits(n, 0.5);
    sw::SwitchRouting r = sw.route(valid);
    EXPECT_TRUE(r.is_partial_injection());
    std::size_t k = valid.count();
    std::size_t on_dead_chip = 0;
    for (std::size_t i = dead * side; i < (dead + 1) * side; ++i) {
      on_dead_chip += valid.get(i);
    }
    EXPECT_EQ(r.routed_count(), k - on_dead_chip) << "t=" << t;
    // Every lost message came from the dead chip.
    for (std::size_t i = 0; i < n; ++i) {
      if (valid.get(i) && r.output_of_input[i] < 0) {
        EXPECT_GE(i, dead * side);
        EXPECT_LT(i, (dead + 1) * side);
      }
    }
  }
}

TEST(Faults, LossBoundedByChipWidthPerFault) {
  const std::size_t n = 256;
  Rng rng(312);
  for (std::size_t stage = 0; stage < 3; ++stage) {
    PlanSwitch sw =
        faulty_revsort(n, n, {ChipFault{stage, 5}, ChipFault{stage, 9}});
    for (int t = 0; t < 15; ++t) {
      BitVec valid = rng.bernoulli_bits(n, rng.uniform01());
      sw::SwitchRouting r = sw.route(valid);
      EXPECT_TRUE(r.is_partial_injection());
      EXPECT_GE(r.routed_count() + sw.max_fault_loss(), valid.count())
          << "stage=" << stage << " t=" << t;
    }
  }
}

TEST(Faults, ColumnsortDeadChipsDegradeGracefully) {
  const std::size_t r = 64, s = 8, n = r * s;
  Rng rng(313);
  PlanSwitch sw = faulty_columnsort(r, s, n, {ChipFault{0, 2}, ChipFault{1, 6}});
  for (int t = 0; t < 20; ++t) {
    BitVec valid = rng.bernoulli_bits(n, 0.5);
    sw::SwitchRouting routing = sw.route(valid);
    EXPECT_TRUE(routing.is_partial_injection());
    EXPECT_GE(routing.routed_count() + sw.max_fault_loss(), valid.count());
  }
}

TEST(Faults, FaultySwitchStillFeedsClockedSimSafely) {
  // Downstream machinery must keep working: lost messages surface as
  // congestion, not corruption.
  PlanSwitch sw = faulty_revsort(64, 48, {ChipFault{1, 2}});
  Rng rng(314);
  BitVec valid = rng.bernoulli_bits(64, 0.4);
  sw::SwitchRouting routing = sw.route(valid);
  EXPECT_TRUE(routing.is_partial_injection());
  std::size_t delivered = routing.routed_count();
  std::size_t lost = valid.count() - delivered;
  EXPECT_LE(lost, valid.count());
}

TEST(Faults, MoreDeadChipsNeverDeliverMore) {
  const std::size_t n = 256;
  Rng rng(315);
  BitVec valid = rng.bernoulli_bits(n, 0.6);
  std::size_t prev = n + 1;
  std::vector<ChipFault> faults;
  for (std::size_t c = 0; c < 6; ++c) {
    PlanSwitch sw = faulty_revsort(n, n, faults);
    std::size_t routed = sw.route(valid).routed_count();
    EXPECT_LE(routed, prev);
    prev = routed;
    faults.push_back(ChipFault{0, c});
  }
}

TEST(Faults, DuplicateFaultsCollapse) {
  // Regression: a chip is either dead or not.  Listing it three times must
  // not triple max_fault_loss() or change the routing.
  const std::vector<ChipFault> dup = {ChipFault{1, 2}, ChipFault{1, 2},
                                      ChipFault{1, 2}};
  PlanSwitch repeated = faulty_revsort(64, 64, dup);
  PlanSwitch once = faulty_revsort(64, 64, {ChipFault{1, 2}});
  EXPECT_EQ(repeated.plan().faults.size(), 1u);
  EXPECT_EQ(repeated.max_fault_loss(), once.max_fault_loss());
  EXPECT_EQ(repeated.max_fault_loss(), 8u);  // one dead side-wide chip
  Rng rng(316);
  for (int t = 0; t < 10; ++t) {
    BitVec valid = rng.bernoulli_bits(64, rng.uniform01());
    EXPECT_EQ(repeated.route(valid).output_of_input,
              once.route(valid).output_of_input);
  }

  PlanSwitch crep = faulty_columnsort(16, 4, 64, {ChipFault{0, 3}, ChipFault{0, 3}});
  EXPECT_EQ(crep.plan().faults.size(), 1u);
  EXPECT_EQ(crep.max_fault_loss(), 16u);  // one dead r-wide chip
  EXPECT_NE(crep.name().find("dead=1"), std::string::npos);
}

TEST(Faults, DistinctFaultsAreKept) {
  // Dedupe must only collapse exact (stage, chip) repeats.
  PlanSwitch sw = faulty_revsort(64, 64,
                                 {ChipFault{1, 2}, ChipFault{0, 2}, ChipFault{1, 3},
                                  ChipFault{1, 2}});
  EXPECT_EQ(sw.plan().faults.size(), 3u);
  EXPECT_EQ(sw.max_fault_loss(), 3 * 8u);
}

TEST(Faults, NamesReportDeadCount) {
  PlanSwitch sw = faulty_revsort(64, 64, {ChipFault{0, 1}, ChipFault{2, 3}});
  EXPECT_NE(sw.name().find("dead=2"), std::string::npos);
  PlanSwitch cw = faulty_columnsort(16, 4, 64, {ChipFault{1, 0}});
  EXPECT_NE(cw.name().find("dead=1"), std::string::npos);
}

TEST(Faults, RewriteClearsFastPathAndGuarantee) {
  SwitchPlan p = compile_revsort_plan(256, 256);
  EXPECT_EQ(p.fast_path, FastPathKind::kRevsortCount);
  apply_chip_faults(p, {ChipFault{2, 0}});
  EXPECT_EQ(p.fast_path, FastPathKind::kNone);
  EXPECT_EQ(p.epsilon, p.n);  // no nearsorting guarantee survives a fault
  EXPECT_EQ(p.max_fault_loss, 16u);
  EXPECT_EQ(p.name, "faulty-revsort(256,256,dead=1)");
}

TEST(Faults, RewriteIsIdempotentAcrossApplications) {
  // Applying the same fault twice (two rewrite calls) must not double the
  // loss bound or re-decorate the name.
  SwitchPlan p = compile_columnsort_plan(16, 4, 64);
  apply_chip_faults(p, {ChipFault{0, 1}});
  const std::size_t loss_once = p.max_fault_loss;
  apply_chip_faults(p, {ChipFault{0, 1}});
  EXPECT_EQ(p.max_fault_loss, loss_once);
  EXPECT_EQ(p.faults.size(), 1u);
  EXPECT_NE(p.name.find("dead=1"), std::string::npos);
  EXPECT_EQ(p.name.find("faulty-faulty"), std::string::npos);
  // A second, distinct fault still accumulates.
  apply_chip_faults(p, {ChipFault{1, 2}});
  EXPECT_EQ(p.faults.size(), 2u);
  EXPECT_EQ(p.max_fault_loss, 2 * loss_once);
  EXPECT_NE(p.name.find("dead=2"), std::string::npos);
}

TEST(Faults, WorksForEveryFamily) {
  // The rewrite is family-agnostic: the full sorters take faults too (their
  // fully_sorting shortcut must drop so batch paths stay honest).
  Rng rng(317);
  SwitchPlan p = compile_full_revsort_plan(64);
  apply_chip_faults(p, {ChipFault{0, 3}});
  EXPECT_FALSE(p.fully_sorting);
  PlanSwitch sw{std::move(p)};
  for (int t = 0; t < 10; ++t) {
    BitVec valid = rng.bernoulli_bits(64, 0.5);
    sw::SwitchRouting r = sw.route(valid);
    EXPECT_TRUE(r.is_partial_injection());
    EXPECT_GE(r.routed_count() + sw.max_fault_loss(), valid.count());
  }
  std::vector<BitVec> batch;
  for (int t = 0; t < 70; ++t) batch.push_back(rng.bernoulli_bits(64, 0.5));
  auto nb = sw.nearsorted_batch(batch);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(nb[i], sw.nearsorted_valid_bits(batch[i])) << "i=" << i;
  }
}

}  // namespace
}  // namespace pcs::plan
