#include "switch/full_sort_hyper.hpp"

#include <gtest/gtest.h>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace pcs::sw {
namespace {

// A hyperconcentrator must route its k valid inputs to its *first* k
// outputs for every input pattern.
void expect_hyperconcentration(const ConcentratorSwitch& sw, const BitVec& valid) {
  SwitchRouting r = sw.route(valid);
  const std::size_t k = valid.count();
  EXPECT_TRUE(r.is_partial_injection());
  EXPECT_EQ(r.routed_count(), k);
  for (std::size_t j = 0; j < sw.outputs(); ++j) {
    EXPECT_EQ(r.input_of_output[j] >= 0, j < k) << "output " << j;
  }
}

class FullRevsort : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FullRevsort, FullySortsAllDensities) {
  const std::size_t n = GetParam();
  FullRevsortHyper sw(n);
  Rng rng(160 + n);
  for (int trial = 0; trial < 30; ++trial) {
    BitVec valid = rng.bernoulli_bits(n, rng.uniform01());
    expect_hyperconcentration(sw, valid);
    // The prescribed stage structure should suffice without the safety net.
    EXPECT_EQ(sw.extra_phases_used(), 0u) << "n=" << n << " trial=" << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, FullRevsort, ::testing::Values(4, 16, 64, 256, 1024));

TEST(FullRevsort, ChipPassCountStructure) {
  // 2 per repetition + 1 + 6 + 1 (see header); reps = ceil(lg lg sqrt(n)).
  FullRevsortHyper sw256(256);  // side 16, reps = 2
  EXPECT_EQ(sw256.repetitions(), 2u);
  EXPECT_EQ(sw256.chip_passes(), 12u);
  FullRevsortHyper sw4096(4096);  // side 64, q=6, reps = ceil(lg 6) = 3
  EXPECT_EQ(sw4096.repetitions(), 3u);
  EXPECT_EQ(sw4096.chip_passes(), 14u);
}

TEST(FullRevsort, ShapeValidation) {
  EXPECT_THROW(FullRevsortHyper(32), pcs::ContractViolation);
  EXPECT_THROW(FullRevsortHyper(36), pcs::ContractViolation);
}

TEST(FullRevsort, ExtremeDensities) {
  FullRevsortHyper sw(64);
  expect_hyperconcentration(sw, BitVec(64));
  expect_hyperconcentration(sw, BitVec(64, true));
  BitVec one(64);
  one.set(63, true);
  expect_hyperconcentration(sw, one);
}

struct Shape {
  std::size_t r, s;
};

class FullColumnsort : public ::testing::TestWithParam<Shape> {};

TEST_P(FullColumnsort, FullySortsAllDensities) {
  const auto [r, s] = GetParam();
  FullColumnsortHyper sw(r, s);
  Rng rng(161 + r + s);
  for (int trial = 0; trial < 30; ++trial) {
    BitVec valid = rng.bernoulli_bits(r * s, rng.uniform01());
    expect_hyperconcentration(sw, valid);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, FullColumnsort,
                         ::testing::Values(Shape{8, 2}, Shape{32, 4}, Shape{64, 4},
                                           Shape{128, 8}, Shape{18, 3}));

TEST(FullColumnsort, RejectsBadShapes) {
  EXPECT_THROW(FullColumnsortHyper(16, 4), pcs::ContractViolation);  // 16 < 2*9
  EXPECT_THROW(FullColumnsortHyper(10, 4), pcs::ContractViolation);  // 4 !| 10
}

TEST(FullColumnsort, BomCountsShiftStage) {
  FullColumnsortHyper sw(32, 4);
  Bom bom = sw.bill_of_materials();
  EXPECT_EQ(bom.total_chips(), 3u * 4u + 5u);  // 3s + (s+1)
  EXPECT_EQ(FullColumnsortHyper::kChipPasses, 4u);
}

TEST(FullSortHyper, StableWithinValidOrderNotRequired) {
  // The hyperconcentrator contract fixes which *outputs* are used, not the
  // order of messages among them; this test documents that the full-sort
  // switches still deliver a consistent bijection among the first k.
  FullRevsortHyper sw(64);
  Rng rng(162);
  BitVec valid = rng.bernoulli_bits(64, 0.5);
  SwitchRouting r = sw.route(valid);
  std::vector<bool> seen(64, false);
  for (std::size_t j = 0; j < valid.count(); ++j) {
    std::int32_t src = r.input_of_output[j];
    ASSERT_GE(src, 0);
    EXPECT_TRUE(valid.get(static_cast<std::size_t>(src)));
    EXPECT_FALSE(seen[static_cast<std::size_t>(src)]);
    seen[static_cast<std::size_t>(src)] = true;
  }
}

}  // namespace
}  // namespace pcs::sw
