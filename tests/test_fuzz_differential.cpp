// Differential fuzzing: randomly generated structures checked against
// independent reference implementations.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "gates/circuit.hpp"
#include "gates/evaluator.hpp"
#include "sortnet/mesh_ops.hpp"
#include "util/bitvec.hpp"
#include "util/rng.hpp"

namespace pcs {
namespace {

// --- BitVec vs std::vector<bool> reference ------------------------------

TEST(FuzzDifferential, BitVecAgainstReference) {
  Rng rng(380);
  for (int trial = 0; trial < 50; ++trial) {
    std::size_t n = 1 + rng.below(300);
    BitVec v(n);
    std::vector<bool> ref(n, false);
    for (int op = 0; op < 200; ++op) {
      std::size_t i = rng.below(n);
      switch (rng.below(3)) {
        case 0: {
          bool b = rng.chance(0.5);
          v.set(i, b);
          ref[i] = b;
          break;
        }
        case 1:
          v.flip(i);
          ref[i] = !ref[i];
          break;
        case 2:
          ASSERT_EQ(v.get(i), ref[i]);
          break;
      }
    }
    // Aggregate queries against the reference.
    std::size_t ones = 0;
    for (bool b : ref) ones += b;
    ASSERT_EQ(v.count(), ones);
    std::size_t prefix = rng.below(n + 1);
    std::size_t rank = 0;
    for (std::size_t i = 0; i < prefix; ++i) rank += ref[i];
    ASSERT_EQ(v.rank1_before(prefix), rank);
    bool sorted = true, seen_zero = false;
    for (bool b : ref) {
      if (!b) {
        seen_zero = true;
      } else if (seen_zero) {
        sorted = false;
      }
    }
    ASSERT_EQ(v.is_sorted_nonincreasing(), sorted);
  }
}

// --- random circuits: scalar evaluation vs 64-lane evaluation ------------

gates::Circuit random_circuit(std::size_t inputs, std::size_t gate_budget, Rng& rng,
                              std::vector<gates::NodeId>* input_ids) {
  gates::Circuit c;
  std::vector<gates::NodeId> pool;
  for (std::size_t i = 0; i < inputs; ++i) {
    gates::NodeId id = c.add_input();
    pool.push_back(id);
    input_ids->push_back(id);
  }
  pool.push_back(c.const_zero());
  pool.push_back(c.const_one());
  for (std::size_t g = 0; g < gate_budget; ++g) {
    gates::NodeId a = pool[rng.below(pool.size())];
    gates::NodeId b = pool[rng.below(pool.size())];
    gates::NodeId out = 0;
    switch (rng.below(4)) {
      case 0:
        out = c.add_and(a, b);
        break;
      case 1:
        out = c.add_or(a, b);
        break;
      case 2:
        out = c.add_xor(a, b);
        break;
      case 3:
        out = c.add_not(a);
        break;
    }
    pool.push_back(out);
  }
  // Expose a handful of random nodes as outputs.
  for (int o = 0; o < 8; ++o) c.mark_output(pool[rng.below(pool.size())]);
  return c;
}

TEST(FuzzDifferential, LaneEvaluationMatchesScalarOnRandomCircuits) {
  Rng rng(381);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<gates::NodeId> input_ids;
    gates::Circuit c = random_circuit(6 + rng.below(6), 60, rng, &input_ids);
    gates::Evaluator eval(c);
    // 64 random patterns packed into lanes.
    std::vector<std::uint64_t> lanes(c.input_count());
    for (auto& w : lanes) w = rng.next();
    auto lane_out = eval.evaluate_lanes(lanes);
    for (int lane = 0; lane < 64; lane += 7) {
      BitVec in(c.input_count());
      for (std::size_t i = 0; i < c.input_count(); ++i) {
        in.set(i, (lanes[i] >> lane) & 1u);
      }
      BitVec scalar = eval.evaluate(in);
      for (std::size_t o = 0; o < c.output_count(); ++o) {
        ASSERT_EQ(scalar.get(o), ((lane_out[o] >> lane) & 1u) != 0)
            << "trial " << trial << " lane " << lane << " output " << o;
      }
    }
  }
}

// --- mesh sorts vs std::sort reference -----------------------------------

TEST(FuzzDifferential, ColumnSortAgainstStdSort) {
  Rng rng(382);
  for (int trial = 0; trial < 30; ++trial) {
    std::size_t rows = 2 + rng.below(12);
    std::size_t cols = 2 + rng.below(12);
    BitMatrix m = BitMatrix::from_row_major(
        rng.bernoulli_bits(rows * cols, rng.uniform01()), rows, cols);
    BitMatrix sorted = m;
    sortnet::sort_columns(sorted);
    for (std::size_t j = 0; j < cols; ++j) {
      std::vector<bool> ref = m.col(j).to_bools();
      std::sort(ref.begin(), ref.end(), std::greater<bool>());
      ASSERT_EQ(sorted.col(j).to_bools(), ref) << "col " << j;
    }
  }
}

}  // namespace
}  // namespace pcs
