// Differential fuzzing: randomly generated structures checked against
// independent reference implementations.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "gates/circuit.hpp"
#include "gates/evaluator.hpp"
#include "plan/compile.hpp"
#include "plan/plan_switch.hpp"
#include "sortnet/lane_batch.hpp"
#include "sortnet/mesh_ops.hpp"
#include "switch/columnsort_switch.hpp"
#include "switch/full_sort_hyper.hpp"
#include "switch/hyper_switch.hpp"
#include "switch/multipass_switch.hpp"
#include "switch/revsort_switch.hpp"
#include "util/bitvec.hpp"
#include "util/rng.hpp"

namespace pcs {
namespace {

// --- BitVec vs std::vector<bool> reference ------------------------------

TEST(FuzzDifferential, BitVecAgainstReference) {
  Rng rng(380);
  for (int trial = 0; trial < 50; ++trial) {
    std::size_t n = 1 + rng.below(300);
    BitVec v(n);
    std::vector<bool> ref(n, false);
    for (int op = 0; op < 200; ++op) {
      std::size_t i = rng.below(n);
      switch (rng.below(3)) {
        case 0: {
          bool b = rng.chance(0.5);
          v.set(i, b);
          ref[i] = b;
          break;
        }
        case 1:
          v.flip(i);
          ref[i] = !ref[i];
          break;
        case 2:
          ASSERT_EQ(v.get(i), ref[i]);
          break;
      }
    }
    // Aggregate queries against the reference.
    std::size_t ones = 0;
    for (bool b : ref) ones += b;
    ASSERT_EQ(v.count(), ones);
    std::size_t prefix = rng.below(n + 1);
    std::size_t rank = 0;
    for (std::size_t i = 0; i < prefix; ++i) rank += ref[i];
    ASSERT_EQ(v.rank1_before(prefix), rank);
    bool sorted = true, seen_zero = false;
    for (bool b : ref) {
      if (!b) {
        seen_zero = true;
      } else if (seen_zero) {
        sorted = false;
      }
    }
    ASSERT_EQ(v.is_sorted_nonincreasing(), sorted);
  }
}

// --- random circuits: scalar evaluation vs 64-lane evaluation ------------

gates::Circuit random_circuit(std::size_t inputs, std::size_t gate_budget, Rng& rng,
                              std::vector<gates::NodeId>* input_ids) {
  gates::Circuit c;
  std::vector<gates::NodeId> pool;
  for (std::size_t i = 0; i < inputs; ++i) {
    gates::NodeId id = c.add_input();
    pool.push_back(id);
    input_ids->push_back(id);
  }
  pool.push_back(c.const_zero());
  pool.push_back(c.const_one());
  for (std::size_t g = 0; g < gate_budget; ++g) {
    gates::NodeId a = pool[rng.below(pool.size())];
    gates::NodeId b = pool[rng.below(pool.size())];
    gates::NodeId out = 0;
    switch (rng.below(4)) {
      case 0:
        out = c.add_and(a, b);
        break;
      case 1:
        out = c.add_or(a, b);
        break;
      case 2:
        out = c.add_xor(a, b);
        break;
      case 3:
        out = c.add_not(a);
        break;
    }
    pool.push_back(out);
  }
  // Expose a handful of random nodes as outputs.
  for (int o = 0; o < 8; ++o) c.mark_output(pool[rng.below(pool.size())]);
  return c;
}

TEST(FuzzDifferential, LaneEvaluationMatchesScalarOnRandomCircuits) {
  Rng rng(381);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<gates::NodeId> input_ids;
    gates::Circuit c = random_circuit(6 + rng.below(6), 60, rng, &input_ids);
    gates::Evaluator eval(c);
    // 64 random patterns packed into lanes.
    std::vector<std::uint64_t> lanes(c.input_count());
    for (auto& w : lanes) w = rng.next();
    auto lane_out = eval.evaluate_lanes(lanes);
    for (int lane = 0; lane < 64; lane += 7) {
      BitVec in(c.input_count());
      for (std::size_t i = 0; i < c.input_count(); ++i) {
        in.set(i, (lanes[i] >> lane) & 1u);
      }
      BitVec scalar = eval.evaluate(in);
      for (std::size_t o = 0; o < c.output_count(); ++o) {
        ASSERT_EQ(scalar.get(o), ((lane_out[o] >> lane) & 1u) != 0)
            << "trial " << trial << " lane " << lane << " output " << o;
      }
    }
  }
}

// --- batch routing engine vs per-pattern reference -----------------------

// Batch sizes straddling the 64-lane word width: a lone pattern, a partial
// word, exactly one word, and two words plus a tail.
constexpr std::size_t kBatchSizes[] = {1, 3, 64, 130};

std::vector<BitVec> make_patterns(std::size_t n, std::size_t count, Rng& rng) {
  // Mixed densities including the degenerate all-zero / all-one patterns.
  const double densities[] = {0.0, 0.13, 0.5, 0.9, 1.0};
  std::vector<BitVec> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    double d = densities[i % (sizeof(densities) / sizeof(densities[0]))];
    out.push_back(rng.bernoulli_bits(n, d));
  }
  return out;
}

void expect_batch_matches_sequential(const sw::ConcentratorSwitch& s, Rng& rng) {
  for (std::size_t batch : kBatchSizes) {
    std::vector<BitVec> patterns = make_patterns(s.inputs(), batch, rng);
    std::vector<sw::SwitchRouting> routes = s.route_batch(patterns);
    std::vector<BitVec> arrangements = s.nearsorted_batch(patterns);
    ASSERT_EQ(routes.size(), batch);
    ASSERT_EQ(arrangements.size(), batch);
    for (std::size_t i = 0; i < batch; ++i) {
      sw::SwitchRouting ref = s.route(patterns[i]);
      ASSERT_EQ(routes[i].output_of_input, ref.output_of_input)
          << s.name() << " batch " << batch << " pattern " << i;
      ASSERT_EQ(routes[i].input_of_output, ref.input_of_output)
          << s.name() << " batch " << batch << " pattern " << i;
      BitVec arr_ref = s.nearsorted_valid_bits(patterns[i]);
      ASSERT_EQ(arrangements[i].size(), arr_ref.size());
      ASSERT_EQ(arrangements[i].count_diff(arr_ref), 0u)
          << s.name() << " batch " << batch << " pattern " << i;
    }
  }
}

TEST(FuzzDifferential, HyperSwitchBatchMatchesSequential) {
  Rng rng(383);
  sw::HyperSwitch s(64, 32);
  expect_batch_matches_sequential(s, rng);
}

TEST(FuzzDifferential, RevsortSwitchBatchMatchesSequential) {
  Rng rng(384);
  sw::RevsortSwitch s(256, 128);
  expect_batch_matches_sequential(s, rng);
}

TEST(FuzzDifferential, RevsortSwitchVectorKernelMatchesSequential) {
  // side >= 64 makes each matrix column a whole number of valid-words, the
  // shape where route_batch may take the AVX-512 kernel: side 64 (one word
  // per column, m not a multiple of side) and side 128 (two words).
  Rng rng(388);
  sw::RevsortSwitch s64(4096, 1900);
  expect_batch_matches_sequential(s64, rng);
  sw::RevsortSwitch s128(16384, 5000);
  std::vector<BitVec> patterns = make_patterns(16384, 8, rng);
  std::vector<sw::SwitchRouting> routes = s128.route_batch(patterns);
  for (std::size_t i = 0; i < patterns.size(); ++i) {
    sw::SwitchRouting ref = s128.route(patterns[i]);
    ASSERT_EQ(routes[i].output_of_input, ref.output_of_input) << i;
    ASSERT_EQ(routes[i].input_of_output, ref.input_of_output) << i;
  }
}

TEST(FuzzDifferential, ColumnsortSwitchBatchMatchesSequential) {
  Rng rng(385);
  sw::ColumnsortSwitch s(32, 4, 64);
  expect_batch_matches_sequential(s, rng);
}

TEST(FuzzDifferential, FullSortHyperBatchMatchesSequential) {
  Rng rng(386);
  sw::FullRevsortHyper rev(256);
  expect_batch_matches_sequential(rev, rng);
  sw::FullColumnsortHyper col(32, 4);
  expect_batch_matches_sequential(col, rng);
}

TEST(FuzzDifferential, MultipassSwitchBatchMatchesSequential) {
  Rng rng(387);
  sw::MultipassColumnsortSwitch same(32, 4, 2, 64, sw::ReshapeSchedule::kSame);
  expect_batch_matches_sequential(same, rng);
  sw::MultipassColumnsortSwitch alt(32, 4, 3, 64,
                                    sw::ReshapeSchedule::kAlternating);
  expect_batch_matches_sequential(alt, rng);
}

// --- fused plan executor vs legacy oracle on random plans ----------------

// Every case is replayable from the printed (trial, seed) pair: the trial
// seed derives deterministically from the base seed, so one failing trial
// reruns in isolation by constructing Rng(seed) directly.
TEST(FuzzDifferential, FusedExecutorMatchesLegacyOracleOnRandomPlans) {
  const std::uint64_t base_seed = 391;
  for (int trial = 0; trial < 12; ++trial) {
    const std::uint64_t seed = base_seed * 1000 + static_cast<std::uint64_t>(trial);
    Rng rng(seed);
    // Random family, shape, output cut, and fault set.
    plan::SwitchPlan p = [&]() -> plan::SwitchPlan {
      switch (rng.below(5)) {
        case 0: {
          const std::size_t side = std::size_t{1} << (2 + rng.below(3));
          const std::size_t n = side * side;
          return plan::compile_revsort_plan(n, 1 + rng.below(n));
        }
        case 1: {
          const std::size_t s = std::size_t{1} << (1 + rng.below(3));
          const std::size_t r = s << (1 + rng.below(3));
          const std::size_t n = r * s;
          return plan::compile_columnsort_plan(r, s, 1 + rng.below(n));
        }
        case 2: {
          const std::size_t s = std::size_t{1} << (1 + rng.below(2));
          const std::size_t r = s << (1 + rng.below(2));
          const std::size_t n = r * s;
          const auto sched = rng.chance(0.5)
                                 ? plan::ReshapeSchedule::kSame
                                 : plan::ReshapeSchedule::kAlternating;
          return plan::compile_multipass_plan(r, s, 1 + rng.below(3),
                                              1 + rng.below(n), sched);
        }
        case 3: {
          const std::size_t side = std::size_t{1} << (1 + rng.below(3));
          return plan::compile_full_revsort_plan(side * side);
        }
        default: {
          const std::size_t s = std::size_t{1} << (1 + rng.below(2));
          const std::size_t r = s << (2 + rng.below(2));
          return plan::compile_full_columnsort_plan(r, s);
        }
      }
    }();
    if (rng.chance(0.5)) {
      std::vector<plan::ChipFault> faults;
      const std::size_t kills = 1 + rng.below(3);
      for (std::size_t k = 0; k < kills; ++k) {
        const std::size_t stage = rng.below(p.stages.size());
        faults.push_back(plan::ChipFault{
            stage, rng.below(p.stages[stage].chips)});
      }
      plan::apply_chip_faults(p, faults);
    }
    plan::PlanSwitch fused{plan::SwitchPlan(p), plan::ExecMode::kFused};
    plan::PlanSwitch legacy{std::move(p), plan::ExecMode::kLegacy};
    const std::size_t width = 1 + rng.below(70);
    std::vector<BitVec> batch = make_patterns(fused.inputs(), width, rng);
    const auto fr = fused.route_batch(batch);
    const auto lr = legacy.route_batch(batch);
    const auto fn = fused.nearsorted_batch(batch);
    const auto ln = legacy.nearsorted_batch(batch);
    for (std::size_t i = 0; i < width; ++i) {
      ASSERT_EQ(fr[i].output_of_input, lr[i].output_of_input)
          << fused.name() << " trial " << trial << " seed " << seed
          << " pattern " << i;
      ASSERT_EQ(fr[i].input_of_output, lr[i].input_of_output)
          << fused.name() << " trial " << trial << " seed " << seed
          << " pattern " << i;
      ASSERT_EQ(fn[i].count_diff(ln[i]), 0u)
          << fused.name() << " trial " << trial << " seed " << seed
          << " pattern " << i;
    }
  }
}

// --- LaneBatch primitives vs scalar reference ----------------------------

TEST(FuzzDifferential, LaneBatchConcentrateMatchesScalar) {
  Rng rng(388);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t seg = 1 + rng.below(16);
    const std::size_t segs = 1 + rng.below(8);
    const std::size_t n = seg * segs;
    const std::size_t count = 1 + rng.below(sortnet::LaneBatch::kLanes);
    std::vector<BitVec> patterns = make_patterns(n, count, rng);
    sortnet::LaneBatch lanes(n);
    lanes.load(patterns, 0, count);
    lanes.concentrate_segments(seg);
    for (std::size_t l = 0; l < count; ++l) {
      // Reference: per segment, ones sink to the low positions.
      BitVec expect(n);
      for (std::size_t g = 0; g < segs; ++g) {
        std::size_t ones = 0;
        for (std::size_t p = 0; p < seg; ++p) {
          ones += patterns[l].get(g * seg + p) ? 1 : 0;
        }
        for (std::size_t p = 0; p < ones; ++p) expect.set(g * seg + p, true);
      }
      ASSERT_EQ(lanes.extract(l).count_diff(expect), 0u)
          << "trial " << trial << " lane " << l;
    }
  }
}

TEST(FuzzDifferential, LaneBatchPermuteMatchesScalar) {
  Rng rng(389);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 2 + rng.below(200);
    std::vector<std::uint32_t> dest(n);
    for (std::size_t i = 0; i < n; ++i) dest[i] = static_cast<std::uint32_t>(i);
    for (std::size_t i = n; i > 1; --i) {
      std::swap(dest[i - 1], dest[rng.below(i)]);
    }
    const std::size_t count = 1 + rng.below(sortnet::LaneBatch::kLanes);
    std::vector<BitVec> patterns = make_patterns(n, count, rng);
    sortnet::LaneBatch lanes(n);
    lanes.load(patterns, 0, count);
    lanes.permute(dest);
    for (std::size_t l = 0; l < count; ++l) {
      BitVec expect(n);
      for (std::size_t i = 0; i < n; ++i) {
        if (patterns[l].get(i)) expect.set(dest[i], true);
      }
      ASSERT_EQ(lanes.extract(l).count_diff(expect), 0u)
          << "trial " << trial << " lane " << l;
    }
  }
}

// --- BitVec word-level helpers vs bit-level reference --------------------

TEST(FuzzDifferential, BitVecWordHelpersAgainstReference) {
  Rng rng(390);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t n = 1 + rng.below(300);
    BitVec a = rng.bernoulli_bits(n, rng.uniform01());
    BitVec b = rng.bernoulli_bits(n, rng.uniform01());
    // count_diff == Hamming distance.
    std::size_t dist = 0;
    for (std::size_t i = 0; i < n; ++i) dist += a.get(i) != b.get(i);
    ASSERT_EQ(a.count_diff(b), dist);
    // prefix_ones: k ones then zeros.
    const std::size_t k = rng.below(n + 1);
    BitVec p = BitVec::prefix_ones(n, k);
    ASSERT_EQ(p.size(), n);
    ASSERT_EQ(p.count(), k);
    for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(p.get(i), i < k);
    // from_words(words()) round-trips.
    BitVec round = BitVec::from_words(a.words(), n);
    ASSERT_EQ(round.count_diff(a), 0u);
  }
}

// --- mesh sorts vs std::sort reference -----------------------------------

TEST(FuzzDifferential, ColumnSortAgainstStdSort) {
  Rng rng(382);
  for (int trial = 0; trial < 30; ++trial) {
    std::size_t rows = 2 + rng.below(12);
    std::size_t cols = 2 + rng.below(12);
    BitMatrix m = BitMatrix::from_row_major(
        rng.bernoulli_bits(rows * cols, rng.uniform01()), rows, cols);
    BitMatrix sorted = m;
    sortnet::sort_columns(sorted);
    for (std::size_t j = 0; j < cols; ++j) {
      std::vector<bool> ref = m.col(j).to_bools();
      std::sort(ref.begin(), ref.end(), std::greater<bool>());
      ASSERT_EQ(sorted.col(j).to_bools(), ref) << "col " << j;
    }
  }
}

}  // namespace
}  // namespace pcs
