// End-to-end bit-serial streaming through the composed gate-level switch:
// the Section 2 message discipline executed on actual gates.  The valid
// bits establish the control state; each payload cycle re-evaluates the
// combinational network with the same valid bits and the next payload bit
// per wire, and the reassembled output payloads must match the senders'.
#include <gtest/gtest.h>

#include "switch/gate_level_switch.hpp"
#include "switch/revsort_switch.hpp"
#include "util/rng.hpp"

namespace pcs::sw {
namespace {

TEST(GateLevelStreaming, PayloadsReassembleIntact) {
  const std::size_t n = 16;
  const std::size_t payload_len = 12;
  GateLevelRevsortSwitch gate(n);
  RevsortSwitch model(n, n);
  Rng rng(340);

  for (int trial = 0; trial < 5; ++trial) {
    BitVec valid = rng.bernoulli_bits(n, 0.5);
    std::vector<BitVec> payloads(n);
    for (std::size_t i = 0; i < n; ++i) {
      payloads[i] = rng.bernoulli_bits(payload_len, 0.5);
    }

    // Stream cycle by cycle: the valid bits stay asserted for the whole
    // message (they hold the electrical paths), payload bits advance.
    std::vector<BitVec> observed(n, BitVec(payload_len));
    for (std::size_t t = 0; t < payload_len; ++t) {
      BitVec data(n);
      for (std::size_t i = 0; i < n; ++i) data.set(i, payloads[i].get(t));
      GateLevelResult res = gate.evaluate(valid, data);
      for (std::size_t p = 0; p < n; ++p) observed[p].set(t, res.data.get(p));
    }

    // Each output position must have received its routed input's payload.
    SwitchRouting routing = model.route(valid);
    for (std::size_t p = 0; p < n; ++p) {
      std::int32_t src = routing.input_of_output[p];
      if (src >= 0) {
        EXPECT_EQ(observed[p], payloads[static_cast<std::size_t>(src)])
            << "trial " << trial << " output " << p;
      } else {
        EXPECT_EQ(observed[p].count(), 0u) << "idle output carried bits";
      }
    }
  }
}

TEST(GateLevelStreaming, PathsStableAcrossCycles) {
  // The same valid pattern must produce identical steering on every cycle:
  // inject a distinctive one-hot payload per cycle and confirm each output
  // tracks a single input wire throughout.
  const std::size_t n = 16;
  GateLevelRevsortSwitch gate(n);
  Rng rng(341);
  BitVec valid = rng.bernoulli_bits(n, 0.6);
  std::vector<std::int32_t> owner(n, -2);  // -2 = unset, -1 = idle
  for (std::size_t probe = 0; probe < n; ++probe) {
    BitVec data(n);
    data.set(probe, true);  // one-hot: only input `probe` sends a 1
    GateLevelResult res = gate.evaluate(valid, data);
    for (std::size_t p = 0; p < n; ++p) {
      if (res.data.get(p)) {
        if (owner[p] == -2) {
          owner[p] = static_cast<std::int32_t>(probe);
        } else {
          EXPECT_EQ(owner[p], static_cast<std::int32_t>(probe))
              << "output " << p << " switched sources mid-message";
        }
      }
    }
  }
}

}  // namespace
}  // namespace pcs::sw
