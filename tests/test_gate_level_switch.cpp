#include "switch/gate_level_switch.hpp"

#include <gtest/gtest.h>

#include "switch/columnsort_switch.hpp"
#include "switch/revsort_switch.hpp"
#include "util/assert.hpp"
#include "util/mathutil.hpp"
#include "util/rng.hpp"

namespace pcs::sw {
namespace {

// The composed gate-level circuit must agree with the behavioural switch:
// the data bit observed at output position p equals the payload bit of the
// input routed there, and the valid arrangement matches.
template <typename GateSwitch, typename BehaviouralSwitch>
void expect_equivalent(const GateSwitch& gate, const BehaviouralSwitch& model,
                       const BitVec& valid, const BitVec& data) {
  GateLevelResult res = gate.evaluate(valid, data);
  EXPECT_EQ(res.valid, model.nearsorted_valid_bits(valid));
  SwitchRouting routing = model.route(valid);  // m = n: covers all outputs
  for (std::size_t p = 0; p < gate.n(); ++p) {
    std::int32_t src = routing.input_of_output[p];
    bool expected = (src >= 0) && data.get(static_cast<std::size_t>(src));
    EXPECT_EQ(res.data.get(p), expected) << "output " << p;
  }
}

TEST(GateLevelRevsort, MatchesBehaviouralSwitch) {
  Rng rng(260);
  for (std::size_t n : {4u, 16u, 64u}) {
    GateLevelRevsortSwitch gate(n);
    RevsortSwitch model(n, n);
    for (int trial = 0; trial < 15; ++trial) {
      BitVec valid = rng.bernoulli_bits(n, rng.uniform01());
      BitVec data = rng.bernoulli_bits(n, 0.5);
      expect_equivalent(gate, model, valid, data);
    }
  }
}

TEST(GateLevelRevsort, DataPathDepthIsThreeLgN) {
  // The composed circuit's measured message delay: 3 chips x 2 lg sqrt(n)
  // = 3 lg n, with wiring and hardwired shifters contributing zero.
  for (std::size_t side : {2u, 4u, 8u}) {
    const std::size_t n = side * side;
    GateLevelRevsortSwitch gate(n);
    EXPECT_EQ(gate.data_path_depth(), 3 * 2 * exact_log2(side)) << "n=" << n;
  }
}

TEST(GateLevelRevsort, ShapeValidation) {
  EXPECT_THROW(GateLevelRevsortSwitch(32), pcs::ContractViolation);
}

TEST(GateLevelColumnsort, MatchesBehaviouralSwitch) {
  Rng rng(261);
  for (auto [r, s] : {std::pair<std::size_t, std::size_t>{8, 2},
                      std::pair<std::size_t, std::size_t>{16, 4},
                      std::pair<std::size_t, std::size_t>{32, 4}}) {
    GateLevelColumnsortSwitch gate(r, s);
    ColumnsortSwitch model(r, s, r * s);
    for (int trial = 0; trial < 15; ++trial) {
      BitVec valid = rng.bernoulli_bits(r * s, rng.uniform01());
      BitVec data = rng.bernoulli_bits(r * s, 0.5);
      expect_equivalent(gate, model, valid, data);
    }
  }
}

TEST(GateLevelColumnsort, DataPathDepthIsFourLgR) {
  for (auto [r, s] : {std::pair<std::size_t, std::size_t>{8, 2},
                      std::pair<std::size_t, std::size_t>{16, 4},
                      std::pair<std::size_t, std::size_t>{64, 8}}) {
    GateLevelColumnsortSwitch gate(r, s);
    EXPECT_EQ(gate.data_path_depth(), 2 * 2 * ceil_log2(r)) << "r=" << r;
  }
}

TEST(GateLevelSwitch, ControlDepthExceedsDataDepth) {
  GateLevelColumnsortSwitch gate(16, 4);
  EXPECT_GT(gate.control_path_depth(), gate.data_path_depth());
}

TEST(GateLevelSwitch, GateCountScalesWithStagesTimesChipArea) {
  // Revsort: 3 stages of v chips of ~c v^2 gates => ~3 c n v gates.
  GateLevelRevsortSwitch g16(16);   // v = 4
  GateLevelRevsortSwitch g64(64);   // v = 8
  double ratio = static_cast<double>(g64.gate_count()) /
                 static_cast<double>(g16.gate_count());
  // v^3 scaling: 8x, within a generous band.
  EXPECT_GT(ratio, 5.0);
  EXPECT_LT(ratio, 13.0);
}

TEST(GateLevelSwitch, ExhaustiveTinyRevsort) {
  const std::size_t n = 4;
  GateLevelRevsortSwitch gate(n);
  RevsortSwitch model(n, n);
  for (std::uint32_t vp = 0; vp < 16; ++vp) {
    for (std::uint32_t dp = 0; dp < 16; ++dp) {
      BitVec valid(n), data(n);
      for (std::size_t i = 0; i < n; ++i) {
        valid.set(i, (vp >> i) & 1u);
        data.set(i, (dp >> i) & 1u);
      }
      expect_equivalent(gate, model, valid, data);
    }
  }
}

}  // namespace
}  // namespace pcs::sw
