#include "hyper/hyper_circuit.hpp"

#include <gtest/gtest.h>

#include "hyper/hyperconcentrator.hpp"
#include "util/mathutil.hpp"
#include "util/rng.hpp"

namespace pcs::hyper {
namespace {

// The gate-level reconstruction must agree with the functional model: for
// every valid pattern and payload, output j carries the payload bit of the
// rank-j valid input, and the sorted valid bits match.
void expect_equivalent(const HyperCircuit& hc, const BitVec& valid,
                       const BitVec& data) {
  Hyperconcentrator model(hc.n());
  Routing r = model.route(valid);
  HyperCircuit::Result res = hc.evaluate(valid, data);
  EXPECT_EQ(res.valid, model.output_valid_bits(valid));
  for (std::size_t j = 0; j < hc.n(); ++j) {
    std::int32_t src = r.input_of_output[j];
    bool expected = (src >= 0) && data.get(static_cast<std::size_t>(src));
    EXPECT_EQ(res.data.get(j), expected) << "output " << j;
  }
}

TEST(HyperCircuit, ExhaustiveSmall) {
  for (std::size_t n : {1u, 2u, 3u, 4u, 5u, 8u}) {
    HyperCircuit hc(n);
    for (std::uint32_t vp = 0; vp < (1u << n); ++vp) {
      BitVec valid(n), data(n);
      for (std::size_t i = 0; i < n; ++i) {
        valid.set(i, (vp >> i) & 1u);
        data.set(i, valid.get(i));  // payload = valid for a quick sweep
      }
      expect_equivalent(hc, valid, data);
    }
  }
}

TEST(HyperCircuit, RandomizedMedium) {
  Rng rng(90);
  for (std::size_t n : {16u, 24u, 32u}) {
    HyperCircuit hc(n);
    for (int trial = 0; trial < 20; ++trial) {
      BitVec valid = rng.bernoulli_bits(n, rng.uniform01());
      BitVec data = rng.bernoulli_bits(n, 0.5);
      expect_equivalent(hc, valid, data);
    }
  }
}

class HyperCircuitDepth : public ::testing::TestWithParam<std::size_t> {};

// The paper's headline chip figure: a message incurs exactly 2 lg n gate
// delays through the data path.
TEST_P(HyperCircuitDepth, DataPathDepthIsTwoLgN) {
  const std::size_t n = GetParam();
  HyperCircuit hc(n);
  EXPECT_EQ(hc.data_path_depth(), 2 * pcs::ceil_log2(n));
}

INSTANTIATE_TEST_SUITE_P(Sizes, HyperCircuitDepth,
                         ::testing::Values(2, 4, 8, 16, 32, 64, 128));

TEST(HyperCircuit, GateCountQuadratic) {
  // Theta(n^2): quadrupling when n doubles, within a loose factor band.
  HyperCircuit h16(16), h32(32), h64(64);
  double r1 = static_cast<double>(h32.gate_count()) / static_cast<double>(h16.gate_count());
  double r2 = static_cast<double>(h64.gate_count()) / static_cast<double>(h32.gate_count());
  EXPECT_GT(r1, 2.5);
  EXPECT_LT(r1, 6.0);
  EXPECT_GT(r2, 2.5);
  EXPECT_LT(r2, 6.0);
}

TEST(HyperCircuit, ControlDepthSeparateFromDataDepth) {
  HyperCircuit hc(32);
  // Control (setup) depth is larger than the data-path depth in our
  // reconstruction and charged to setup latency, not the message.
  EXPECT_GT(hc.control_path_depth(), hc.data_path_depth());
}

TEST(HyperCircuit, NonPowerOfTwoWidths) {
  Rng rng(91);
  for (std::size_t n : {3u, 6u, 12u}) {
    HyperCircuit hc(n);
    EXPECT_EQ(hc.data_path_depth(), 2 * pcs::ceil_log2(n));
    for (int trial = 0; trial < 10; ++trial) {
      expect_equivalent(hc, rng.bernoulli_bits(n, 0.5), rng.bernoulli_bits(n, 0.5));
    }
  }
}

}  // namespace
}  // namespace pcs::hyper
