#include "hyper/hyperconcentrator.hpp"

#include <gtest/gtest.h>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace pcs::hyper {
namespace {

TEST(Hyperconcentrator, RoutesValidToFirstOutputs) {
  Hyperconcentrator h(8);
  BitVec valid = BitVec::from_string("01100101");
  Routing r = h.route(valid);
  // Valid inputs 1, 2, 5, 7 go to outputs 0, 1, 2, 3 (stable order).
  EXPECT_EQ(r.output_of_input[1], 0);
  EXPECT_EQ(r.output_of_input[2], 1);
  EXPECT_EQ(r.output_of_input[5], 2);
  EXPECT_EQ(r.output_of_input[7], 3);
  EXPECT_EQ(r.output_of_input[0], kIdle);
  EXPECT_EQ(r.input_of_output[0], 1);
  EXPECT_EQ(r.input_of_output[3], 7);
  EXPECT_EQ(r.input_of_output[4], kIdle);
  EXPECT_TRUE(r.is_consistent());
  EXPECT_EQ(r.routed_count(), 4u);
}

TEST(Hyperconcentrator, ContractForAllK) {
  const std::size_t n = 16;
  Hyperconcentrator h(n);
  Rng rng(80);
  for (std::size_t k = 0; k <= n; ++k) {
    BitVec valid = rng.exact_weight_bits(n, k);
    Routing r = h.route(valid);
    EXPECT_EQ(r.routed_count(), k);
    // First k outputs busy, rest idle.
    for (std::size_t j = 0; j < n; ++j) {
      EXPECT_EQ(r.input_of_output[j] != kIdle, j < k) << "k=" << k << " j=" << j;
    }
    EXPECT_TRUE(r.is_consistent());
  }
}

TEST(Hyperconcentrator, OutputValidBitsSorted) {
  Hyperconcentrator h(10);
  Rng rng(81);
  for (int t = 0; t < 50; ++t) {
    BitVec valid = rng.bernoulli_bits(10, rng.uniform01());
    BitVec out = h.output_valid_bits(valid);
    EXPECT_TRUE(out.is_sorted_nonincreasing());
    EXPECT_EQ(out.count(), valid.count());
  }
}

TEST(Hyperconcentrator, WidthChecked) {
  Hyperconcentrator h(4);
  EXPECT_THROW(h.route(BitVec(5)), pcs::ContractViolation);
  EXPECT_THROW(Hyperconcentrator(0), pcs::ContractViolation);
}

TEST(Hyperconcentrator, RoutingConsistencyDetectsCorruption) {
  Hyperconcentrator h(4);
  Routing r = h.route(BitVec::from_string("1010"));
  ASSERT_TRUE(r.is_consistent());
  r.input_of_output[0] = 3;  // now inconsistent with output_of_input
  EXPECT_FALSE(r.is_consistent());
}

TEST(StableConcentrate, MovesOccupiedToFrontInOrder) {
  std::vector<std::int32_t> slots = {kIdle, 5, kIdle, 2, 9, kIdle};
  stable_concentrate(slots);
  EXPECT_EQ(slots, (std::vector<std::int32_t>{5, 2, 9, kIdle, kIdle, kIdle}));
}

TEST(StableConcentrate, AllIdleAndAllBusy) {
  std::vector<std::int32_t> idle(4, kIdle);
  stable_concentrate(idle);
  EXPECT_EQ(idle, std::vector<std::int32_t>(4, kIdle));
  std::vector<std::int32_t> busy = {3, 1, 4, 1};
  auto copy = busy;
  stable_concentrate(busy);
  EXPECT_EQ(busy, copy);
}

TEST(StableConcentrate, MatchesRouteProjection) {
  // stable_concentrate on labels must agree with Hyperconcentrator::route.
  const std::size_t n = 12;
  Hyperconcentrator h(n);
  Rng rng(82);
  for (int t = 0; t < 30; ++t) {
    BitVec valid = rng.bernoulli_bits(n, 0.5);
    std::vector<std::int32_t> slots(n, kIdle);
    for (std::size_t i = 0; i < n; ++i) {
      if (valid.get(i)) slots[i] = static_cast<std::int32_t>(i);
    }
    stable_concentrate(slots);
    Routing r = h.route(valid);
    for (std::size_t j = 0; j < n; ++j) {
      EXPECT_EQ(slots[j], r.input_of_output[j]) << "t=" << t << " j=" << j;
    }
  }
}

}  // namespace
}  // namespace pcs::hyper
