// Direct tests of Circuit::instantiate, the facility the composed gate-level
// switches are built on.
#include <gtest/gtest.h>

#include "gates/builder.hpp"
#include "gates/circuit.hpp"
#include "gates/evaluator.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace pcs::gates {
namespace {

// A little reusable subcircuit: full adder (sum, carry).
Circuit make_full_adder() {
  Circuit c;
  NodeId a = c.add_input();
  NodeId b = c.add_input();
  NodeId cin = c.add_input();
  NodeId ab = c.add_xor(a, b);
  c.mark_output(c.add_xor(ab, cin));                                  // sum
  c.mark_output(c.add_or(c.add_and(a, b), c.add_and(ab, cin)));       // carry
  return c;
}

TEST(Instantiate, SingleCopyBehaves) {
  Circuit fa = make_full_adder();
  Circuit top;
  NodeId x = top.add_input();
  NodeId y = top.add_input();
  NodeId z = top.add_input();
  std::vector<NodeId> bind{x, y, z};
  auto outs = top.instantiate(fa, bind);
  ASSERT_EQ(outs.size(), 2u);
  top.mark_output(outs[0]);
  top.mark_output(outs[1]);
  Evaluator eval(top);
  for (std::uint32_t p = 0; p < 8; ++p) {
    BitVec in{static_cast<int>(p & 1), static_cast<int>((p >> 1) & 1),
              static_cast<int>((p >> 2) & 1)};
    BitVec out = eval.evaluate(in);
    unsigned total = (p & 1) + ((p >> 1) & 1) + ((p >> 2) & 1);
    EXPECT_EQ(out.get(0), (total & 1) != 0) << p;
    EXPECT_EQ(out.get(1), total >= 2) << p;
  }
}

TEST(Instantiate, ChainedCopiesFormRippleAdder) {
  // 3-bit ripple-carry adder from three instantiations.
  Circuit fa = make_full_adder();
  Circuit top;
  std::vector<NodeId> a_in, b_in;
  for (int i = 0; i < 3; ++i) a_in.push_back(top.add_input());
  for (int i = 0; i < 3; ++i) b_in.push_back(top.add_input());
  NodeId carry = top.const_zero();
  std::vector<NodeId> sums;
  for (int i = 0; i < 3; ++i) {
    std::vector<NodeId> bind{a_in[i], b_in[i], carry};
    auto outs = top.instantiate(fa, bind);
    sums.push_back(outs[0]);
    carry = outs[1];
  }
  for (NodeId s : sums) top.mark_output(s);
  top.mark_output(carry);
  Evaluator eval(top);
  for (unsigned a = 0; a < 8; ++a) {
    for (unsigned b = 0; b < 8; ++b) {
      BitVec in(6);
      for (int i = 0; i < 3; ++i) {
        in.set(i, (a >> i) & 1u);
        in.set(3 + i, (b >> i) & 1u);
      }
      BitVec out = eval.evaluate(in);
      unsigned got = 0;
      for (int i = 0; i < 4; ++i) got |= (out.get(i) ? 1u : 0u) << i;
      EXPECT_EQ(got, a + b) << a << "+" << b;
    }
  }
}

TEST(Instantiate, BindingArityChecked) {
  Circuit fa = make_full_adder();
  Circuit top;
  NodeId x = top.add_input();
  std::vector<NodeId> too_few{x};
  EXPECT_THROW(top.instantiate(fa, too_few), pcs::ContractViolation);
  std::vector<NodeId> bad_id{x, x, 999};
  EXPECT_THROW(top.instantiate(fa, bad_id), pcs::ContractViolation);
}

TEST(Instantiate, ConstantsAreShared) {
  Circuit sub;
  sub.mark_output(sub.const_one());
  Circuit top;
  std::vector<NodeId> empty;
  auto o1 = top.instantiate(sub, empty);
  auto o2 = top.instantiate(sub, empty);
  EXPECT_EQ(o1[0], o2[0]);  // both map to top's shared const-one node
}

TEST(Instantiate, SubOutputsNotAutomaticallyExposed) {
  Circuit sub;
  NodeId i = sub.add_input();
  sub.mark_output(sub.add_not(i));
  Circuit top;
  NodeId x = top.add_input();
  std::vector<NodeId> bind{x};
  top.instantiate(sub, bind);
  EXPECT_EQ(top.output_count(), 0u);
}

TEST(Instantiate, DepthComposes) {
  // Chaining k copies of a depth-d block yields depth k*d.
  Circuit sub;
  NodeId i = sub.add_input();
  sub.mark_output(sub.add_not(sub.add_not(i)));  // depth 2
  Circuit top;
  NodeId x = top.add_input();
  NodeId cur = x;
  for (int k = 0; k < 5; ++k) {
    std::vector<NodeId> bind{cur};
    cur = top.instantiate(sub, bind)[0];
  }
  top.mark_output(cur);
  EXPECT_EQ(top.depth(), 10u);
}

}  // namespace
}  // namespace pcs::gates
