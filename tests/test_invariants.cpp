// Tests for the invariant-checker library (core/invariants.hpp) itself:
// clean switches pass every check, and deliberately corrupted routings /
// arrangements are caught with messages that name the offending values.
// The differential fuzzer trusts these checkers; this file is what makes
// that trust earned.
#include "core/invariants.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "switch/columnsort_switch.hpp"
#include "plan/compile.hpp"
#include "plan/plan_switch.hpp"
#include "switch/full_sort_hyper.hpp"
#include "switch/hyper_switch.hpp"
#include "switch/multipass_switch.hpp"
#include "switch/revsort_switch.hpp"
#include "util/rng.hpp"

namespace pcs::core {
namespace {

TEST(Invariants, CleanSwitchesPassEveryCheck) {
  const sw::RevsortSwitch rev(64, 48);
  const sw::ColumnsortSwitch col(16, 4, 40);
  const sw::HyperSwitch hyper(64, 64);
  const sw::FullRevsortHyper full(64);
  const sw::MultipassColumnsortSwitch multi(16, 4, 2, 48,
                                            sw::ReshapeSchedule::kAlternating);
  const sw::ConcentratorSwitch* switches[] = {&rev, &col, &hyper, &full, &multi};
  Rng rng(1000);
  InvariantReport report;
  for (const sw::ConcentratorSwitch* s : switches) {
    for (int t = 0; t < 8; ++t) {
      EXPECT_TRUE(check_pattern(*s, rng.bernoulli_bits(s->inputs(), 0.4), report))
          << report.to_string();
    }
  }
  EXPECT_TRUE(report.ok());
  EXPECT_GT(report.checks_run, 0u);
  EXPECT_NE(report.to_string().find("passed"), std::string::npos);
}

TEST(Invariants, DescribePatternNamesSizeCountAndBits) {
  BitVec v(8);
  v.set(0, true);
  v.set(5, true);
  const std::string s = describe_pattern(v);
  EXPECT_NE(s.find("n=8"), std::string::npos);
  EXPECT_NE(s.find("k=2"), std::string::npos);
  EXPECT_NE(s.find("10000100"), std::string::npos);
}

TEST(Invariants, DescribePatternTruncatesLongPatterns) {
  const std::string s = describe_pattern(BitVec::prefix_ones(200, 200));
  EXPECT_NE(s.find("n=200"), std::string::npos);
  EXPECT_NE(s.find("(104 more)"), std::string::npos);
}

TEST(Invariants, PartialInjectionCatchesWrongSizes) {
  const sw::RevsortSwitch sw(16, 16);
  const BitVec valid = BitVec::prefix_ones(16, 5);
  sw::SwitchRouting routing = sw.route(valid);
  routing.input_of_output.pop_back();
  InvariantReport report;
  EXPECT_FALSE(check_partial_injection(sw, valid, routing, report));
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_EQ(report.violations[0].invariant, "partial-injection");
  EXPECT_NE(report.violations[0].detail.find("16x15"), std::string::npos);
}

TEST(Invariants, PartialInjectionCatchesInvalidSource) {
  const sw::RevsortSwitch sw(16, 16);
  const BitVec valid = BitVec::prefix_ones(16, 5);
  sw::SwitchRouting routing = sw.route(valid);
  // Re-point an occupied output at an input whose valid bit is 0.
  for (std::size_t j = 0; j < routing.input_of_output.size(); ++j) {
    if (routing.input_of_output[j] < 0) continue;
    const std::int32_t old = routing.input_of_output[j];
    routing.input_of_output[j] = 10;  // valid.get(10) == false
    routing.output_of_input[10] = static_cast<std::int32_t>(j);
    routing.output_of_input[old] = -1;
    break;
  }
  InvariantReport report;
  EXPECT_FALSE(check_partial_injection(sw, valid, routing, report));
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.violations[0].detail.find("input 10"), std::string::npos);
}

TEST(Invariants, ConcentrationCatchesDroppedMessage) {
  const sw::HyperSwitch sw(32, 32);
  const BitVec valid = BitVec::prefix_ones(32, 9);
  sw::SwitchRouting routing = sw.route(valid);
  // Vacate one occupied output: k <= capacity now routes only k - 1.
  const std::int32_t src = routing.input_of_output[3];
  ASSERT_GE(src, 0);
  routing.input_of_output[3] = -1;
  routing.output_of_input[src] = -1;
  InvariantReport report;
  EXPECT_FALSE(check_concentration(sw, valid, routing, report));
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.violations[0].invariant, "concentration");
  EXPECT_NE(report.violations[0].detail.find("k=9"), std::string::npos);
}

TEST(Invariants, ConcentrationCatchesPrefixHole) {
  // epsilon_bound() == 0 switches must fill exactly the first min(k, m)
  // outputs; moving a message past the prefix is a hole plus an overflow.
  const sw::HyperSwitch sw(32, 32);
  const BitVec valid = BitVec::prefix_ones(32, 9);
  sw::SwitchRouting routing = sw.route(valid);
  const std::int32_t src = routing.input_of_output[2];
  ASSERT_GE(src, 0);
  routing.input_of_output[2] = -1;
  routing.input_of_output[20] = src;
  routing.output_of_input[src] = 20;
  InvariantReport report;
  EXPECT_FALSE(check_concentration(sw, valid, routing, report));
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.violations[0].detail.find("prefix"), std::string::npos);
}

TEST(Invariants, EpsilonBoundCatchesCountMismatch) {
  const sw::RevsortSwitch sw(16, 16);
  const BitVec valid = BitVec::prefix_ones(16, 6);
  InvariantReport report;
  EXPECT_FALSE(check_epsilon_bound(sw, valid, BitVec::prefix_ones(16, 5), report));
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.violations[0].invariant, "epsilon-bound");
  EXPECT_NE(report.violations[0].detail.find("5 ones"), std::string::npos);
}

TEST(Invariants, EpsilonBoundCatchesExcessEpsilon) {
  const sw::ColumnsortSwitch sw(16, 4, 64);  // advertised epsilon: (s-1)^2 = 9
  BitVec suffix(64);
  for (std::size_t i = 32; i < 64; ++i) suffix.set(i, true);
  BitVec valid(64);
  for (std::size_t i = 0; i < 32; ++i) valid.set(i, true);
  InvariantReport report;
  // A suffix-ones "arrangement" has maximal displacement -- far beyond any
  // advertised bound.
  EXPECT_FALSE(check_epsilon_bound(sw, valid, suffix, report));
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.violations[0].detail.find("exceeds advertised bound"),
            std::string::npos);
}

TEST(Invariants, EpsilonBoundSkipsUnboundedSwitches) {
  // Faulty switches advertise epsilon_bound() == n: any arrangement with the
  // right count passes (there is no guarantee to violate).
  plan::SwitchPlan p = plan::compile_revsort_plan(64, 64);
  plan::apply_chip_faults(p, {plan::ChipFault{1, 2}});
  const plan::PlanSwitch sw(std::move(p));
  BitVec arrangement(64);
  for (std::size_t i = 40; i < 50; ++i) arrangement.set(i, true);
  BitVec valid = BitVec::prefix_ones(64, 10);
  InvariantReport report;
  EXPECT_TRUE(check_epsilon_bound(sw, valid, arrangement, report));
}

TEST(Invariants, EpsilonBoundToleratesFaultLossButNoMore) {
  // Messages swallowed by dead chips never reach the arrangement; the
  // conservation clause must allow up to max_fault_loss() missing ones
  // (this is the runtime's per-epoch check on a `faults=` config) while
  // still rejecting losses the faults cannot explain.
  plan::SwitchPlan p = plan::compile_revsort_plan(64, 64);
  plan::apply_chip_faults(p, {plan::ChipFault{0, 3}});
  const plan::PlanSwitch sw(std::move(p));
  const BitVec valid = BitVec::prefix_ones(64, 20);
  {
    InvariantReport report;
    EXPECT_TRUE(check_epsilon_bound(
        sw, valid, sw.nearsorted_valid_bits(valid), report));
    EXPECT_TRUE(report.ok());
  }
  {
    // Losing more than max_fault_loss() is still a violation.
    InvariantReport report;
    const BitVec starved =
        BitVec::prefix_ones(64, 20 - sw.max_fault_loss() - 1);
    EXPECT_FALSE(check_epsilon_bound(sw, valid, starved, report));
    ASSERT_FALSE(report.ok());
    EXPECT_NE(report.violations[0].detail.find("max_fault_loss"),
              std::string::npos);
  }
  {
    // Creating messages is never allowed, faults or not.
    InvariantReport report;
    EXPECT_FALSE(
        check_epsilon_bound(sw, valid, BitVec::prefix_ones(64, 21), report));
  }
}

TEST(Invariants, BatchIdentityPassesAcrossLaneBoundaries) {
  const sw::ColumnsortSwitch sw(16, 4, 48);
  Rng rng(1001);
  for (std::size_t b : {1u, 63u, 64u, 65u}) {
    std::vector<BitVec> valids;
    for (std::size_t i = 0; i < b; ++i) {
      valids.push_back(rng.bernoulli_bits(64, 0.5));
    }
    InvariantReport report;
    EXPECT_TRUE(check_batch_identity(sw, valids, report))
        << "batch=" << b << ": " << report.to_string();
  }
}

TEST(Invariants, FaultLossPassesRealFaultySwitch) {
  const std::size_t n = 64;
  plan::SwitchPlan p = plan::compile_revsort_plan(n, 48);
  plan::apply_chip_faults(p, {plan::ChipFault{0, 1}, plan::ChipFault{2, 3}});
  const plan::PlanSwitch faulty(std::move(p));
  const sw::RevsortSwitch healthy(n, 48);
  Rng rng(1002);
  InvariantReport report;
  for (int t = 0; t < 16; ++t) {
    const BitVec valid = rng.bernoulli_bits(n, rng.uniform01());
    const sw::SwitchRouting routing = faulty.route(valid);
    const std::size_t baseline = healthy.route(valid).routed_count();
    EXPECT_TRUE(check_fault_loss(faulty, valid, routing, baseline,
                                 faulty.max_fault_loss(), report))
        << report.to_string();
  }
}

TEST(Invariants, FaultLossCatchesExcessLoss) {
  plan::SwitchPlan p = plan::compile_revsort_plan(64, 64);
  plan::apply_chip_faults(p, {plan::ChipFault{1, 2}});
  const plan::PlanSwitch faulty(std::move(p));
  const BitVec valid = BitVec::prefix_ones(64, 64);
  const sw::SwitchRouting routing = faulty.route(valid);
  InvariantReport report;
  // Demand an impossible baseline: more than routed + allowed loss.
  const std::size_t baseline = routing.routed_count() + faulty.max_fault_loss() + 1;
  EXPECT_FALSE(check_fault_loss(faulty, valid, routing, baseline,
                                faulty.max_fault_loss(), report));
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.violations[0].invariant, "fault-loss");
  EXPECT_NE(report.violations[0].detail.find("max_fault_loss="), std::string::npos);
}

TEST(Invariants, ReportAccumulatesAndFormats) {
  InvariantReport report;
  EXPECT_TRUE(report.ok());
  report.add("demo-invariant", "first detail");
  report.add("demo-invariant", "second detail");
  report.checks_run = 7;
  EXPECT_FALSE(report.ok());
  const std::string s = report.to_string();
  EXPECT_NE(s.find("2 violation(s) in 7 checks"), std::string::npos);
  EXPECT_NE(s.find("[demo-invariant] first detail"), std::string::npos);
  EXPECT_NE(s.find("second detail"), std::string::npos);
}

}  // namespace
}  // namespace pcs::core
