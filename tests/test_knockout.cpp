#include "network/knockout.hpp"

#include <gtest/gtest.h>

#include "switch/hyper_switch.hpp"
#include "switch/revsort_switch.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace pcs::net {
namespace {

std::function<std::unique_ptr<pcs::sw::ConcentratorSwitch>(std::size_t, std::size_t)>
hyper_ports() {
  return [](std::size_t n, std::size_t m) {
    return std::make_unique<pcs::sw::HyperSwitch>(n, m);
  };
}

TEST(Knockout, ShapeValidation) {
  EXPECT_THROW(KnockoutSwitch(0, 1, hyper_ports()), pcs::ContractViolation);
  EXPECT_THROW(KnockoutSwitch(8, 9, hyper_ports()), pcs::ContractViolation);
  auto bad = [](std::size_t, std::size_t) {
    return std::make_unique<pcs::sw::HyperSwitch>(4, 2);
  };
  EXPECT_THROW(KnockoutSwitch(8, 2, bad), pcs::ContractViolation);
}

TEST(Knockout, SlotAccountingWithPerfectPorts) {
  KnockoutSwitch sw(8, 2, hyper_ports());
  // Inputs 0..4 all address port 3; inputs 5,6 address port 0; 7 idle.
  std::vector<std::int32_t> dests = {3, 3, 3, 3, 3, 0, 0, -1};
  auto r = sw.route_slot(dests);
  EXPECT_EQ(r.offered, 7u);
  EXPECT_EQ(r.accepted, 2u + 2u);    // min(5,2) at port 3, min(2,2) at port 0
  EXPECT_EQ(r.knocked_out, 3u);
}

TEST(Knockout, NoTrafficNoLoss) {
  KnockoutSwitch sw(8, 2, hyper_ports());
  std::vector<std::int32_t> idle(8, -1);
  auto r = sw.route_slot(idle);
  EXPECT_EQ(r.offered, 0u);
  EXPECT_EQ(r.accepted, 0u);
  Rng rng(350);
  auto stats = sw.simulate_uniform(0.0, 50, rng);
  EXPECT_DOUBLE_EQ(stats.loss_rate(), 0.0);
}

TEST(Knockout, LossFallsSteeplyWithAcceptLines) {
  // The knockout principle: raising L slashes the loss rate.
  Rng rng(351);
  const std::size_t n = 16;
  double prev_loss = 1.0;
  for (std::size_t accept : {1u, 2u, 4u, 8u}) {
    KnockoutSwitch sw(n, accept, hyper_ports());
    Rng local(351);
    auto stats = sw.simulate_uniform(0.9, 400, local);
    EXPECT_LE(stats.loss_rate(), prev_loss + 1e-12) << "L=" << accept;
    prev_loss = stats.loss_rate();
  }
  EXPECT_LT(prev_loss, 0.02);  // L = 8 of 16 at load .9: tiny loss
  (void)rng;
}

TEST(Knockout, SimulationTracksBinomialPrediction) {
  const std::size_t n = 32;
  for (std::size_t accept : {2u, 4u}) {
    KnockoutSwitch sw(n, accept, hyper_ports());
    Rng rng(352 + accept);
    auto stats = sw.simulate_uniform(0.8, 3000, rng);
    double predicted = KnockoutSwitch::predicted_loss(n, accept, 0.8);
    EXPECT_NEAR(stats.loss_rate(), predicted, predicted * 0.25 + 0.002)
        << "L=" << accept;
  }
}

TEST(Knockout, PredictedLossSanity) {
  EXPECT_DOUBLE_EQ(KnockoutSwitch::predicted_loss(16, 16, 0.9), 0.0);
  EXPECT_DOUBLE_EQ(KnockoutSwitch::predicted_loss(16, 4, 0.0), 0.0);
  double l1 = KnockoutSwitch::predicted_loss(64, 4, 0.9);
  double l2 = KnockoutSwitch::predicted_loss(64, 8, 0.9);
  EXPECT_GT(l1, l2);
  EXPECT_LT(l2, 1e-4);  // the famous steep tail
}

TEST(Knockout, RevsortPortsAddOnlyEpsilonLoss) {
  // Ports built from the paper's multichip partial concentrator: beyond the
  // binomial knockout, the only extra loss can come from epsilon -- and at
  // these arrival counts (far below capacity) there should be none.
  const std::size_t n = 64;
  auto revsort_ports = [](std::size_t ports, std::size_t accept) {
    return std::make_unique<pcs::sw::RevsortSwitch>(ports, accept);
  };
  KnockoutSwitch partial(n, 24, revsort_ports);  // capacity 24 - ... epsilon 40?
  KnockoutSwitch perfect(n, 24, hyper_ports());
  Rng ra(353), rb(353);
  auto sa = partial.simulate_uniform(0.9, 300, ra);
  auto sb = perfect.simulate_uniform(0.9, 300, rb);
  // Same arrival pattern: the partial-concentrator fabric may lose a little
  // more, but must stay within a small margin at this load.
  EXPECT_GE(sa.accepted + sa.offered / 50 + 1, sb.accepted);
}

}  // namespace
}  // namespace pcs::net
