#include "switch/label_mesh.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "sortnet/columnsort.hpp"
#include "sortnet/mesh_ops.hpp"
#include "util/rng.hpp"

namespace pcs::sw {
namespace {

// The central consistency property: operating on labels and projecting to
// valid bits must equal operating on the valid bits with pcs::sortnet.
// This is what lets the BitMatrix theory transfer to message routing.

LabelMesh random_mesh(std::size_t rows, std::size_t cols, double p, Rng& rng,
                      BitMatrix* bits_out) {
  BitVec valid = rng.bernoulli_bits(rows * cols, p);
  LabelMesh mesh = LabelMesh::from_row_major_valid(valid, rows, cols);
  if (bits_out) *bits_out = BitMatrix::from_row_major(valid, rows, cols);
  return mesh;
}

TEST(LabelMesh, FromRowMajorPlacesLabels) {
  BitVec valid = BitVec::from_string("100101");
  LabelMesh m = LabelMesh::from_row_major_valid(valid, 2, 3);
  EXPECT_EQ(m.get(0, 0), 0);
  EXPECT_EQ(m.get(0, 1), kIdle);
  EXPECT_EQ(m.get(1, 0), 3);
  EXPECT_EQ(m.get(1, 2), 5);
}

TEST(LabelMesh, FromColMajorPlacesLabels) {
  BitVec valid = BitVec::from_string("100101");
  LabelMesh m = LabelMesh::from_col_major_valid(valid, 2, 3);
  // Input x sits at (x % 2, x / 2): 0 -> (0,0), 3 -> (1,1), 5 -> (1,2).
  EXPECT_EQ(m.get(0, 0), 0);
  EXPECT_EQ(m.get(1, 1), 3);
  EXPECT_EQ(m.get(1, 2), 5);
  EXPECT_EQ(m.get(0, 1), kIdle);
}

TEST(LabelMesh, ConcentrateColumnsMatchesSortnet) {
  Rng rng(120);
  for (int trial = 0; trial < 30; ++trial) {
    BitMatrix bits;
    LabelMesh mesh = random_mesh(8, 8, rng.uniform01(), rng, &bits);
    mesh.concentrate_columns();
    sortnet::sort_columns(bits);
    EXPECT_EQ(mesh.valid_bits(), bits) << "trial " << trial;
  }
}

TEST(LabelMesh, ConcentrateRowsMatchesSortnet) {
  Rng rng(121);
  for (int trial = 0; trial < 30; ++trial) {
    BitMatrix bits;
    LabelMesh mesh = random_mesh(8, 8, rng.uniform01(), rng, &bits);
    mesh.concentrate_rows();
    sortnet::sort_rows(bits, sortnet::RowOrder::kOnesFirst);
    EXPECT_EQ(mesh.valid_bits(), bits);
  }
}

TEST(LabelMesh, ConcentrateRowsAlternatingMatchesSortnet) {
  Rng rng(122);
  for (int trial = 0; trial < 30; ++trial) {
    BitMatrix bits;
    LabelMesh mesh = random_mesh(8, 8, rng.uniform01(), rng, &bits);
    mesh.concentrate_rows_alternating();
    sortnet::sort_rows_alternating(bits);
    EXPECT_EQ(mesh.valid_bits(), bits);
  }
}

TEST(LabelMesh, RotateMatchesSortnet) {
  Rng rng(123);
  for (int trial = 0; trial < 20; ++trial) {
    BitMatrix bits;
    LabelMesh mesh = random_mesh(8, 8, 0.5, rng, &bits);
    mesh.rotate_rows_bit_reversed();
    sortnet::rotate_rows_bit_reversed(bits);
    EXPECT_EQ(mesh.valid_bits(), bits);
  }
}

TEST(LabelMesh, ReshapesMatchSortnet) {
  Rng rng(124);
  for (int trial = 0; trial < 20; ++trial) {
    BitMatrix bits;
    LabelMesh mesh = random_mesh(8, 4, 0.5, rng, &bits);
    mesh.cm_to_rm_reshape();
    bits = sortnet::cm_to_rm_reshape(bits);
    EXPECT_EQ(mesh.valid_bits(), bits);
    mesh.rm_to_cm_reshape();
    bits = sortnet::rm_to_cm_reshape(bits);
    EXPECT_EQ(mesh.valid_bits(), bits);
  }
}

TEST(LabelMesh, ShiftConcentrateUnshiftMatchesSortnet) {
  Rng rng(125);
  for (int trial = 0; trial < 20; ++trial) {
    BitMatrix bits;
    LabelMesh mesh = random_mesh(16, 4, rng.uniform01(), rng, &bits);
    mesh.shift_concentrate_unshift();
    sortnet::columnsort_shift_sort_unshift(bits);
    EXPECT_EQ(mesh.valid_bits(), bits) << "trial " << trial;
  }
}

TEST(LabelMesh, ConcentrationIsStable) {
  LabelMesh m(4, 1);
  m.set(1, 0, 7);
  m.set(3, 0, 2);
  m.concentrate_columns();
  EXPECT_EQ(m.get(0, 0), 7);  // earlier slot keeps priority
  EXPECT_EQ(m.get(1, 0), 2);
  EXPECT_EQ(m.get(2, 0), kIdle);
}

TEST(LabelMesh, LabelsArePreservedNotDuplicated) {
  Rng rng(126);
  BitMatrix bits;
  LabelMesh mesh = random_mesh(8, 8, 0.5, rng, &bits);
  auto count_labels = [](const LabelMesh& m) {
    std::vector<std::int32_t> seen;
    for (std::int32_t v : m.to_row_major()) {
      if (v >= 0) seen.push_back(v);
    }
    std::sort(seen.begin(), seen.end());
    return seen;
  };
  auto before = count_labels(mesh);
  mesh.concentrate_columns();
  mesh.concentrate_rows();
  mesh.rotate_rows_bit_reversed();
  mesh.concentrate_columns();
  mesh.cm_to_rm_reshape();
  mesh.rm_to_cm_reshape();
  mesh.shift_concentrate_unshift();
  EXPECT_EQ(count_labels(mesh), before);
}

}  // namespace
}  // namespace pcs::sw
