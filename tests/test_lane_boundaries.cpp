// Batch/sequential equivalence exactly at the 64-lane word boundaries.
//
// The batch engine packs 64 patterns per LaneBatch word; sizes 63, 64, 65
// exercise a partial final word, an exact word, and a one-lane spill into a
// second word, while 1 and 128 cover the degenerate and two-full-word cases.
// Every switch family is swept at every size, including the m = 1 and m = n
// output edges, and cross-checked bit-for-bit against the scalar path
// through the shared invariant library.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/invariants.hpp"
#include "switch/columnsort_switch.hpp"
#include "switch/full_sort_hyper.hpp"
#include "switch/hyper_switch.hpp"
#include "switch/multipass_switch.hpp"
#include "switch/revsort_switch.hpp"
#include "util/bitvec.hpp"
#include "util/rng.hpp"

namespace pcs {
namespace {

constexpr std::size_t kBatchSizes[] = {1, 63, 64, 65, 128};

/// A mix of structured and random patterns: empty, full, single-bit, prefix,
/// suffix, then Bernoulli at varied densities.
std::vector<BitVec> make_batch(std::size_t n, std::size_t count, Rng& rng) {
  std::vector<BitVec> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    switch (i % 6) {
      case 0: out.emplace_back(n); break;
      case 1: out.push_back(BitVec::prefix_ones(n, n)); break;
      case 2: {
        BitVec v(n);
        v.set(rng.below(n), true);
        out.push_back(std::move(v));
        break;
      }
      case 3: out.push_back(BitVec::prefix_ones(n, rng.below(n + 1))); break;
      case 4: {
        BitVec v(n);
        const std::size_t k = rng.below(n + 1);
        for (std::size_t j = n - k; j < n; ++j) v.set(j, true);
        out.push_back(std::move(v));
        break;
      }
      default: out.push_back(rng.bernoulli_bits(n, rng.uniform01())); break;
    }
  }
  return out;
}

void sweep(const sw::ConcentratorSwitch& sw, std::uint64_t seed) {
  Rng rng(seed);
  for (std::size_t batch : kBatchSizes) {
    core::InvariantReport report;
    const std::vector<BitVec> valids = make_batch(sw.inputs(), batch, rng);
    EXPECT_TRUE(core::check_batch_identity(sw, valids, report))
        << sw.name() << " batch=" << batch << ": " << report.to_string();
  }
}

TEST(LaneBoundaries, HyperSwitch) {
  sweep(sw::HyperSwitch(64, 48), 900);
  sweep(sw::HyperSwitch(64, 1), 901);   // m = 1 edge
  sweep(sw::HyperSwitch(64, 64), 902);  // m = n edge
  sweep(sw::HyperSwitch(100, 37), 903);  // non-power-of-two n
}

TEST(LaneBoundaries, RevsortSwitch) {
  sweep(sw::RevsortSwitch(64, 48), 910);
  sweep(sw::RevsortSwitch(64, 1), 911);
  sweep(sw::RevsortSwitch(64, 64), 912);
  sweep(sw::RevsortSwitch(256, 200), 913);
}

TEST(LaneBoundaries, ColumnsortSwitch) {
  sweep(sw::ColumnsortSwitch(16, 4, 48), 920);
  sweep(sw::ColumnsortSwitch(16, 4, 1), 921);
  sweep(sw::ColumnsortSwitch(16, 4, 64), 922);
  sweep(sw::ColumnsortSwitch(8, 2, 11), 923);
}

TEST(LaneBoundaries, FullSortHyper) {
  sweep(sw::FullRevsortHyper(64), 930);      // m = n by construction
  sweep(sw::FullColumnsortHyper(8, 2), 931);
}

TEST(LaneBoundaries, MultipassColumnsort) {
  sweep(sw::MultipassColumnsortSwitch(16, 4, 2, 48, sw::ReshapeSchedule::kSame),
        940);
  sweep(sw::MultipassColumnsortSwitch(16, 4, 2, 1,
                                      sw::ReshapeSchedule::kAlternating),
        941);
  sweep(sw::MultipassColumnsortSwitch(16, 4, 3, 64,
                                      sw::ReshapeSchedule::kAlternating),
        942);
}

TEST(LaneBoundaries, TrivialOneInputSwitch) {
  // n = 1 collapses every lane-boundary case to single bits; still must agree.
  sweep(sw::RevsortSwitch(1, 1), 950);
  sweep(sw::HyperSwitch(1, 1), 951);
}

}  // namespace
}  // namespace pcs
