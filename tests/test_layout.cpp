#include "cost/layout.hpp"

#include "cost/resource_model.hpp"
#include "sortnet/revsort.hpp"

#include <gtest/gtest.h>

namespace pcs::cost {
namespace {

TEST(Layout, RevsortFloorplanArea) {
  // Figure 3 at side = 8 (n = 64): three chip columns of 8 chips plus two
  // 64-wire crossbars; width = 3*8 + 2*64, height = 64.
  Floorplan2D plan = revsort_floorplan(8);
  EXPECT_EQ(plan.height, 64u);
  EXPECT_EQ(plan.width, 3u * 8u + 2u * 64u);
  EXPECT_EQ(plan.wiring_area(), 2u * 64u * 64u);
  EXPECT_EQ(plan.chip_area(), 3u * 8u * 64u);
  EXPECT_EQ(plan.regions.size(), 3u * 8u + 2u);
}

TEST(Layout, RevsortWiringDominatesChips) {
  // The Theta(n^2) claim: crossbar wiring dominates total chip area.
  for (std::size_t side : {8u, 16u, 32u, 64u}) {
    Floorplan2D plan = revsort_floorplan(side);
    EXPECT_GT(plan.wiring_area(), plan.chip_area()) << "side " << side;
  }
}

TEST(Layout, ColumnsortFloorplan) {
  // Figure 6 at r = 8, s = 4 (n = 32).
  Floorplan2D plan = columnsort_floorplan(8, 4);
  EXPECT_EQ(plan.height, 32u);
  EXPECT_EQ(plan.width, 2u * 8u + 32u);
  EXPECT_EQ(plan.wiring_area(), 32u * 32u);
  EXPECT_EQ(plan.regions.size(), 2u * 4u + 1u);
}

TEST(Layout, RevsortPackagingVolumeIdentity) {
  // Figure 4: total volume = 4 * side * n = 4 n^{3/2}.
  for (std::size_t side : {8u, 16u, 64u}) {
    Packaging3D p = revsort_packaging(side);
    EXPECT_EQ(p.total_volume(), 4u * side * side * side);
    EXPECT_EQ(p.stacks.size(), 3u);
    EXPECT_EQ(p.stacks[0].boards, side);
    EXPECT_EQ(p.stacks[1].board_width, 2u * side);  // hyper + shifter
    EXPECT_EQ(p.connector_count, 0u);
  }
}

TEST(Layout, ColumnsortPackaging) {
  // Figure 7 at r = 8, s = 4: two stacks of 4 boards of area 64, plus 16
  // transposers of volume (8/4)^2 = 4 each (Figure 8).
  Packaging3D p = columnsort_packaging(8, 4);
  EXPECT_EQ(p.stacks.size(), 2u);
  EXPECT_EQ(p.stack_volume(), 2u * 4u * 64u);
  EXPECT_EQ(p.connector_count, 16u);
  EXPECT_EQ(p.connector_volume_each, 4u);
  EXPECT_EQ(p.total_volume(), 512u + 64u);
}

TEST(Layout, ConnectorVolumeSubdominant) {
  // Total interstack volume O(r^2) = O(n^{2 beta}) <= O(n^{1+beta}).
  for (auto [r, s] : {std::pair<std::size_t, std::size_t>{64, 8},
                      std::pair<std::size_t, std::size_t>{256, 16}}) {
    Packaging3D p = columnsort_packaging(r, s);
    EXPECT_LE(p.connector_volume(), p.stack_volume()) << r << "x" << s;
  }
}

TEST(Layout, WireTransposerQuadratic) {
  EXPECT_EQ(wire_transposer_volume(4), 16u);  // Figure 8's w = 4 example
  EXPECT_EQ(wire_transposer_volume(1), 1u);
  EXPECT_EQ(wire_transposer_volume(16), 256u);
}

TEST(Layout, FloorplanRegionsDisjointAndInBounds) {
  for (auto plan : {revsort_floorplan(8), columnsort_floorplan(16, 4)}) {
    for (std::size_t a = 0; a < plan.regions.size(); ++a) {
      const Region& ra = plan.regions[a];
      EXPECT_LE(ra.x + ra.width, plan.width) << ra.label;
      EXPECT_LE(ra.y + ra.height, plan.height) << ra.label;
      for (std::size_t b = a + 1; b < plan.regions.size(); ++b) {
        const Region& rb = plan.regions[b];
        bool overlap_x = ra.x < rb.x + rb.width && rb.x < ra.x + ra.width;
        bool overlap_y = ra.y < rb.y + rb.height && rb.y < ra.y + ra.height;
        EXPECT_FALSE(overlap_x && overlap_y) << ra.label << " vs " << rb.label;
      }
    }
  }
}

TEST(Layout, FloorplanMatchesResourceModelOrder) {
  // The floorplan's area and the resource model's area_2d agree on the
  // dominant term (2 n^2 wiring for Revsort).
  Floorplan2D plan = revsort_floorplan(32);  // n = 1024
  EXPECT_EQ(plan.wiring_area(), 2u * 1024u * 1024u);
}


TEST(Layout, FullRevsortPackagingMatchesReport) {
  // Stack count = chip passes; volume matches the resource model exactly.
  for (std::size_t side : {16u, 64u}) {
    Packaging3D p = full_revsort_packaging(side);
    ResourceReport r = full_revsort_report(side * side);
    EXPECT_EQ(p.stacks.size(), r.chip_passes);
    EXPECT_EQ(p.total_volume(), r.volume_3d);
    // Repetition row-sort stacks carry double-width boards (shifters).
    std::size_t wide = 0;
    for (const Stack& st : p.stacks) {
      if (st.board_width == 2 * side) ++wide;
    }
    EXPECT_EQ(wide, pcs::sortnet::full_revsort_repetitions(side));
  }
}

}  // namespace
}  // namespace pcs::cost
