#include "core/lemmas.hpp"

#include <gtest/gtest.h>

#include "sortnet/nearsort.hpp"
#include "switch/columnsort_switch.hpp"
#include "switch/hyper_switch.hpp"
#include "switch/revsort_switch.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace pcs::core {
namespace {

TEST(Lemma1, RoundtripOnRandomSequences) {
  Rng rng(240);
  for (int trial = 0; trial < 300; ++trial) {
    std::size_t n = 1 + rng.below(128);
    BitVec v = rng.bernoulli_bits(n, rng.uniform01());
    EXPECT_TRUE(lemma1_roundtrip(v)) << v.to_string();
  }
}

TEST(Lemma1, RoundtripOnStructuredSequences) {
  EXPECT_TRUE(lemma1_roundtrip(BitVec::from_string("111000")));
  EXPECT_TRUE(lemma1_roundtrip(BitVec::from_string("000111")));
  EXPECT_TRUE(lemma1_roundtrip(BitVec::from_string("101010")));
  EXPECT_TRUE(lemma1_roundtrip(BitVec(17, true)));
  EXPECT_TRUE(lemma1_roundtrip(BitVec(17)));
  EXPECT_TRUE(lemma1_roundtrip(BitVec()));
}

TEST(Lemma2, HoldsForMultichipSwitches) {
  Rng rng(241);
  pcs::sw::RevsortSwitch rev(256, 192);
  pcs::sw::ColumnsortSwitch col(64, 4, 192);
  for (const pcs::sw::ConcentratorSwitch* sw :
       std::initializer_list<const pcs::sw::ConcentratorSwitch*>{&rev, &col}) {
    for (int trial = 0; trial < 60; ++trial) {
      BitVec valid = rng.bernoulli_bits(256, rng.uniform01());
      Lemma2Check check = check_lemma2(*sw, valid);
      EXPECT_TRUE(check.holds) << sw->name() << ": " << check.detail;
    }
  }
}

TEST(Lemma2, HyperconcentratorHasZeroEpsilon) {
  pcs::sw::HyperSwitch sw(32, 16);
  Rng rng(242);
  for (int trial = 0; trial < 20; ++trial) {
    BitVec valid = rng.bernoulli_bits(32, 0.5);
    Lemma2Check check = check_lemma2(sw, valid);
    EXPECT_EQ(check.measured_epsilon, 0u);
    EXPECT_TRUE(check.holds);
  }
}

TEST(Figure2, ArrangementNotNearsortedUnderPremise) {
  // n = 64, m = 32, epsilon = 4, k = 30 > m - epsilon = 28;
  // premise: k + eps = 34 < (n + m)/2 = 48.
  ASSERT_TRUE(figure2_premise(64, 32, 4, 30));
  BitVec arrangement = figure2_arrangement(64, 32, 4, 30);
  EXPECT_EQ(arrangement.count(), 30u);
  EXPECT_FALSE(sortnet::is_nearsorted(arrangement, 4));
  // Yet it is a legal partial-concentrator output: m - epsilon = 28 of the
  // first m = 32 positions carry messages.
  std::size_t in_first_m = 0;
  for (std::size_t i = 0; i < 32; ++i) in_first_m += arrangement.get(i);
  EXPECT_GE(in_first_m, 28u);
}

TEST(Figure2, PremiseBoundary) {
  // When k + epsilon >= (n + m)/2 the construction can be nearsorted;
  // premise() must say so.
  EXPECT_FALSE(figure2_premise(64, 32, 4, 44));  // 48 !< 48
  EXPECT_TRUE(figure2_premise(64, 32, 4, 43));
}

TEST(Figure2, ConstructorValidation) {
  EXPECT_THROW(figure2_arrangement(64, 32, 4, 28), pcs::ContractViolation);  // k too small
  EXPECT_THROW(figure2_arrangement(64, 32, 33, 40), pcs::ContractViolation);  // eps > m
}

TEST(EpsilonBound, RespectedBySwitches) {
  Rng rng(243);
  pcs::sw::RevsortSwitch rev(64, 64);
  pcs::sw::ColumnsortSwitch col(16, 4, 64);
  for (int trial = 0; trial < 40; ++trial) {
    BitVec valid = rng.bernoulli_bits(64, rng.uniform01());
    EXPECT_TRUE(epsilon_bound_respected(rev, valid));
    EXPECT_TRUE(epsilon_bound_respected(col, valid));
  }
}

}  // namespace
}  // namespace pcs::core
