#include "switch/make_switch.hpp"

#include <gtest/gtest.h>

#include "plan/compile.hpp"
#include "plan/plan_switch.hpp"
#include "switch/columnsort_switch.hpp"
#include "switch/hyper_switch.hpp"
#include "switch/multipass_switch.hpp"
#include "switch/revsort_switch.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace pcs {
namespace {

// Routing equivalence on a handful of random patterns: the factory-built
// switch and the reference must agree bit for bit.
void expect_same_routing(const sw::ConcentratorSwitch& a,
                         const sw::ConcentratorSwitch& b, std::size_t n,
                         unsigned seed) {
  Rng rng(seed);
  for (std::size_t k : {std::size_t{0}, n / 8, n / 3, n / 2}) {
    BitVec valid = rng.exact_weight_bits(n, k);
    sw::SwitchRouting ra = a.route(valid);
    sw::SwitchRouting rb = b.route(valid);
    EXPECT_EQ(ra.output_of_input, rb.output_of_input);
    EXPECT_EQ(ra.input_of_output, rb.input_of_output);
  }
}

const plan::SwitchPlan& plan_of(const sw::ConcentratorSwitch& sw) {
  const auto* ps = dynamic_cast<const plan::PlanSwitch*>(&sw);
  EXPECT_NE(ps, nullptr);
  return ps->plan();
}

TEST(MakeSwitch, RevsortMatchesLegacyClass) {
  SwitchSpec spec;
  spec.family = "revsort";
  spec.n = 256;
  spec.m = 192;
  auto made = make_switch(spec);
  sw::RevsortSwitch legacy(256, 192);

  EXPECT_EQ(made->name(), legacy.name());
  EXPECT_EQ(made->inputs(), legacy.inputs());
  EXPECT_EQ(made->outputs(), legacy.outputs());
  EXPECT_EQ(made->epsilon_bound(), legacy.epsilon_bound());
  EXPECT_EQ(plan_of(*made).digest(),
            plan::compile_revsort_plan(256, 192).digest());
  expect_same_routing(*made, legacy, 256, 21);
}

TEST(MakeSwitch, ColumnsortExplicitShapeMatchesCompiler) {
  SwitchSpec spec;
  spec.family = "columnsort";
  spec.r = 64;
  spec.s = 8;
  spec.m = 384;
  auto made = make_switch(spec);
  sw::ColumnsortSwitch legacy(64, 8, 384);

  EXPECT_EQ(made->name(), legacy.name());
  EXPECT_EQ(made->epsilon_bound(), legacy.epsilon_bound());
  EXPECT_EQ(plan_of(*made).digest(),
            plan::compile_columnsort_plan(64, 8, 384).digest());
  expect_same_routing(*made, legacy, 512, 22);
}

TEST(MakeSwitch, ColumnsortBetaShapeMatchesBetaCompiler) {
  SwitchSpec spec;
  spec.family = "columnsort";
  spec.n = 4096;
  spec.beta = 0.75;
  spec.m = 2048;
  auto made = make_switch(spec);
  EXPECT_EQ(plan_of(*made).digest(),
            plan::compile_columnsort_plan_beta(4096, 0.75, 2048).digest());
}

TEST(MakeSwitch, MultipassMatchesCompiler) {
  SwitchSpec spec;
  spec.family = "multipass";
  spec.r = 64;
  spec.s = 8;
  spec.passes = 3;
  spec.m = 384;
  spec.schedule = plan::ReshapeSchedule::kAlternating;
  auto made = make_switch(spec);
  EXPECT_EQ(plan_of(*made).digest(),
            plan::compile_multipass_plan(64, 8, 3, 384,
                                         plan::ReshapeSchedule::kAlternating)
                .digest());
}

TEST(MakeSwitch, FullSortingFamiliesMatchCompilers) {
  SwitchSpec fr;
  fr.family = "full-revsort";
  fr.n = 256;
  EXPECT_EQ(plan_of(*make_switch(fr)).digest(),
            plan::compile_full_revsort_plan(256).digest());

  SwitchSpec fc;
  fc.family = "full-columnsort";
  fc.r = 128;  // needs s | r and r >= 2(s-1)^2
  fc.s = 8;
  EXPECT_EQ(plan_of(*make_switch(fc)).digest(),
            plan::compile_full_columnsort_plan(128, 8).digest());
}

TEST(MakeSwitch, HyperReturnsSingleChipSwitch) {
  SwitchSpec spec;
  spec.family = "hyper";
  spec.n = 64;
  spec.m = 16;
  auto made = make_switch(spec);
  sw::HyperSwitch legacy(64, 16);
  EXPECT_EQ(made->name(), legacy.name());
  EXPECT_EQ(made->epsilon_bound(), 0u);
  expect_same_routing(*made, legacy, 64, 23);
}

TEST(MakeSwitch, ZeroOutputsMeansAllOutputs) {
  SwitchSpec all;
  all.family = "revsort";
  all.n = 256;  // m left 0
  SwitchSpec full;
  full.family = "revsort";
  full.n = 256;
  full.m = 256;
  EXPECT_EQ(make_switch_plan(all).digest(), make_switch_plan(full).digest());
  EXPECT_EQ(make_switch(all)->outputs(), 256u);
}

TEST(MakeSwitch, FaultsWeakenThePlan) {
  SwitchSpec spec;
  spec.family = "revsort";
  spec.n = 256;
  spec.m = 192;
  SwitchSpec faulty = spec;
  faulty.faults = {{0, 0}};

  plan::SwitchPlan reference = plan::compile_revsort_plan(256, 192);
  plan::apply_chip_faults(reference, {{0, 0}});
  EXPECT_EQ(make_switch_plan(faulty).digest(), reference.digest());
  EXPECT_GT(make_switch(faulty)->epsilon_bound(),
            make_switch(spec)->epsilon_bound());
}

TEST(MakeSwitch, BadSpecsThrowContractViolations) {
  SwitchSpec unknown;
  unknown.family = "quantum";
  unknown.n = 64;
  EXPECT_THROW(make_switch(unknown), ContractViolation);
  EXPECT_THROW(make_switch_plan(unknown), ContractViolation);

  SwitchSpec faulty_hyper;
  faulty_hyper.family = "hyper";
  faulty_hyper.n = 64;
  faulty_hyper.m = 16;
  faulty_hyper.faults = {{0, 0}};
  EXPECT_THROW(make_switch(faulty_hyper), ContractViolation);

  SwitchSpec half_shape;
  half_shape.family = "columnsort";
  half_shape.r = 64;  // s left 0
  EXPECT_THROW(make_switch_plan(half_shape), ContractViolation);

  SwitchSpec shapeless_multipass;
  shapeless_multipass.family = "multipass";
  shapeless_multipass.n = 512;
  EXPECT_THROW(make_switch_plan(shapeless_multipass), ContractViolation);

  SwitchSpec partial_full;
  partial_full.family = "full-revsort";
  partial_full.n = 256;
  partial_full.m = 128;  // fully sorting family cannot drop outputs
  EXPECT_THROW(make_switch_plan(partial_full), ContractViolation);
}

}  // namespace
}  // namespace pcs
