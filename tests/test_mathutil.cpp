#include "util/mathutil.hpp"

#include <gtest/gtest.h>

#include "util/assert.hpp"

namespace pcs {
namespace {

TEST(MathUtil, IsPow2) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_TRUE(is_pow2(4));
  EXPECT_FALSE(is_pow2(6));
  EXPECT_TRUE(is_pow2(std::uint64_t{1} << 63));
  EXPECT_FALSE(is_pow2((std::uint64_t{1} << 63) + 1));
}

TEST(MathUtil, FloorLog2) {
  EXPECT_EQ(floor_log2(1), 0u);
  EXPECT_EQ(floor_log2(2), 1u);
  EXPECT_EQ(floor_log2(3), 1u);
  EXPECT_EQ(floor_log2(4), 2u);
  EXPECT_EQ(floor_log2(1023), 9u);
  EXPECT_EQ(floor_log2(1024), 10u);
  EXPECT_THROW(floor_log2(0), ContractViolation);
}

TEST(MathUtil, CeilLog2) {
  EXPECT_EQ(ceil_log2(1), 0u);
  EXPECT_EQ(ceil_log2(2), 1u);
  EXPECT_EQ(ceil_log2(3), 2u);
  EXPECT_EQ(ceil_log2(4), 2u);
  EXPECT_EQ(ceil_log2(5), 3u);
  EXPECT_EQ(ceil_log2(1024), 10u);
  EXPECT_EQ(ceil_log2(1025), 11u);
}

TEST(MathUtil, ExactLog2) {
  EXPECT_EQ(exact_log2(16), 4u);
  EXPECT_THROW(exact_log2(24), ContractViolation);
}

TEST(MathUtil, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 3), 0u);
  EXPECT_EQ(ceil_div(1, 3), 1u);
  EXPECT_EQ(ceil_div(3, 3), 1u);
  EXPECT_EQ(ceil_div(4, 3), 2u);
  EXPECT_THROW(ceil_div(1, 0), ContractViolation);
}

TEST(MathUtil, BitReversePaperExample) {
  // Paper Section 4: with sqrt(n) = 16 (q = 4 bits), rev(3) = 12.
  EXPECT_EQ(bit_reverse(3, 4), 12u);
}

TEST(MathUtil, BitReverseInvolution) {
  for (unsigned bits = 1; bits <= 10; ++bits) {
    for (std::uint64_t v = 0; v < (std::uint64_t{1} << bits); v += 7) {
      EXPECT_EQ(bit_reverse(bit_reverse(v, bits), bits), v);
    }
  }
}

TEST(MathUtil, BitReverseZeroBits) { EXPECT_EQ(bit_reverse(123, 0), 0u); }

TEST(MathUtil, Isqrt) {
  EXPECT_EQ(isqrt(0), 0u);
  EXPECT_EQ(isqrt(1), 1u);
  EXPECT_EQ(isqrt(3), 1u);
  EXPECT_EQ(isqrt(4), 2u);
  EXPECT_EQ(isqrt(15), 3u);
  EXPECT_EQ(isqrt(16), 4u);
  EXPECT_EQ(isqrt(1u << 20), 1024u);
  EXPECT_EQ(isqrt((1u << 20) - 1), 1023u);
}

TEST(MathUtil, IsqrtLargeValues) {
  std::uint64_t big = std::uint64_t{3037000499};  // floor(sqrt(2^63 - 1)) ballpark
  std::uint64_t r = isqrt(big * big);
  EXPECT_EQ(r, big);
  EXPECT_EQ(isqrt(big * big - 1), big - 1);
}

TEST(MathUtil, RowColMajorFigure5) {
  // Figure 5: 6x3 matrix; entry (1, 2) has RM position 5 and CM position 13.
  const std::size_t r = 6, s = 3;
  EXPECT_EQ(row_major(1, 2, s), 5u);
  EXPECT_EQ(col_major(1, 2, r), 13u);
  EXPECT_EQ(row_major(0, 0, s), 0u);
  EXPECT_EQ(col_major(5, 2, r), 17u);
  EXPECT_EQ(row_major(5, 2, s), 17u);
}

TEST(MathUtil, RowColMajorInversesEverywhere) {
  const std::size_t r = 6, s = 3;
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < s; ++j) {
      EXPECT_EQ(row_major_inv(row_major(i, j, s), s), (RowCol{i, j}));
      EXPECT_EQ(col_major_inv(col_major(i, j, r), r), (RowCol{i, j}));
    }
  }
}

}  // namespace
}  // namespace pcs
