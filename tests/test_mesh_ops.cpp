#include "sortnet/mesh_ops.hpp"

#include <gtest/gtest.h>

#include "util/assert.hpp"
#include "util/mathutil.hpp"
#include "util/rng.hpp"

namespace pcs::sortnet {
namespace {

TEST(MeshOps, SortedOnesFirst) {
  EXPECT_EQ(sorted_ones_first(BitVec::from_string("010110")).to_string(), "111000");
  EXPECT_EQ(sorted_ones_first(BitVec::from_string("000")).to_string(), "000");
  EXPECT_EQ(sorted_ones_first(BitVec::from_string("111")).to_string(), "111");
}

TEST(MeshOps, SortColumnsPreservesColumnCounts) {
  Rng rng(20);
  BitMatrix m = BitMatrix::from_row_major(rng.bernoulli_bits(64, 0.5), 8, 8);
  std::vector<std::size_t> before(8);
  for (std::size_t j = 0; j < 8; ++j) before[j] = m.col(j).count();
  sort_columns(m);
  for (std::size_t j = 0; j < 8; ++j) {
    EXPECT_EQ(m.col(j).count(), before[j]);
    EXPECT_TRUE(m.col(j).is_sorted_nonincreasing());
  }
}

TEST(MeshOps, SortRowsBothDirections) {
  BitMatrix m = BitMatrix::from_row_major(BitVec::from_string("0110" "1001"), 2, 4);
  BitMatrix ones_first = m;
  sort_rows(ones_first, RowOrder::kOnesFirst);
  EXPECT_EQ(ones_first.row(0).to_string(), "1100");
  EXPECT_EQ(ones_first.row(1).to_string(), "1100");
  BitMatrix zeros_first = m;
  sort_rows(zeros_first, RowOrder::kZerosFirst);
  EXPECT_EQ(zeros_first.row(0).to_string(), "0011");
  EXPECT_EQ(zeros_first.row(1).to_string(), "0011");
}

TEST(MeshOps, SortRowsAlternating) {
  BitMatrix m = BitMatrix::from_row_major(BitVec::from_string("0110" "1001" "0010"), 3, 4);
  sort_rows_alternating(m);
  EXPECT_EQ(m.row(0).to_string(), "1100");  // even row: ones first
  EXPECT_EQ(m.row(1).to_string(), "0011");  // odd row: zeros first
  EXPECT_EQ(m.row(2).to_string(), "1000");
}

TEST(MeshOps, RotateRowRight) {
  BitMatrix m = BitMatrix::from_row_major(BitVec::from_string("1100"), 1, 4);
  rotate_row_right(m, 0, 1);
  EXPECT_EQ(m.row(0).to_string(), "0110");
  rotate_row_right(m, 0, 4);  // full rotation is identity
  EXPECT_EQ(m.row(0).to_string(), "0110");
  rotate_row_right(m, 0, 6);  // amount mod cols
  EXPECT_EQ(m.row(0).to_string(), "1001");
}

TEST(MeshOps, RotateRowsBitReversedAmounts) {
  // side 4, q = 2: rev(0)=0, rev(1)=2, rev(2)=1, rev(3)=3.
  BitMatrix m(4, 4);
  for (std::size_t i = 0; i < 4; ++i) m.set(i, 0, true);  // mark column 0
  rotate_rows_bit_reversed(m);
  EXPECT_TRUE(m.get(0, 0));
  EXPECT_TRUE(m.get(1, 2));
  EXPECT_TRUE(m.get(2, 1));
  EXPECT_TRUE(m.get(3, 3));
}

TEST(MeshOps, RotateRowsBitReversedRequiresPow2) {
  BitMatrix m(3, 3);
  EXPECT_THROW(rotate_rows_bit_reversed(m), ContractViolation);
}

TEST(MeshOps, SortednessPredicates) {
  BitMatrix sorted_rm = BitMatrix::from_row_major(BitVec::from_string("111100"), 2, 3);
  EXPECT_TRUE(is_row_major_sorted(sorted_rm));
  EXPECT_FALSE(is_col_major_sorted(sorted_rm));  // col-major reads 101101 -> no
  BitMatrix sorted_cm = BitMatrix::from_row_major(BitVec::from_string("110" "100"), 2, 3);
  EXPECT_TRUE(is_col_major_sorted(sorted_cm));  // col-major: 1 1 1 0 0 0
}

TEST(MeshOps, SortPreservesTotalCount) {
  Rng rng(21);
  for (int trial = 0; trial < 20; ++trial) {
    BitMatrix m = BitMatrix::from_row_major(rng.bernoulli_bits(48, rng.uniform01()), 6, 8);
    std::size_t before = m.count();
    sort_columns(m);
    sort_rows(m);
    sort_rows_alternating(m);
    EXPECT_EQ(m.count(), before);
  }
}

}  // namespace
}  // namespace pcs::sortnet
