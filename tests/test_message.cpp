#include "message/message.hpp"

#include <gtest/gtest.h>

#include "util/assert.hpp"

namespace pcs::msg {
namespace {

TEST(MessageBatch, AddAndQuery) {
  MessageBatch batch(8);
  Message m;
  m.source = 3;
  m.dest = 1;
  m.payload = BitVec::from_string("1010");
  batch.add(m);
  EXPECT_TRUE(batch.has_message(3));
  EXPECT_FALSE(batch.has_message(2));
  EXPECT_EQ(batch.message(3).payload.to_string(), "1010");
  EXPECT_EQ(batch.count(), 1u);
  EXPECT_EQ(batch.valid_bits().to_string(), "00010000");
}

TEST(MessageBatch, RejectsDoubleOccupancy) {
  MessageBatch batch(4);
  Message m;
  m.source = 1;
  batch.add(m);
  EXPECT_THROW(batch.add(m), pcs::ContractViolation);
}

TEST(MessageBatch, RejectsOutOfRange) {
  MessageBatch batch(4);
  Message m;
  m.source = 4;
  EXPECT_THROW(batch.add(m), pcs::ContractViolation);
  EXPECT_THROW(batch.message(0), pcs::ContractViolation);  // empty wire
}

TEST(RandomBatch, MatchesValidPattern) {
  Rng rng(180);
  BitVec valid = BitVec::from_string("0110100101");
  MessageBatch batch = random_batch(valid, 16, 4, rng);
  EXPECT_EQ(batch.valid_bits(), valid);
  EXPECT_EQ(batch.count(), valid.count());
  for (std::size_t i = 0; i < valid.size(); ++i) {
    if (valid.get(i)) {
      EXPECT_EQ(batch.message(i).source, i);
      EXPECT_EQ(batch.message(i).payload.size(), 16u);
      EXPECT_LT(batch.message(i).dest, 4u);
    }
  }
}

}  // namespace
}  // namespace pcs::msg
