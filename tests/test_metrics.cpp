#include "runtime/metrics.hpp"

#include <gtest/gtest.h>

#include <limits>

namespace pcs::rt {
namespace {

TEST(Metrics, CounterAndGauge) {
  MetricsRegistry reg;
  reg.counter("events").add();
  reg.counter("events").add(41);
  EXPECT_EQ(reg.counter("events").value(), 42u);

  reg.gauge("level").set(0.5);
  reg.gauge("level").set(0.25);  // last write wins
  EXPECT_DOUBLE_EQ(reg.gauge("level").value(), 0.25);
}

TEST(Metrics, HistogramLog2Buckets) {
  Histogram h;
  h.record(0);  // bucket 0: exactly {0}
  h.record(1);  // bucket 1: [1, 1]
  h.record(2);  // bucket 2: [2, 3]
  h.record(3);
  h.record(1000);  // bucket 10: [512, 1023]

  ASSERT_EQ(h.buckets().size(), 11u);
  EXPECT_EQ(h.buckets()[0], 1u);
  EXPECT_EQ(h.buckets()[1], 1u);
  EXPECT_EQ(h.buckets()[2], 2u);
  EXPECT_EQ(h.buckets()[10], 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 1006u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 1000u);
  EXPECT_DOUBLE_EQ(h.mean(), 1006.0 / 5.0);

  EXPECT_EQ(Histogram::bucket_upper_bound(0), 0u);
  EXPECT_EQ(Histogram::bucket_upper_bound(1), 1u);
  EXPECT_EQ(Histogram::bucket_upper_bound(2), 3u);
  EXPECT_EQ(Histogram::bucket_upper_bound(10), 1023u);
}

// Regression (observability): zero-latency fast-path deliveries must stay
// distinguishable from 1-epoch ones.  Bucket 0 admits ONLY the value 0 and
// bucket 1 only the value 1; a naive floor(log2(v))+1 indexing would merge
// them.  tools/check_trace.py enforces the same schema on exported JSON.
TEST(Metrics, HistogramZeroBucketIsDistinguishableFromOne) {
  Histogram zeros;
  zeros.record_n(0, 5);
  Histogram ones;
  ones.record_n(1, 5);
  ASSERT_EQ(zeros.buckets().size(), 1u);
  ASSERT_EQ(ones.buckets().size(), 2u);
  EXPECT_EQ(zeros.buckets()[0], 5u);
  EXPECT_EQ(ones.buckets()[0], 0u);
  EXPECT_EQ(ones.buckets()[1], 5u);
  // Identical counts but different distributions: the buckets (and only
  // the buckets) tell them apart, so their JSON must differ.
  MetricsRegistry a, b;
  a.histogram("latency_epochs").record_n(0, 5);
  b.histogram("latency_epochs").record_n(1, 5);
  EXPECT_NE(a.to_json(), b.to_json());
  // bucket_upper_bound matches the documented admission ranges exactly.
  EXPECT_EQ(Histogram::bucket_upper_bound(0), 0u);
  EXPECT_EQ(Histogram::bucket_upper_bound(1), 1u);
  EXPECT_EQ(Histogram::bucket_upper_bound(2), 3u);
}

TEST(Metrics, HistogramWeightedRecord) {
  Histogram h;
  h.record_n(4, 10);
  h.record_n(7, 0);  // zero weight is a no-op
  EXPECT_EQ(h.count(), 10u);
  EXPECT_EQ(h.sum(), 40u);
  EXPECT_EQ(h.min(), 4u);
  EXPECT_EQ(h.max(), 4u);
  ASSERT_EQ(h.buckets().size(), 4u);
  EXPECT_EQ(h.buckets()[3], 10u);
}

TEST(Metrics, EmptyHistogram) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_TRUE(h.buckets().empty());
}

TEST(Metrics, FormatJsonDouble) {
  EXPECT_EQ(format_json_double(1.0), "1.0");
  EXPECT_EQ(format_json_double(0.0), "0.0");
  EXPECT_EQ(format_json_double(-3.0), "-3.0");
  EXPECT_EQ(format_json_double(0.6), "0.6");  // shortest round trip, not 0.59999...
  // Non-finite values degrade to 0 rather than emitting invalid JSON.
  EXPECT_EQ(format_json_double(std::numeric_limits<double>::infinity()), "0");
}

TEST(Metrics, JsonEscape) {
  EXPECT_EQ(json_escape("plain"), "\"plain\"");
  EXPECT_EQ(json_escape("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\"\\u0001\"");
}

// The registry owns mutexes now (thread-safe for the serving daemon), so it
// is neither copyable nor movable; populate in place.
void populate(MetricsRegistry& reg) {
  reg.counter("zeta").add(3);
  reg.counter("alpha").add(1);
  reg.gauge("rate").set(0.375);
  reg.histogram("lat").record(5);
  reg.histogram("lat").record(0);
}

TEST(Metrics, JsonIsDeterministicAndSorted) {
  MetricsRegistry ra, rb;
  populate(ra);
  populate(rb);
  const std::string a = ra.to_json();
  const std::string b = rb.to_json();
  EXPECT_EQ(a, b);

  // Names inside each section are emitted in sorted order regardless of
  // insertion order.
  const auto alpha = a.find("\"alpha\"");
  const auto zeta = a.find("\"zeta\"");
  ASSERT_NE(alpha, std::string::npos);
  ASSERT_NE(zeta, std::string::npos);
  EXPECT_LT(alpha, zeta);

  EXPECT_NE(a.find("\"counters\""), std::string::npos);
  EXPECT_NE(a.find("\"gauges\""), std::string::npos);
  EXPECT_NE(a.find("\"histograms\""), std::string::npos);
  EXPECT_NE(a.find("\"rate\": 0.375"), std::string::npos);
  EXPECT_NE(a.find("\"buckets\": [[0, 1], [1, 0], [3, 0], [7, 1]]"),
            std::string::npos);
}

TEST(Metrics, JsonIndentPrefixesEveryLine) {
  MetricsRegistry reg;
  reg.counter("c").add();
  const std::string s = reg.to_json(4);
  EXPECT_EQ(s.substr(0, 5), "    {");
  // Every line of the rendered block starts with at least the base indent.
  std::size_t pos = 0;
  while ((pos = s.find('\n', pos)) != std::string::npos) {
    ++pos;
    if (pos < s.size()) {
      EXPECT_EQ(s.substr(pos, 4), "    ") << "at offset " << pos;
    }
  }
}

}  // namespace
}  // namespace pcs::rt
