// Thread-safety of the metrics layer (the serving daemon's global registry
// is hammered by connection threads while scrapes walk it).  These tests
// are written to be run under TSan (the `tsan` CMake preset builds this
// suite with -fsanitize=thread): every assertion here is about totals, but
// the real assertion is "no data race reports".
#include "runtime/metrics.hpp"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace pcs::rt {
namespace {

constexpr std::size_t kThreads = 8;
constexpr std::size_t kOpsPerThread = 10000;

TEST(MetricsConcurrent, CountersFromManyThreads) {
  MetricsRegistry reg;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      for (std::size_t i = 0; i < kOpsPerThread; ++i) {
        reg.counter("shared").add(1);
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(reg.counter("shared").value(), kThreads * kOpsPerThread);
}

// Racing creation: every thread asks for a mix of fresh and existing names
// while another thread serializes the registry.  Exercises the registry
// mutex (map rehash vs lookup) and the histogram mutex (record vs snapshot).
TEST(MetricsConcurrent, CreationRecordingAndScrapeRace) {
  MetricsRegistry reg;
  std::vector<std::thread> writers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    writers.emplace_back([&reg, t] {
      for (std::size_t i = 0; i < 2000; ++i) {
        reg.counter("c" + std::to_string(i % 7)).add(1);
        reg.gauge("g" + std::to_string(t)).set(static_cast<double>(i));
        reg.histogram("h" + std::to_string(i % 3)).record(i % 100);
      }
    });
  }
  std::thread scraper([&reg] {
    for (std::size_t i = 0; i < 200; ++i) {
      const std::string json = reg.to_json();
      EXPECT_FALSE(json.empty());
    }
  });
  for (std::thread& th : writers) th.join();
  scraper.join();

  std::uint64_t counter_total = 0;
  reg.for_each_counter(
      [&](const std::string&, std::uint64_t v) { counter_total += v; });
  EXPECT_EQ(counter_total, kThreads * 2000u);
  std::uint64_t histo_total = 0;
  reg.for_each_histogram(
      [&](const std::string&, const Histogram::Snapshot& s) {
        histo_total += s.count;
      });
  EXPECT_EQ(histo_total, kThreads * 2000u);
}

TEST(MetricsConcurrent, HistogramRecordVsSnapshot) {
  Histogram h;
  std::vector<std::thread> writers;
  for (std::size_t t = 0; t < 4; ++t) {
    writers.emplace_back([&h] {
      for (std::size_t i = 0; i < kOpsPerThread; ++i) h.record(i % 128);
    });
  }
  std::thread reader([&h] {
    for (std::size_t i = 0; i < 1000; ++i) {
      const Histogram::Snapshot s = h.snapshot();
      // A snapshot is internally consistent even mid-race: bucket counts
      // always sum to the sample count.
      std::uint64_t bucket_sum = 0;
      for (std::uint64_t b : s.buckets) bucket_sum += b;
      EXPECT_EQ(bucket_sum, s.count);
    }
  });
  for (std::thread& th : writers) th.join();
  reader.join();
  EXPECT_EQ(h.count(), 4 * kOpsPerThread);
}

// merge() is how campaign-local registries fold into the daemon's global
// one; concurrent merges of known snapshots must sum exactly.
TEST(MetricsConcurrent, ConcurrentMerges) {
  Histogram local;
  for (std::size_t i = 0; i < 100; ++i) local.record(i);
  const Histogram::Snapshot snap = local.snapshot();

  Histogram global;
  std::vector<std::thread> mergers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    mergers.emplace_back([&global, &snap] {
      for (std::size_t i = 0; i < 100; ++i) global.merge(snap);
    });
  }
  for (std::thread& th : mergers) th.join();
  EXPECT_EQ(global.count(), kThreads * 100u * snap.count);
  EXPECT_EQ(global.sum(), kThreads * 100u * snap.sum);
  EXPECT_EQ(global.min(), snap.min);
  EXPECT_EQ(global.max(), snap.max);
}

}  // namespace
}  // namespace pcs::rt
