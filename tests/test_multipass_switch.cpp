#include "switch/multipass_switch.hpp"

#include <gtest/gtest.h>

#include "core/adversary.hpp"
#include "sortnet/nearsort.hpp"
#include "switch/columnsort_switch.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace pcs::sw {
namespace {

TEST(MultipassSwitch, OnePassEqualsColumnsortSwitch) {
  const std::size_t r = 32, s = 4, n = r * s;
  MultipassColumnsortSwitch multi(r, s, 1, n / 2);
  ColumnsortSwitch single(r, s, n / 2);
  Rng rng(270);
  for (int trial = 0; trial < 20; ++trial) {
    BitVec valid = rng.bernoulli_bits(n, rng.uniform01());
    SwitchRouting a = multi.route(valid);
    SwitchRouting b = single.route(valid);
    EXPECT_EQ(a.output_of_input, b.output_of_input);
    EXPECT_EQ(multi.nearsorted_valid_bits(valid), single.nearsorted_valid_bits(valid));
  }
}

TEST(MultipassSwitch, Validation) {
  EXPECT_THROW(MultipassColumnsortSwitch(10, 4, 1, 20), pcs::ContractViolation);
  EXPECT_THROW(MultipassColumnsortSwitch(16, 4, 0, 32), pcs::ContractViolation);
  EXPECT_THROW(MultipassColumnsortSwitch(16, 4, 1, 0), pcs::ContractViolation);
}

TEST(MultipassSwitch, RoutingIsPartialInjection) {
  MultipassColumnsortSwitch sw(64, 8, 3, 256);
  Rng rng(271);
  for (int trial = 0; trial < 20; ++trial) {
    BitVec valid = rng.bernoulli_bits(512, rng.uniform01());
    EXPECT_TRUE(sw.route(valid).is_partial_injection());
  }
}

// The conjectured bound for d >= 2: measured epsilon stays within (s-1)^2,
// checked by adversarial search across pass counts and both schedules.
class MultipassEpsilon : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MultipassEpsilon, WithinConjecturedBound) {
  const std::size_t passes = GetParam();
  for (ReshapeSchedule sched :
       {ReshapeSchedule::kSame, ReshapeSchedule::kAlternating}) {
    MultipassColumnsortSwitch sw(64, 8, passes, 512, sched);
    Rng rng(272 + passes);
    pcs::core::WorstCase wc = pcs::core::worst_epsilon_search(sw, 20, 80, rng);
    EXPECT_LE(wc.epsilon, sw.epsilon_bound())
        << "passes=" << passes << " sched=" << static_cast<int>(sched);
  }
}

INSTANTIATE_TEST_SUITE_P(Passes, MultipassEpsilon, ::testing::Values(1, 2, 3, 4));

TEST(MultipassSwitch, AlternatingBeatsSameDirectionAdversarially) {
  // The documented finding: the same-direction worst case is a fixed point
  // at (s-1)^2, while alternating reshapes strictly improve by d = 3.
  Rng rng_same(276), rng_alt(276);
  MultipassColumnsortSwitch same(64, 8, 3, 512, ReshapeSchedule::kSame);
  MultipassColumnsortSwitch alt(64, 8, 3, 512, ReshapeSchedule::kAlternating);
  auto ws = pcs::core::worst_epsilon_search(same, 30, 150, rng_same);
  auto wa = pcs::core::worst_epsilon_search(alt, 30, 150, rng_alt);
  EXPECT_EQ(ws.epsilon, same.epsilon_bound());  // fixed point at (s-1)^2
  EXPECT_LT(wa.epsilon, ws.epsilon);
}

TEST(MultipassSwitch, AlternatingEvenPassReadsColumnMajor) {
  MultipassColumnsortSwitch even(64, 8, 2, 512, ReshapeSchedule::kAlternating);
  MultipassColumnsortSwitch odd(64, 8, 3, 512, ReshapeSchedule::kAlternating);
  EXPECT_FALSE(even.reads_row_major());
  EXPECT_TRUE(odd.reads_row_major());
  MultipassColumnsortSwitch same_even(64, 8, 2, 512, ReshapeSchedule::kSame);
  EXPECT_TRUE(same_even.reads_row_major());
}

TEST(MultipassSwitch, MorePassesNeverHurtOnAverage) {
  // Average measured epsilon over random inputs is nonincreasing in the
  // pass count (statistically; we allow a small slack).
  const std::size_t r = 64, s = 8, n = r * s;
  Rng rng(273);
  std::vector<double> avg;
  for (std::size_t d = 1; d <= 3; ++d) {
    MultipassColumnsortSwitch sw(r, s, d, n);
    std::size_t total = 0;
    const int trials = 60;
    Rng trial_rng(274);  // same inputs for every d
    for (int t = 0; t < trials; ++t) {
      BitVec valid = trial_rng.bernoulli_bits(n, trial_rng.uniform01());
      total += sortnet::min_nearsort_epsilon(sw.nearsorted_valid_bits(valid));
    }
    avg.push_back(static_cast<double>(total) / trials);
  }
  EXPECT_LE(avg[1], avg[0] + 1.0);
  EXPECT_LE(avg[2], avg[1] + 1.0);
}

TEST(MultipassSwitch, ConcentrationContractHolds) {
  MultipassColumnsortSwitch sw(64, 8, 2, 384);
  Rng rng(275);
  for (std::size_t k = 0; k <= 512; k += 37) {
    BitVec valid = rng.exact_weight_bits(512, k);
    SwitchRouting routing = sw.route(valid);
    EXPECT_TRUE(concentration_contract_holds(sw, valid, routing)) << "k=" << k;
  }
}

TEST(MultipassSwitch, BomAndNaming) {
  MultipassColumnsortSwitch sw(64, 8, 3, 256);
  EXPECT_EQ(sw.chip_passes(), 4u);
  Bom bom = sw.bill_of_materials();
  EXPECT_EQ(bom.total_chips(), 4u * 8u);
  EXPECT_NE(sw.name().find("d=3"), std::string::npos);
}


TEST(MultipassSwitch, AlternatingTwoPassExhaustiveTinyShape) {
  // r = 8, s = 2: epsilon bound (s-1)^2 = 1; exhaustive over all 2^16
  // patterns, the alternating 2-pass switch (column-major read-out) stays
  // within it and honors the contract.
  MultipassColumnsortSwitch sw(8, 2, 2, 12, ReshapeSchedule::kAlternating);
  MultipassColumnsortSwitch full(8, 2, 2, 16, ReshapeSchedule::kAlternating);
  for (std::uint32_t p = 0; p < (1u << 16); ++p) {
    BitVec valid(16);
    for (std::size_t i = 0; i < 16; ++i) valid.set(i, (p >> i) & 1u);
    BitVec arr = full.nearsorted_valid_bits(valid);
    ASSERT_LE(sortnet::min_nearsort_epsilon(arr), 1u) << p;
    SwitchRouting r = sw.route(valid);
    ASSERT_TRUE(concentration_contract_holds(sw, valid, r)) << p;
  }
}

}  // namespace
}  // namespace pcs::sw
