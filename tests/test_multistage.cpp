#include "network/multistage.hpp"

#include <gtest/gtest.h>

#include "switch/hyper_switch.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace pcs::net {
namespace {

TEST(Multistage, ThreeLevelShapes) {
  // 512 sources -> 32 switches (16->8) -> 16 switches (16->8) -> 2 (64->32).
  MultistageNetwork net(512,
                        {MultistageNetwork::LevelSpec{16, 8},
                         MultistageNetwork::LevelSpec{16, 8},
                         MultistageNetwork::LevelSpec{64, 32}},
                        hyper_factory());
  EXPECT_EQ(net.levels(), 3u);
  EXPECT_EQ(net.switches_at(0), 32u);
  EXPECT_EQ(net.switches_at(1), 16u);
  EXPECT_EQ(net.switches_at(2), 2u);
  EXPECT_EQ(net.total_switches(), 50u);
  EXPECT_EQ(net.trunk_width(), 64u);
  EXPECT_EQ(net.guaranteed_end_to_end_capacity(), 8u);
}

TEST(Multistage, ShapeValidation) {
  // fan_in must divide the level width.
  EXPECT_THROW(MultistageNetwork(10, {MultistageNetwork::LevelSpec{4, 2}},
                                 hyper_factory()),
               pcs::ContractViolation);
  EXPECT_THROW(MultistageNetwork(16, {MultistageNetwork::LevelSpec{4, 5}},
                                 hyper_factory()),
               pcs::ContractViolation);
  EXPECT_THROW(MultistageNetwork(16, {}, hyper_factory()), pcs::ContractViolation);
}

TEST(Multistage, RouteOnceConservation) {
  MultistageNetwork net(256,
                        {MultistageNetwork::LevelSpec{16, 8},
                         MultistageNetwork::LevelSpec{32, 16}},
                        hyper_factory());
  Rng rng(300);
  for (int t = 0; t < 25; ++t) {
    BitVec valid = rng.bernoulli_bits(256, rng.uniform01());
    auto shot = net.route_once(valid);
    EXPECT_EQ(shot.offered, valid.count());
    ASSERT_EQ(shot.survivors.size(), 2u);
    EXPECT_LE(shot.survivors[1], shot.survivors[0]);
    EXPECT_LE(shot.survivors[0], shot.offered);
    // trunk map is an injection into [0, trunk_width).
    std::vector<bool> used(net.trunk_width(), false);
    std::size_t mapped = 0;
    for (std::size_t i = 0; i < 256; ++i) {
      std::int32_t out = shot.trunk_output_of_source[i];
      if (out < 0) continue;
      EXPECT_TRUE(valid.get(i));
      ASSERT_LT(static_cast<std::size_t>(out), used.size());
      EXPECT_FALSE(used[static_cast<std::size_t>(out)]);
      used[static_cast<std::size_t>(out)] = true;
      ++mapped;
    }
    EXPECT_EQ(mapped, shot.survivors.back());
  }
}

TEST(Multistage, PerfectSwitchExactCounts) {
  // With HyperSwitch nodes the per-level survivor counts are exactly
  // sum over nodes of min(k_node, fan_out).
  MultistageNetwork net(64, {MultistageNetwork::LevelSpec{16, 4}}, hyper_factory());
  Rng rng(301);
  BitVec valid = rng.bernoulli_bits(64, 0.5);
  auto shot = net.route_once(valid);
  std::size_t expected = 0;
  for (std::size_t g = 0; g < 4; ++g) {
    std::size_t k = 0;
    for (std::size_t i = 0; i < 16; ++i) k += valid.get(g * 16 + i);
    expected += std::min<std::size_t>(k, 4);
  }
  EXPECT_EQ(shot.survivors[0], expected);
}

TEST(Multistage, GuaranteedCapacityIsLossless) {
  // Any placement of up to the end-to-end capacity must reach the trunk:
  // a single 64->16 Revsort level (capacity 64 - 40 = 24... use hyper).
  MultistageNetwork net(256,
                        {MultistageNetwork::LevelSpec{64, 32},
                         MultistageNetwork::LevelSpec{128, 64}},
                        hyper_factory());
  const std::size_t cap = net.guaranteed_end_to_end_capacity();
  ASSERT_GT(cap, 0u);
  Rng rng(302);
  for (int t = 0; t < 20; ++t) {
    BitVec valid = rng.exact_weight_bits(256, cap);
    auto shot = net.route_once(valid);
    EXPECT_EQ(shot.survivors.back(), cap) << "t=" << t;
  }
}

TEST(Multistage, MixedFactoryBuildsRevsortWhereItFits) {
  MultistageNetwork net(256,
                        {MultistageNetwork::LevelSpec{64, 16},   // 64 = 8^2: revsort
                         MultistageNetwork::LevelSpec{64, 32}},  // revsort again
                        revsort_or_hyper_factory());
  EXPECT_NE(net.switch_at(0, 0).name().find("revsort"), std::string::npos);
  // A non-square level falls back to the hyper switch.
  MultistageNetwork net2(96, {MultistageNetwork::LevelSpec{24, 12}},
                         revsort_or_hyper_factory());
  EXPECT_NE(net2.switch_at(0, 0).name().find("hyperconcentrator"),
            std::string::npos);
}

TEST(Multistage, FactoryMismatchRejected) {
  SwitchFactory bad = [](std::size_t, std::size_t) {
    return std::make_unique<pcs::sw::HyperSwitch>(8, 4);  // wrong width
  };
  EXPECT_THROW(MultistageNetwork(64, {MultistageNetwork::LevelSpec{16, 8}}, bad),
               pcs::ContractViolation);
}


TEST(Multistage, SimulateLightLoad) {
  MultistageNetwork net(128,
                        {MultistageNetwork::LevelSpec{16, 8},
                         MultistageNetwork::LevelSpec{16, 8}},
                        hyper_factory());
  Rng rng(303);
  auto stats = net.simulate(0.05, 200, rng);
  EXPECT_GT(stats.offered, 200u);
  EXPECT_GT(stats.delivery_rate(), 0.97);
  ASSERT_EQ(stats.cut_at_level.size(), 2u);
}

TEST(Multistage, SimulateSaturationCutsAccounted) {
  MultistageNetwork net(128,
                        {MultistageNetwork::LevelSpec{16, 4},
                         MultistageNetwork::LevelSpec{32, 8}},
                        hyper_factory());
  Rng rng(304);
  auto stats = net.simulate(0.9, 150, rng);
  // Trunk width 8: at most 8 deliveries per round.
  EXPECT_LE(stats.delivered, 150u * 8u);
  EXPECT_GT(stats.max_backlog, 32u);
  // Cuts happen somewhere when saturated.
  EXPECT_GT(stats.cut_at_level[0] + stats.cut_at_level[1], 0u);
}

}  // namespace
}  // namespace pcs::net
