#include "sortnet/nearsort.hpp"

#include <gtest/gtest.h>

#include "sortnet/mesh_ops.hpp"
#include "util/rng.hpp"

namespace pcs::sortnet {
namespace {

TEST(Nearsort, PaperExampleIntuition) {
  // The sorted sequence has epsilon 0 and an empty dirty window.
  BitVec sorted = BitVec::from_string("1111000");
  EXPECT_EQ(min_nearsort_epsilon(sorted), 0u);
  DirtyWindow w = dirty_window(sorted);
  EXPECT_EQ(w.dirty_length(), 0u);
  EXPECT_EQ(w.clean_ones, 4u);
  EXPECT_EQ(w.clean_zeros, 3u);
}

TEST(Nearsort, SingleSwap) {
  // "1011": k=3.  The last 1 (index 3) is displaced by 1; the 0 at index 1
  // belongs in [3,4) and is displaced by 2 -> epsilon = 2.
  BitVec v = BitVec::from_string("1011");
  EXPECT_EQ(min_nearsort_epsilon(v), 2u);
  DirtyWindow w = dirty_window(v);
  EXPECT_EQ(w.clean_ones, 1u);
  EXPECT_EQ(w.dirty_begin, 1u);
  EXPECT_EQ(w.dirty_end, 4u);
  EXPECT_EQ(w.clean_zeros, 0u);
}

TEST(Nearsort, DisplacementOfZeros) {
  // "0111": k=3; the 0 at position 0 belongs in [3,4): displacement 3.
  BitVec v = BitVec::from_string("0111");
  EXPECT_EQ(min_nearsort_epsilon(v), 3u);
}

TEST(Nearsort, AllSameValueIsSorted) {
  EXPECT_EQ(min_nearsort_epsilon(BitVec(10, true)), 0u);
  EXPECT_EQ(min_nearsort_epsilon(BitVec(10, false)), 0u);
  EXPECT_EQ(min_nearsort_epsilon(BitVec()), 0u);
}

TEST(Nearsort, IsNearsortedMonotone) {
  Rng rng(60);
  BitVec v = rng.bernoulli_bits(100, 0.5);
  std::size_t eps = min_nearsort_epsilon(v);
  if (eps > 0) {
    EXPECT_FALSE(is_nearsorted(v, eps - 1));
  }
  EXPECT_TRUE(is_nearsorted(v, eps));
  EXPECT_TRUE(is_nearsorted(v, eps + 1));
  EXPECT_TRUE(is_nearsorted(v, v.size()));
}

TEST(Nearsort, Lemma1StructureAtMinimum) {
  Rng rng(61);
  for (int trial = 0; trial < 200; ++trial) {
    BitVec v = rng.bernoulli_bits(64, rng.uniform01());
    std::size_t eps = min_nearsort_epsilon(v);
    EXPECT_TRUE(lemma1_structure_holds(v, eps)) << v.to_string();
    if (eps > 0) {
      EXPECT_FALSE(lemma1_structure_holds(v, eps - 1)) << v.to_string();
    }
  }
}

TEST(Nearsort, DirtyWindowPartitions) {
  Rng rng(62);
  for (int trial = 0; trial < 100; ++trial) {
    BitVec v = rng.bernoulli_bits(40, rng.uniform01());
    DirtyWindow w = dirty_window(v);
    EXPECT_EQ(w.clean_ones + w.dirty_length() + w.clean_zeros, v.size());
    // Prefix is clean 1s, suffix clean 0s.
    for (std::size_t i = 0; i < w.clean_ones; ++i) EXPECT_TRUE(v.get(i));
    for (std::size_t i = w.dirty_end; i < v.size(); ++i) EXPECT_FALSE(v.get(i));
    // The window is tight: its boundary bits are a 0 and a 1 when nonempty.
    if (w.dirty_length() > 0) {
      EXPECT_FALSE(v.get(w.dirty_begin));
      EXPECT_TRUE(v.get(w.dirty_end - 1));
    }
  }
}

TEST(Nearsort, WindowAtMostTwiceEpsilon) {
  // Lemma 1 forward direction on random sequences.
  Rng rng(63);
  for (int trial = 0; trial < 200; ++trial) {
    BitVec v = rng.bernoulli_bits(80, rng.uniform01());
    std::size_t eps = min_nearsort_epsilon(v);
    EXPECT_LE(dirty_window(v).dirty_length(), 2 * eps);
  }
}

TEST(Nearsort, FullySortingReducesEpsilonToZero) {
  Rng rng(64);
  BitVec v = rng.bernoulli_bits(50, 0.5);
  EXPECT_EQ(min_nearsort_epsilon(sorted_ones_first(v)), 0u);
}

TEST(Nearsort, WorstCaseReversed) {
  // "0...01...1" with k ones: the first 0 is displaced by k, the last 1 by
  // n - k; epsilon = max of the two.
  for (std::size_t n : {8u, 13u, 32u}) {
    for (std::size_t k = 1; k < n; ++k) {
      BitVec v(n);
      for (std::size_t i = 0; i < k; ++i) v.set(n - 1 - i, true);
      EXPECT_EQ(min_nearsort_epsilon(v), std::max(k, n - k)) << "n=" << n << " k=" << k;
    }
  }
}

}  // namespace
}  // namespace pcs::sortnet
