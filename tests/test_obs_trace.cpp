#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "message/traffic.hpp"
#include "plan/compile.hpp"
#include "plan/plan_switch.hpp"
#include "runtime/fabric_runtime.hpp"
#include "runtime/metrics.hpp"
#include "runtime/trace_bridge.hpp"
#include "switch/make_switch.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace pcs::obs {
namespace {

// Restores the parallelism clamp and leaves the global tracer quiescent and
// empty, whatever the test body did.
struct TracerSandbox {
  ~TracerSandbox() {
    Tracer::instance().disable();
    Tracer::instance().clear();
    pcs::set_max_parallelism(0);
  }
};

rt::FabricRuntime::TrafficFactory bernoulli(std::size_t width, double p) {
  return [width, p](std::size_t) -> std::unique_ptr<pcs::traffic::TrafficSource> {
    return std::make_unique<pcs::traffic::ComposedSource>(
        pcs::traffic::PatternKind::kUniform,
        std::make_unique<pcs::traffic::BernoulliProcess>(width, p), 0.125);
  };
}

// The pinned CI configuration: a faulted Revsort(256 -> 192) switch.  The
// fault clears the counting fast path, so route() walks the staged plan and
// every chip evaluation gets a span.
std::unique_ptr<sw::ConcentratorSwitch> pinned_switch() {
  SwitchSpec spec;
  spec.family = "revsort";
  spec.n = 256;
  spec.m = 192;
  spec.faults = {{0, 0}};
  return make_switch(spec);
}

rt::RuntimeOptions pinned_opts() {
  rt::RuntimeOptions opts;
  opts.lanes = 1;
  opts.seed = 7;
  opts.warmup_epochs = 4;
  opts.measure_epochs = 32;
  opts.drain_epochs_max = 64;
  opts.check_invariants = false;
  return opts;
}

TEST(ObsTrace, NeverEnabledTracerDrainsEmpty) {
  TracerSandbox sandbox;
  {
    SpanGuard span("test.span", cat::kPlan);
    span.arg("k", 1);
    PCS_TRACE_COUNTER("test.counter", 5);
  }
  TraceSnapshot snap = Tracer::instance().drain();
  EXPECT_TRUE(snap.empty());
  EXPECT_FALSE(Tracer::enabled());
}

TEST(ObsTrace, DisableMakesLaterSpansInert) {
  if (!kCompiledIn) GTEST_SKIP() << "tracing compiled out";
  TracerSandbox sandbox;
  Tracer::instance().enable(ClockMode::kLogical);
  { SpanGuard span("test.before", cat::kPlan); }
  Tracer::instance().disable();
  { SpanGuard span("test.after", cat::kPlan); }
  PCS_TRACE_COUNTER("test.after", 1);
  TraceSnapshot snap = Tracer::instance().drain();
  ASSERT_EQ(snap.spans.size(), 1u);
  EXPECT_STREQ(snap.spans[0].name, "test.before");
  EXPECT_TRUE(snap.counters.empty());
}

TEST(ObsTrace, InternReturnsStablePointers) {
  if (!kCompiledIn) GTEST_SKIP() << "tracing compiled out";
  const char* a = Tracer::instance().intern("obs.test.interned");
  const char* b = Tracer::instance().intern("obs.test.interned");
  EXPECT_EQ(a, b);
  EXPECT_STREQ(a, "obs.test.interned");
}

TEST(ObsTrace, LogicalClockTicksAreUniqueAndOrdered) {
  if (!kCompiledIn) GTEST_SKIP() << "tracing compiled out";
  TracerSandbox sandbox;
  Tracer::instance().enable(ClockMode::kLogical);
  {
    SpanGuard outer("test.outer", cat::kPlan);
    { SpanGuard inner("test.inner", cat::kPlan); }
  }
  TraceSnapshot snap = Tracer::instance().drain();
  ASSERT_EQ(snap.spans.size(), 2u);
  EXPECT_EQ(snap.clock, ClockMode::kLogical);
  // Inner closes first, so it drains first within the thread buffer.
  const SpanRecord& inner = snap.spans[0];
  const SpanRecord& outer = snap.spans[1];
  EXPECT_STREQ(inner.name, "test.inner");
  EXPECT_STREQ(outer.name, "test.outer");
  EXPECT_LT(outer.begin, inner.begin);
  EXPECT_LT(inner.begin, inner.end);
  EXPECT_LT(inner.end, outer.end);
}

// Acceptance: chip spans per route() call equal stages x chips for the
// pinned faulted Revsort plan -- 3 stages of 16 chips = 48.
TEST(ObsTrace, ChipSpanCountMatchesPlanStructure) {
  if (!kCompiledIn) GTEST_SKIP() << "tracing compiled out";
  TracerSandbox sandbox;
  auto sw = pinned_switch();
  const auto* ps = dynamic_cast<const plan::PlanSwitch*>(sw.get());
  ASSERT_NE(ps, nullptr);
  std::size_t expected = 0;
  for (const auto& st : ps->plan().stages) expected += st.chips;
  EXPECT_EQ(expected, 48u);

  Rng rng(3);
  Tracer::instance().enable(ClockMode::kLogical);
  sw->route(rng.exact_weight_bits(256, 100));
  TraceSnapshot snap = Tracer::instance().drain();

  std::size_t chip_spans = 0;
  for (const SpanRecord& rec : snap.spans) {
    if (std::string(rec.cat) == cat::kChip) ++chip_spans;
  }
  EXPECT_EQ(chip_spans, expected);
  EXPECT_EQ(snap.counters.at("plan.chips_evaluated"), expected);
}

// Stage spans carry the semantic labels the compiler attached.
TEST(ObsTrace, StageSpansUseSemanticLabels) {
  if (!kCompiledIn) GTEST_SKIP() << "tracing compiled out";
  TracerSandbox sandbox;
  auto sw = pinned_switch();
  Rng rng(4);
  Tracer::instance().enable(ClockMode::kLogical);
  sw->route(rng.exact_weight_bits(256, 64));
  TraceSnapshot snap = Tracer::instance().drain();

  std::vector<std::string> stage_names;
  for (const SpanRecord& rec : snap.spans) {
    if (std::string(rec.cat) == cat::kStage) stage_names.emplace_back(rec.name);
  }
  ASSERT_EQ(stage_names.size(), 3u);
  EXPECT_EQ(stage_names[0], "revsort.s0.columns");
  EXPECT_EQ(stage_names[1], "revsort.s1.rows+shift");
  EXPECT_EQ(stage_names[2], "revsort.s2.columns");
}

// Spans on each thread must nest strictly: sorted by begin tick, every span
// either contains or is disjoint from its successors.  Logical-clock ticks
// are globally unique, so the check is exact.
TEST(ObsTrace, SpansNestStrictlyPerThread) {
  if (!kCompiledIn) GTEST_SKIP() << "tracing compiled out";
  TracerSandbox sandbox;
  pcs::set_max_parallelism(1);

  auto sw = pinned_switch();
  rt::FabricRuntime runtime(*sw, pinned_opts(), bernoulli(256, 0.3));
  rt::MetricsRegistry metrics;
  Tracer::instance().enable(ClockMode::kLogical);
  runtime.run(metrics);
  Tracer::instance().disable();
  TraceSnapshot snap = Tracer::instance().drain();
  ASSERT_FALSE(snap.spans.empty());

  std::map<std::uint32_t, std::vector<const SpanRecord*>> by_tid;
  for (const SpanRecord& rec : snap.spans) by_tid[rec.tid].push_back(&rec);
  for (auto& [tid, spans] : by_tid) {
    std::sort(spans.begin(), spans.end(),
              [](const SpanRecord* a, const SpanRecord* b) {
                return a->begin < b->begin;
              });
    std::vector<std::uint64_t> open_ends;  // stack of enclosing span ends
    for (const SpanRecord* rec : spans) {
      ASSERT_LT(rec->begin, rec->end);
      while (!open_ends.empty() && open_ends.back() < rec->begin) {
        open_ends.pop_back();
      }
      if (!open_ends.empty()) {
        // Enclosing span must fully contain this one -- no partial overlap.
        ASSERT_LT(rec->end, open_ends.back())
            << "span " << rec->name << " straddles its enclosing span on tid "
            << tid;
      }
      open_ends.push_back(rec->end);
    }
  }
}

// Acceptance: two identical single-threaded logical-clock campaigns produce
// byte-identical Chrome trace JSON.
TEST(ObsTrace, LogicalClockTraceIsByteIdenticalAcrossRuns) {
  if (!kCompiledIn) GTEST_SKIP() << "tracing compiled out";
  TracerSandbox sandbox;
  pcs::set_max_parallelism(1);

  auto run_once = [] {
    auto sw = pinned_switch();
    rt::FabricRuntime runtime(*sw, pinned_opts(), bernoulli(256, 0.3));
    rt::MetricsRegistry metrics;
    Tracer::instance().enable(ClockMode::kLogical);
    runtime.run(metrics);
    Tracer::instance().disable();
    return chrome_trace_json({Tracer::instance().drain()});
  };
  const std::string first = run_once();
  const std::string second = run_once();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
  // Normalized origin: some event starts at ts 0.
  EXPECT_NE(first.find("\"ts\": 0,"), std::string::npos);
}

// Acceptance: the plan executor's words_routed tally reconciles with the
// runtime's delivered-message count -- every routed word delivers exactly
// one queued message under the buffer-retry policy.
TEST(ObsTrace, WordsRoutedReconcilesWithDeliveredMessages) {
  if (!kCompiledIn) GTEST_SKIP() << "tracing compiled out";
  TracerSandbox sandbox;
  auto sw = pinned_switch();
  rt::FabricRuntime runtime(*sw, pinned_opts(), bernoulli(256, 0.3));
  rt::MetricsRegistry metrics;
  Tracer::instance().enable(ClockMode::kLogical);
  runtime.run(metrics);
  Tracer::instance().disable();
  TraceSnapshot snap = Tracer::instance().drain();

  ASSERT_NE(snap.counters.count("plan.words_routed"), 0u);
  EXPECT_EQ(snap.counters.at("plan.words_routed"),
            metrics.counter("total.delivered").value());

  // Epoch spans line up one-to-one with route_batch dispatches.
  std::size_t epoch_spans = 0;
  for (const SpanRecord& rec : snap.spans) {
    if (std::string(rec.name) == "runtime.epoch") ++epoch_spans;
  }
  EXPECT_EQ(epoch_spans, metrics.counter("route_batch_dispatches").value());
}

// The fast-path tally must agree with the scalar path: a clean Revsort
// switch routed through the counting kernel reports the same words_routed.
TEST(ObsTrace, FastPathCountsWordsRoutedToo) {
  if (!kCompiledIn) GTEST_SKIP() << "tracing compiled out";
  TracerSandbox sandbox;
  SwitchSpec spec;
  spec.family = "revsort";
  spec.n = 256;
  spec.m = 192;
  auto sw = make_switch(spec);

  Rng rng(11);
  std::vector<BitVec> patterns;
  std::size_t expected = 0;
  for (int i = 0; i < 8; ++i) {
    patterns.push_back(rng.exact_weight_bits(256, 40 + 5 * i));
  }
  for (const auto& routing : sw->route_batch(patterns)) {
    expected += routing.routed_count();
  }

  Tracer::instance().enable(ClockMode::kLogical);
  auto routings = sw->route_batch(patterns);
  TraceSnapshot snap = Tracer::instance().drain();
  ASSERT_EQ(routings.size(), patterns.size());
  ASSERT_NE(snap.counters.count("plan.route.fastpath"), 0u);
  EXPECT_EQ(snap.counters.at("plan.route.fastpath"), patterns.size());
  EXPECT_EQ(snap.counters.at("plan.words_routed"), expected);
}

TEST(ObsTrace, AggregateSpansRollsUpByName) {
  if (!kCompiledIn) GTEST_SKIP() << "tracing compiled out";
  TracerSandbox sandbox;
  Tracer::instance().enable(ClockMode::kLogical);
  { SpanGuard a("test.a", cat::kPlan); }
  { SpanGuard a("test.a", cat::kPlan); }
  { SpanGuard b("test.b", cat::kPlan); }
  TraceSnapshot snap = Tracer::instance().drain();
  auto stats = aggregate_spans(snap);
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats.at("test.a").count, 2u);
  EXPECT_EQ(stats.at("test.b").count, 1u);
  EXPECT_GT(stats.at("test.a").total_ticks, 0u);
}

TEST(ObsTrace, MergeProfileExportsSpansAndCounters) {
  TraceSnapshot snap;
  snap.clock = ClockMode::kLogical;
  SpanRecord rec;
  rec.name = "stage.x";
  rec.cat = cat::kStage;
  rec.begin = 10;
  rec.end = 25;
  snap.spans = {rec, rec};
  snap.counters["plan.words_routed"] = 99;

  rt::MetricsRegistry metrics;
  rt::merge_profile(snap, metrics);
  EXPECT_EQ(metrics.histogram("profile.span.stage.x").count(), 2u);
  EXPECT_EQ(metrics.histogram("profile.span.stage.x").sum(), 30u);
  EXPECT_EQ(metrics.counter("profile.plan.words_routed").value(), 99u);
}

}  // namespace
}  // namespace pcs::obs
