#include "util/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace pcs {
namespace {

TEST(Parallel, CoversEveryIndexOnce) {
  const std::size_t n = 10000;
  std::vector<std::atomic<int>> hits(n);
  parallel_for(0, n, [&](std::size_t i) { hits[i].fetch_add(1); }, 4);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(Parallel, EmptyRangeIsNoop) {
  bool ran = false;
  parallel_for(5, 5, [&](std::size_t) { ran = true; }, 4);
  parallel_for(7, 3, [&](std::size_t) { ran = true; }, 4);
  EXPECT_FALSE(ran);
}

TEST(Parallel, NonzeroBegin) {
  std::atomic<std::size_t> sum{0};
  parallel_for(10, 20, [&](std::size_t i) { sum.fetch_add(i); }, 3);
  EXPECT_EQ(sum.load(), std::size_t{145});  // 10 + 11 + ... + 19
}

TEST(Parallel, SingleThreadFallback) {
  std::vector<int> order;
  parallel_for(0, 5, [&](std::size_t i) { order.push_back(static_cast<int>(i)); }, 1);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Parallel, ZeroThreadsTreatedAsOne) {
  std::atomic<int> count{0};
  parallel_for(0, 10, [&](std::size_t) { count.fetch_add(1); }, 0);
  EXPECT_EQ(count.load(), 10);
}

TEST(Parallel, ExceptionPropagates) {
  EXPECT_THROW(
      parallel_for(
          0, 100,
          [](std::size_t i) {
            if (i == 57) throw std::runtime_error("boom");
          },
          4),
      std::runtime_error);
}

TEST(Parallel, MoreThreadsThanWork) {
  std::vector<std::atomic<int>> hits(3);
  parallel_for(0, 3, [&](std::size_t i) { hits[i].fetch_add(1); }, 16);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Parallel, DefaultThreadCountPositive) {
  EXPECT_GE(default_thread_count(), 1u);
}

}  // namespace
}  // namespace pcs
