#include "util/parallel.hpp"

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/thread_pool.hpp"

namespace pcs {
namespace {

TEST(Parallel, CoversEveryIndexOnce) {
  const std::size_t n = 10000;
  std::vector<std::atomic<int>> hits(n);
  parallel_for(0, n, [&](std::size_t i) { hits[i].fetch_add(1); }, 4);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(Parallel, EmptyRangeIsNoop) {
  bool ran = false;
  parallel_for(5, 5, [&](std::size_t) { ran = true; }, 4);
  parallel_for(7, 3, [&](std::size_t) { ran = true; }, 4);
  EXPECT_FALSE(ran);
}

TEST(Parallel, NonzeroBegin) {
  std::atomic<std::size_t> sum{0};
  parallel_for(10, 20, [&](std::size_t i) { sum.fetch_add(i); }, 3);
  EXPECT_EQ(sum.load(), std::size_t{145});  // 10 + 11 + ... + 19
}

TEST(Parallel, SingleThreadFallback) {
  std::vector<int> order;
  parallel_for(0, 5, [&](std::size_t i) { order.push_back(static_cast<int>(i)); }, 1);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Parallel, ZeroThreadsTreatedAsOne) {
  std::atomic<int> count{0};
  parallel_for(0, 10, [&](std::size_t) { count.fetch_add(1); }, 0);
  EXPECT_EQ(count.load(), 10);
}

TEST(Parallel, ExceptionPropagates) {
  EXPECT_THROW(
      parallel_for(
          0, 100,
          [](std::size_t i) {
            if (i == 57) throw std::runtime_error("boom");
          },
          4),
      std::runtime_error);
}

TEST(Parallel, MoreThreadsThanWork) {
  std::vector<std::atomic<int>> hits(3);
  parallel_for(0, 3, [&](std::size_t i) { hits[i].fetch_add(1); }, 16);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Parallel, DefaultThreadCountPositive) {
  EXPECT_GE(default_thread_count(), 1u);
}

TEST(Parallel, GrainVariantsCoverEveryIndexOnce) {
  const std::size_t n = 1000;
  for (std::size_t grain : {std::size_t{1}, std::size_t{3}, std::size_t{64},
                            std::size_t{5000}}) {
    std::vector<std::atomic<int>> hits(n);
    parallel_for(0, n, [&](std::size_t i) { hits[i].fetch_add(1); }, 4, grain);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "grain " << grain << " index " << i;
    }
  }
}

TEST(Parallel, ChunksAreDisjointAndComplete) {
  const std::size_t n = 1237;
  std::vector<std::atomic<int>> hits(n);
  parallel_for_chunks(
      0, n,
      [&](std::size_t lo, std::size_t hi) {
        ASSERT_LT(lo, hi);
        ASSERT_LE(hi, n);
        for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
      },
      4, 10);
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1) << i;
}

TEST(Parallel, ChunksEmptyRangeIsNoop) {
  bool ran = false;
  parallel_for_chunks(3, 3, [&](std::size_t, std::size_t) { ran = true; }, 4);
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, GlobalSingletonIsStable) {
  EXPECT_GE(ThreadPool::global().worker_count(), 1u);
  EXPECT_EQ(&ThreadPool::global(), &ThreadPool::global());
}

TEST(ThreadPool, SubmitAndWaitIdle) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int t = 0; t < 100; ++t) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, OnWorkerThreadDetection) {
  ThreadPool pool(1);
  EXPECT_FALSE(pool.on_worker_thread());
  std::atomic<bool> on_worker{false};
  pool.submit([&] { on_worker.store(pool.on_worker_thread()); });
  pool.wait_idle();
  EXPECT_TRUE(on_worker.load());
}

TEST(ThreadPool, ExceptionPropagatesAndPoolSurvives) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.for_range(
          0, 1000,
          [](std::size_t i) {
            if (i == 500) throw std::runtime_error("boom");
          },
          4),
      std::runtime_error);
  // The pool must stay usable after a failed range.
  std::vector<std::atomic<int>> hits(100);
  pool.for_range(0, 100, [&](std::size_t i) { hits[i].fetch_add(1); }, 4);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, NestedRangesDoNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<std::size_t> total{0};
  pool.for_range(
      0, 8,
      [&](std::size_t) {
        pool.for_range(0, 50, [&](std::size_t) { total.fetch_add(1); }, 4);
      },
      4);
  EXPECT_EQ(total.load(), std::size_t{400});
}

TEST(ThreadPool, OversubscribedConcurrentRanges) {
  // Several caller threads share the global pool at once; every range must
  // still cover its indices exactly once.
  constexpr int kCallers = 4;
  constexpr std::size_t kPer = 2000;
  std::array<std::atomic<std::size_t>, kCallers> sums{};
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&sums, c] {
      parallel_for(0, kPer, [&sums, c](std::size_t i) {
        sums[static_cast<std::size_t>(c)].fetch_add(i + 1);
      }, 8);
    });
  }
  for (auto& t : callers) t.join();
  for (int c = 0; c < kCallers; ++c) {
    EXPECT_EQ(sums[static_cast<std::size_t>(c)].load(), kPer * (kPer + 1) / 2);
  }
}

}  // namespace
}  // namespace pcs
