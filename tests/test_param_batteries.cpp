// Parameterized property batteries: TEST_P sweeps over design families and
// workload grids, complementing the targeted unit tests.
#include <gtest/gtest.h>

#include <memory>

#include "message/ack_protocol.hpp"
#include "network/knockout.hpp"
#include "switch/columnsort_switch.hpp"
#include "switch/hyper_switch.hpp"
#include "switch/revsort_switch.hpp"
#include "util/rng.hpp"

namespace pcs::sw {
namespace {

// ---- battery 1: every (design, m-fraction) cell honors the contract -----

enum class Design { kHyper, kRevsort, kColumnsort, kPrefixButterfly };

struct ContractCase {
  Design design;
  double m_fraction;
};

std::unique_ptr<ConcentratorSwitch> build(Design d, std::size_t n, std::size_t m) {
  switch (d) {
    case Design::kHyper:
      return std::make_unique<HyperSwitch>(n, m);
    case Design::kRevsort:
      return std::make_unique<RevsortSwitch>(n, m);
    case Design::kColumnsort:
      return std::make_unique<ColumnsortSwitch>(n / 4, 4, m);
    case Design::kPrefixButterfly:
      return std::make_unique<PrefixButterflyHyperSwitch>(n, m);
  }
  return nullptr;
}

class ContractBattery : public ::testing::TestWithParam<ContractCase> {};

TEST_P(ContractBattery, ContractAcrossTheLoadRange) {
  const auto [design, frac] = GetParam();
  const std::size_t n = 256;
  const auto m = static_cast<std::size_t>(frac * n);
  auto sw = build(design, n, m);
  Rng rng(400 + static_cast<int>(design) * 10 + static_cast<int>(frac * 8));
  for (std::size_t k = 0; k <= n; k += 17) {
    BitVec valid = rng.exact_weight_bits(n, k);
    SwitchRouting r = sw->route(valid);
    ASSERT_TRUE(r.is_partial_injection()) << sw->name() << " k=" << k;
    ASSERT_TRUE(concentration_contract_holds(*sw, valid, r))
        << sw->name() << " k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ContractBattery,
    ::testing::Values(ContractCase{Design::kHyper, 0.25},
                      ContractCase{Design::kHyper, 0.75},
                      ContractCase{Design::kRevsort, 0.25},
                      ContractCase{Design::kRevsort, 0.75},
                      ContractCase{Design::kRevsort, 1.0},
                      ContractCase{Design::kColumnsort, 0.25},
                      ContractCase{Design::kColumnsort, 0.75},
                      ContractCase{Design::kColumnsort, 1.0},
                      ContractCase{Design::kPrefixButterfly, 0.5}));

// ---- battery 2: knockout loss monotone in L across shapes ----------------

class KnockoutBattery
    : public ::testing::TestWithParam<std::pair<std::size_t, double>> {};

TEST_P(KnockoutBattery, LossMonotoneInAcceptLines) {
  const auto [ports, load] = GetParam();
  auto factory = [](std::size_t n, std::size_t m) {
    return std::make_unique<HyperSwitch>(n, m);
  };
  double prev = 1.0;
  for (std::size_t accept : {1u, 2u, 4u, 8u}) {
    pcs::net::KnockoutSwitch sw(ports, accept, factory);
    Rng rng(410);
    auto stats = sw.simulate_uniform(load, 250, rng);
    EXPECT_LE(stats.loss_rate(), prev + 0.02)
        << "ports=" << ports << " load=" << load << " L=" << accept;
    prev = stats.loss_rate();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, KnockoutBattery,
    ::testing::Values(std::pair<std::size_t, double>{16, 0.5},
                      std::pair<std::size_t, double>{16, 1.0},
                      std::pair<std::size_t, double>{64, 0.7},
                      std::pair<std::size_t, double>{32, 0.9}));

// ---- battery 3: ack protocol goodput 1.0 whenever capacity exceeds load --

class AckBattery : public ::testing::TestWithParam<double> {};

TEST_P(AckBattery, UnderProvisionedLoadAlwaysCompletes) {
  const double arrival = GetParam();
  HyperSwitch sw(128, 64);  // capacity 64/round >> arrivals
  Rng rng(420);
  pcs::msg::AckConfig cfg;
  cfg.max_retries = 20;
  auto stats = pcs::msg::simulate_ack_protocol(sw, arrival, 250, cfg, rng);
  EXPECT_EQ(stats.gave_up, 0u) << "arrival " << arrival;
  EXPECT_DOUBLE_EQ(stats.goodput(), 1.0) << "arrival " << arrival;
}

INSTANTIATE_TEST_SUITE_P(Loads, AckBattery, ::testing::Values(0.05, 0.15, 0.3));

}  // namespace
}  // namespace pcs::sw
