#include "switch/perfect_from_partial.hpp"

#include <gtest/gtest.h>

#include "switch/columnsort_switch.hpp"
#include "switch/revsort_switch.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace pcs::sw {
namespace {

TEST(PerfectFromPartial, ConstructorEnforcesCapacity) {
  RevsortSwitch inner(256, 200);  // epsilon = 7*16 = 112, capacity = 88
  ASSERT_EQ(inner.guaranteed_capacity(), 88u);
  EXPECT_NO_THROW(PerfectFromPartial(inner, 128, 88));
  EXPECT_THROW(PerfectFromPartial(inner, 128, 89), pcs::ContractViolation);
  EXPECT_THROW(PerfectFromPartial(inner, 300, 50), pcs::ContractViolation);  // n too big
}

TEST(PerfectFromPartial, DeliversPerfectContract) {
  // Inner: Columnsort r=64, s=8 -> epsilon 49; with m_inner = 512,
  // capacity = 463.  Wrap as a 256-by-200 "perfect" concentrator.
  ColumnsortSwitch inner(64, 8, 512);
  PerfectFromPartial perfect(inner, 256, 200);
  Rng rng(170);
  for (std::size_t k = 0; k <= 256; k += 16) {
    BitVec valid = rng.exact_weight_bits(256, k);
    SwitchRouting r = perfect.route(valid);
    EXPECT_TRUE(r.is_partial_injection());
    EXPECT_GE(r.routed_count(), perfect.guaranteed_routed(k)) << "k=" << k;
  }
}

TEST(PerfectFromPartial, GuaranteeFormula) {
  ColumnsortSwitch inner(64, 8, 512);
  PerfectFromPartial perfect(inner, 256, 200);
  EXPECT_EQ(perfect.guaranteed_routed(0), 0u);
  EXPECT_EQ(perfect.guaranteed_routed(150), 150u);
  EXPECT_EQ(perfect.guaranteed_routed(201), 200u);
  EXPECT_EQ(perfect.guaranteed_routed(256), 200u);
}

TEST(PerfectFromPartial, OverheadFactor) {
  // The paper's 1/alpha wire overhead: inner inputs / wrapper inputs.
  ColumnsortSwitch inner(64, 8, 512);
  PerfectFromPartial perfect(inner, 256, 200);
  EXPECT_DOUBLE_EQ(perfect.input_overhead(), 2.0);
}

TEST(PerfectFromPartial, UnusedInnerInputsStayInvalid) {
  RevsortSwitch inner(64, 64);  // epsilon = 5*8=40 -> capacity 24
  PerfectFromPartial perfect(inner, 32, 24);
  BitVec valid(32, true);
  SwitchRouting r = perfect.route(valid);
  EXPECT_EQ(r.output_of_input.size(), 32u);
  // All 32 offered; at least 24 must be routed.
  EXPECT_GE(r.routed_count(), 24u);
}

}  // namespace
}  // namespace pcs::sw
