#include "message/pipeline.hpp"

#include <gtest/gtest.h>

#include "core/bounds.hpp"
#include "util/assert.hpp"

namespace pcs::msg {
namespace {

TEST(Pipeline, SetupPeriod) {
  PipelineModel m{.payload_bits = 32, .gates_per_cycle = 8};
  EXPECT_EQ(m.setup_period(), 33u);
}

TEST(Pipeline, FlightCyclesRoundsUp) {
  PipelineModel m{.payload_bits = 32, .gates_per_cycle = 8};
  EXPECT_EQ(m.flight_cycles(0), 0u);
  EXPECT_EQ(m.flight_cycles(8), 1u);
  EXPECT_EQ(m.flight_cycles(9), 2u);
  EXPECT_EQ(m.flight_cycles(24), 3u);
}

TEST(Pipeline, LatencyComposition) {
  PipelineModel m{.payload_bits = 16, .gates_per_cycle = 4};
  // Revsort at n = 4096: 3 lg n = 36 gate delays -> 9 flight cycles + 17.
  std::size_t delays = pcs::core::revsort_delay_formula(4096, 0);
  EXPECT_EQ(m.message_latency(delays), 9u + 17u);
}

TEST(Pipeline, ThroughputScalesWithRouted) {
  PipelineModel m{.payload_bits = 31, .gates_per_cycle = 8};
  EXPECT_DOUBLE_EQ(m.messages_per_cycle(64.0), 2.0);
  EXPECT_DOUBLE_EQ(m.payload_bits_per_cycle(64.0), 62.0);
  EXPECT_DOUBLE_EQ(m.messages_per_cycle(0.0), 0.0);
}

TEST(Pipeline, DelayOnlyAffectsLatencyNotThroughput) {
  // The combinational pipeline's key property: a deeper switch adds flight
  // time but does not reduce messages per cycle.
  PipelineModel m{.payload_bits = 32, .gates_per_cycle = 8};
  double fast = m.messages_per_cycle(100.0);
  double slow = m.messages_per_cycle(100.0);
  EXPECT_DOUBLE_EQ(fast, slow);
  EXPECT_LT(m.message_latency(24), m.message_latency(52));
}

TEST(Pipeline, Validation) {
  PipelineModel m{.payload_bits = 8, .gates_per_cycle = 0};
  EXPECT_THROW(m.flight_cycles(10), pcs::ContractViolation);
  PipelineModel ok{.payload_bits = 8, .gates_per_cycle = 4};
  EXPECT_THROW(ok.messages_per_cycle(-1.0), pcs::ContractViolation);
}

}  // namespace
}  // namespace pcs::msg
