// The plan-analysis pass behind the fused executor: gather classification
// (identity / fixed-stride / general), sentinel remapping of constant
// feeds, and the per-family link shapes the fused kernels rely on.
#include "plan/plan_analysis.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "plan/compile.hpp"
#include "plan/plan_executor.hpp"

namespace pcs::plan {
namespace {

std::vector<std::int32_t> identity_map(std::size_t n) {
  std::vector<std::int32_t> src(n);
  for (std::size_t i = 0; i < n; ++i) src[i] = static_cast<std::int32_t>(i);
  return src;
}

/// src[i*cols + j] = j*rows + i: the CM -> RM read of a rows-by-cols mesh.
std::vector<std::int32_t> stride_map(std::size_t rows, std::size_t cols) {
  std::vector<std::int32_t> src(rows * cols);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) {
      src[i * cols + j] = static_cast<std::int32_t>(j * rows + i);
    }
  }
  return src;
}

TEST(PlanAnalysis, ClassifyGatherIdentity) {
  EXPECT_EQ(classify_gather(identity_map(1)), GatherKind::kIdentity);
  EXPECT_EQ(classify_gather(identity_map(64)), GatherKind::kIdentity);
}

TEST(PlanAnalysis, ClassifyGatherStrideSquareAndRectangular) {
  std::size_t rows = 0, cols = 0;
  EXPECT_EQ(classify_gather(stride_map(16, 16), &rows, &cols),
            GatherKind::kStride);
  EXPECT_EQ(rows, 16u);
  EXPECT_EQ(cols, 16u);
  EXPECT_EQ(classify_gather(stride_map(2, 4), &rows, &cols),
            GatherKind::kStride);
  EXPECT_EQ(rows, 2u);
  EXPECT_EQ(cols, 4u);
  EXPECT_EQ(classify_gather(stride_map(64, 8), &rows, &cols),
            GatherKind::kStride);
  EXPECT_EQ(rows, 64u);
  EXPECT_EQ(cols, 8u);
}

TEST(PlanAnalysis, ClassifyGatherGeneral) {
  // A swap breaks both identity and the stride recurrences.
  std::vector<std::int32_t> src = identity_map(8);
  std::swap(src[3], src[6]);
  EXPECT_EQ(classify_gather(src), GatherKind::kGeneral);
  // One wrong entry in an otherwise perfect stride map.
  std::vector<std::int32_t> almost = stride_map(4, 4);
  std::swap(almost[5], almost[10]);
  EXPECT_EQ(classify_gather(almost), GatherKind::kGeneral);
  // Constant feeds are general by definition.
  std::vector<std::int32_t> fed = identity_map(8);
  fed[2] = kFeedIdle;
  EXPECT_EQ(classify_gather(fed), GatherKind::kGeneral);
  fed[2] = kFeedPad;
  EXPECT_EQ(classify_gather(fed), GatherKind::kGeneral);
}

TEST(PlanAnalysis, RevsortLinkShapes) {
  const PlanAnalysis a = analyze_plan(compile_revsort_plan(256, 128));
  ASSERT_EQ(a.links.size(), 3u);
  // Input stage reads the switch inputs in place; the transpose between
  // stages 1 and 2 is the canonical fixed-stride shuffle; the rev-rotate
  // link is a general permutation.
  EXPECT_EQ(a.links[0].kind, GatherKind::kIdentity);
  EXPECT_TRUE(a.links[0].src.empty());
  EXPECT_EQ(a.links[1].kind, GatherKind::kStride);
  EXPECT_EQ(a.links[1].stride_rows, 16u);
  EXPECT_EQ(a.links[1].stride_cols, 16u);
  EXPECT_EQ(a.links[2].kind, GatherKind::kGeneral);
  EXPECT_EQ(a.readout.kind, GatherKind::kStride);
  EXPECT_EQ(a.max_wires, 256u);
  EXPECT_EQ(a.idle_slot, 256u);
  EXPECT_EQ(a.pad_slot, 257u);
  EXPECT_EQ(a.buf_slots, 258u);
  for (const LinkInfo& link : a.links) {
    EXPECT_FALSE(link.has_idle_feeds);
    EXPECT_FALSE(link.has_pad_feeds);
  }
}

TEST(PlanAnalysis, ColumnsortLinkShapes) {
  const PlanAnalysis a = analyze_plan(compile_columnsort_plan(64, 8, 256));
  ASSERT_EQ(a.links.size(), 2u);
  EXPECT_EQ(a.links[0].kind, GatherKind::kIdentity);
  // Stage links hold the *inverse* of the wiring (in_src is "where does
  // wire w read from"), so the CM->RM reshape classifies with the mesh
  // dimensions swapped relative to the readout below.
  EXPECT_EQ(a.links[1].kind, GatherKind::kStride);
  EXPECT_EQ(a.links[1].stride_rows, 8u);
  EXPECT_EQ(a.links[1].stride_cols, 64u);
  EXPECT_EQ(a.readout.kind, GatherKind::kStride);
  EXPECT_EQ(a.readout.stride_rows, 64u);
  EXPECT_EQ(a.readout.stride_cols, 8u);
}

TEST(PlanAnalysis, FullColumnsortPadStageRemapsOntoSentinels) {
  const SwitchPlan plan = compile_full_columnsort_plan(64, 4);
  const PlanAnalysis a = analyze_plan(plan);
  // The widened shift stage has 5 chips of 64 wires: the widest stage in
  // the library, and the only one with constant feeds.
  EXPECT_EQ(a.max_wires, 320u);
  EXPECT_EQ(a.idle_slot, 320u);
  EXPECT_EQ(a.pad_slot, 321u);
  EXPECT_EQ(a.buf_slots, 322u);
  ASSERT_EQ(a.links.size(), plan.stages.size());
  const LinkInfo& pad_link = a.links.back();
  EXPECT_EQ(pad_link.kind, GatherKind::kGeneral);
  EXPECT_TRUE(pad_link.has_pad_feeds);
  EXPECT_TRUE(pad_link.has_idle_feeds);
  ASSERT_EQ(pad_link.src.size(), 320u);
  // Every constant feed sits on its sentinel slot; real sources stay below
  // the upstream width.
  std::size_t pads = 0, idles = 0;
  for (std::size_t w = 0; w < pad_link.src.size(); ++w) {
    const std::int32_t raw = plan.stages.back().in_src[w];
    if (raw == kFeedPad) {
      EXPECT_EQ(pad_link.src[w], a.pad_slot);
      ++pads;
    } else if (raw == kFeedIdle) {
      EXPECT_EQ(pad_link.src[w], a.idle_slot);
      ++idles;
    } else {
      EXPECT_EQ(pad_link.src[w], static_cast<std::uint32_t>(raw));
      EXPECT_LT(pad_link.src[w], 256u);
    }
  }
  EXPECT_GT(pads, 0u);
  EXPECT_GT(idles, 0u);
  // The un-shift readout starts mid-stage, so it is not an identity.
  EXPECT_EQ(a.readout.kind, GatherKind::kGeneral);
}

TEST(PlanAnalysis, FullRevsortReadoutIsIdentity) {
  const PlanAnalysis a = analyze_plan(compile_full_revsort_plan(256));
  EXPECT_EQ(a.readout.kind, GatherKind::kIdentity);
  EXPECT_EQ(a.safety_links.size(), 3u);
}

TEST(PlanAnalysis, SummaryNamesEveryLink) {
  const PlanAnalysis a = analyze_plan(compile_revsort_plan(256, 128));
  const std::string s = a.summary();
  EXPECT_NE(s.find("link 0: identity"), std::string::npos) << s;
  EXPECT_NE(s.find("stride(16x16)"), std::string::npos) << s;
  EXPECT_NE(s.find("readout:"), std::string::npos) << s;
}

TEST(PlanAnalysis, ExecModeDefaultAndOverride) {
  const ExecMode before = default_exec_mode();
  set_default_exec_mode(ExecMode::kLegacy);
  EXPECT_EQ(default_exec_mode(), ExecMode::kLegacy);
  PlanExecutor legacy(compile_revsort_plan(16, 8));
  EXPECT_EQ(legacy.exec_mode(), ExecMode::kLegacy);
  set_default_exec_mode(before);
  PlanExecutor explicit_mode(compile_revsort_plan(16, 8), ExecMode::kFused);
  EXPECT_EQ(explicit_mode.exec_mode(), ExecMode::kFused);
  EXPECT_EQ(explicit_mode.analysis().buf_slots, 18u);
}

}  // namespace
}  // namespace pcs::plan
