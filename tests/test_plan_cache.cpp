// The shared plan cache: hit/miss accounting, ref-counted checkouts under
// concurrency, and byte-budget LRU eviction (in-use entries pinned).
#include "serve/plan_cache.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "util/assert.hpp"

namespace pcs::serve {
namespace {

SwitchSpec revsort_spec(std::size_t n, std::size_t m) {
  SwitchSpec spec;
  spec.family = "revsort";
  spec.n = n;
  spec.m = m;
  return spec;
}

constexpr std::size_t kBigBudget = 256u << 20;

TEST(PlanCache, MissThenHit) {
  PlanCache cache(kBigBudget);
  const SwitchSpec spec = revsort_spec(64, 48);

  const PlanCache::Checkout cold = cache.checkout(spec, plan::ExecMode::kFused);
  ASSERT_TRUE(cold.sw);
  EXPECT_FALSE(cold.hit);
  EXPECT_GT(cold.bytes, 0u);
  EXPECT_EQ(cold.key, spec.digest(plan::ExecMode::kFused));

  const PlanCache::Checkout warm = cache.checkout(spec, plan::ExecMode::kFused);
  EXPECT_TRUE(warm.hit);
  EXPECT_EQ(warm.sw.get(), cold.sw.get());  // literally the same switch

  const PlanCache::Stats s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.entries, 1u);
  EXPECT_EQ(s.bytes, cold.bytes);
}

TEST(PlanCache, ExecModeSplitsTheKey) {
  PlanCache cache(kBigBudget);
  const SwitchSpec spec = revsort_spec(64, 48);
  const PlanCache::Checkout fused = cache.checkout(spec, plan::ExecMode::kFused);
  const PlanCache::Checkout legacy =
      cache.checkout(spec, plan::ExecMode::kLegacy);
  EXPECT_NE(fused.key, legacy.key);
  EXPECT_FALSE(legacy.hit);  // not served the fused entry
  EXPECT_EQ(cache.stats().entries, 2u);
}

TEST(PlanCache, ZeroBudgetCompilesEveryTime) {
  PlanCache cache(0);
  const SwitchSpec spec = revsort_spec(64, 48);
  const PlanCache::Checkout a = cache.checkout(spec, plan::ExecMode::kFused);
  const PlanCache::Checkout b = cache.checkout(spec, plan::ExecMode::kFused);
  ASSERT_TRUE(a.sw);
  ASSERT_TRUE(b.sw);
  EXPECT_FALSE(a.hit);
  EXPECT_FALSE(b.hit);
  EXPECT_NE(a.sw.get(), b.sw.get());
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(PlanCache, BadSpecThrowsAndInsertsNothing) {
  PlanCache cache(kBigBudget);
  SwitchSpec bad = revsort_spec(100, 50);  // not a perfect square
  EXPECT_THROW(cache.checkout(bad, plan::ExecMode::kFused), ContractViolation);
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(PlanCache, LruEvictionUnderByteBudget) {
  // Learn one entry's footprint, then size the budget for roughly two.
  const std::size_t one = [] {
    PlanCache probe(kBigBudget);
    return probe.checkout(revsort_spec(64, 48), plan::ExecMode::kFused).bytes;
  }();
  ASSERT_GT(one, 0u);

  PlanCache cache(2 * one + one / 2);
  // Three same-shape entries distinguished by m -> three keys, same bytes.
  {
    (void)cache.checkout(revsort_spec(64, 16), plan::ExecMode::kFused);
    (void)cache.checkout(revsort_spec(64, 32), plan::ExecMode::kFused);
    // Touch m=16 so m=32 is now the LRU entry.
    (void)cache.checkout(revsort_spec(64, 16), plan::ExecMode::kFused);
    (void)cache.checkout(revsort_spec(64, 48), plan::ExecMode::kFused);
  }  // all checkouts dropped -> everything evictable

  const PlanCache::Stats s = cache.stats();
  EXPECT_GE(s.evictions, 1u);
  EXPECT_LE(s.bytes, 2 * one + one / 2);
  // The survivors are the recently-used entries: m=16 and m=48 hit, m=32
  // (the evicted LRU) misses again.
  EXPECT_TRUE(cache.checkout(revsort_spec(64, 48), plan::ExecMode::kFused).hit);
  EXPECT_TRUE(cache.checkout(revsort_spec(64, 16), plan::ExecMode::kFused).hit);
  EXPECT_FALSE(
      cache.checkout(revsort_spec(64, 32), plan::ExecMode::kFused).hit);
}

TEST(PlanCache, InUseEntriesAreNotEvicted) {
  const std::size_t one = [] {
    PlanCache probe(kBigBudget);
    return probe.checkout(revsort_spec(64, 48), plan::ExecMode::kFused).bytes;
  }();

  PlanCache cache(one + one / 2);  // budget for ~1.5 entries
  // Hold the first checkout while inserting more: the held entry must
  // survive even though it becomes the LRU.
  const PlanCache::Checkout held =
      cache.checkout(revsort_spec(64, 16), plan::ExecMode::kFused);
  (void)cache.checkout(revsort_spec(64, 32), plan::ExecMode::kFused);
  (void)cache.checkout(revsort_spec(64, 48), plan::ExecMode::kFused);

  EXPECT_TRUE(cache.checkout(revsort_spec(64, 16), plan::ExecMode::kFused).hit)
      << "held entry evicted while checked out";
  // The budget transiently overshoots rather than dropping in-use plans.
  EXPECT_GE(cache.stats().bytes, one);
}

TEST(PlanCache, ShrinkingBudgetEvictsImmediately) {
  PlanCache cache(kBigBudget);
  (void)cache.checkout(revsort_spec(64, 16), plan::ExecMode::kFused);
  (void)cache.checkout(revsort_spec(64, 32), plan::ExecMode::kFused);
  ASSERT_EQ(cache.stats().entries, 2u);

  cache.set_byte_budget(1);  // keeps at least one entry (never evicts to zero
                             // on its own unless budget is exactly 0)
  EXPECT_LE(cache.stats().entries, 1u);
  EXPECT_GE(cache.stats().evictions, 1u);
}

// Many threads check out the same key concurrently: everyone must get a
// usable switch, the cache must end with ONE entry, and races between
// concurrent cold compiles must be accounted, not double-inserted.
TEST(PlanCache, ConcurrentCheckoutSharesOneEntry) {
  PlanCache cache(kBigBudget);
  const SwitchSpec spec = revsort_spec(64, 48);

  constexpr std::size_t kThreads = 8;
  std::vector<std::shared_ptr<const plan::PlanSwitch>> held(kThreads);
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &spec, &held, t] {
      for (int i = 0; i < 50; ++i) {
        const PlanCache::Checkout co =
            cache.checkout(spec, plan::ExecMode::kFused);
        ASSERT_TRUE(co.sw);
        held[t] = co.sw;  // keep the last checkout alive across the join
      }
    });
  }
  for (std::thread& th : threads) th.join();

  const PlanCache::Stats s = cache.stats();
  EXPECT_EQ(s.entries, 1u);
  // Every thread's final checkout resolves to the single cached instance.
  const PlanCache::Checkout final_co =
      cache.checkout(spec, plan::ExecMode::kFused);
  for (const auto& sw : held) EXPECT_EQ(sw.get(), final_co.sw.get());
  // All 400 checkouts were answered; cold compiles that lost the insert
  // race are counted as rebuild_races, and hits + misses covers them all.
  EXPECT_EQ(s.hits + s.misses, kThreads * 50u);
  EXPECT_GE(s.misses, 1u);
}

}  // namespace
}  // namespace pcs::serve
