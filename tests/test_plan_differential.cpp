// Bit-for-bit identity of the PlanExecutor against the pre-plan per-family
// LabelMesh recipes (tests/legacy_reference.hpp), across a structured
// pattern zoo, degenerate output counts, faulty plans, and the batch entry
// points.  This is the refactor's contract: compiling a family to the
// shared IR must not move a single message.
#include "plan/plan_switch.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "legacy_reference.hpp"
#include "plan/compile.hpp"
#include "switch/columnsort_switch.hpp"
#include "switch/revsort_switch.hpp"
#include "util/rng.hpp"

namespace pcs::plan {
namespace {

// Structured patterns first (empty, full, prefix, suffix, alternating),
// then random at three densities.
std::vector<BitVec> pattern_zoo(std::size_t n, Rng& rng, int randoms = 12) {
  std::vector<BitVec> zoo;
  zoo.emplace_back(n);  // empty
  BitVec full(n);
  for (std::size_t i = 0; i < n; ++i) full.set(i, true);
  zoo.push_back(full);
  zoo.push_back(BitVec::prefix_ones(n, n / 2));
  BitVec suffix(n);
  for (std::size_t i = n - n / 2; i < n; ++i) suffix.set(i, true);
  zoo.push_back(suffix);
  BitVec alt(n);
  for (std::size_t i = 0; i < n; i += 2) alt.set(i, true);
  zoo.push_back(alt);
  BitVec one(n);
  one.set(rng.below(n), true);
  zoo.push_back(one);
  for (int t = 0; t < randoms; ++t) {
    zoo.push_back(rng.bernoulli_bits(n, (t % 3 + 1) * 0.25));
  }
  return zoo;
}

void expect_matches_legacy(const sw::ConcentratorSwitch& model, const BitVec& valid,
                           const legacy::Reference& ref, const char* what) {
  const sw::SwitchRouting got = model.route(valid);
  EXPECT_EQ(got.output_of_input, ref.routing.output_of_input)
      << what << " on " << model.name();
  EXPECT_EQ(got.input_of_output, ref.routing.input_of_output)
      << what << " on " << model.name();
  EXPECT_EQ(model.nearsorted_valid_bits(valid), ref.nearsorted)
      << what << " nearsorted on " << model.name();
}

/// Batch entry points must agree with the scalar walk lane for lane.  65
/// straddles the 64-lane word width.
void expect_batch_identity(const sw::ConcentratorSwitch& model,
                           const std::vector<BitVec>& batch) {
  const auto routed = model.route_batch(batch);
  const auto near = model.nearsorted_batch(batch);
  ASSERT_EQ(routed.size(), batch.size());
  ASSERT_EQ(near.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(routed[i].output_of_input, model.route(batch[i]).output_of_input)
        << model.name() << " lane " << i;
    EXPECT_EQ(near[i], model.nearsorted_valid_bits(batch[i]))
        << model.name() << " lane " << i;
  }
}

TEST(PlanDifferential, RevsortMatchesLegacyAcrossDegenerateM) {
  Rng rng(4201);
  for (std::size_t n : {4, 64, 256}) {
    for (std::size_t m : {std::size_t{1}, std::size_t{2}, n - 1, n}) {
      if (m < 1 || m > n) continue;
      PlanSwitch sw{compile_revsort_plan(n, m)};
      for (const BitVec& v : pattern_zoo(n, rng)) {
        expect_matches_legacy(sw, v, legacy::revsort(v, m), "revsort");
      }
    }
  }
}

TEST(PlanDifferential, ColumnsortMatchesLegacyAcrossDegenerateM) {
  Rng rng(4202);
  using Shape = std::pair<std::size_t, std::size_t>;
  for (auto [r, s] : std::vector<Shape>{{4, 2}, {16, 4}, {64, 8}}) {
    const std::size_t n = r * s;
    for (std::size_t m : {std::size_t{1}, std::size_t{2}, n - 1, n}) {
      PlanSwitch sw{compile_columnsort_plan(r, s, m)};
      for (const BitVec& v : pattern_zoo(n, rng)) {
        expect_matches_legacy(sw, v, legacy::columnsort(v, r, s, m), "columnsort");
      }
    }
  }
}

TEST(PlanDifferential, MultipassMatchesLegacyBothSchedules) {
  Rng rng(4203);
  const std::size_t r = 16, s = 4, n = r * s;
  for (std::size_t d = 1; d <= 4; ++d) {
    for (auto sched : {ReshapeSchedule::kSame, ReshapeSchedule::kAlternating}) {
      PlanSwitch sw{compile_multipass_plan(r, s, d, n / 2, sched)};
      for (const BitVec& v : pattern_zoo(n, rng, 8)) {
        expect_matches_legacy(sw, v, legacy::multipass(v, r, s, d, n / 2, sched),
                              "multipass");
      }
    }
  }
}

TEST(PlanDifferential, FullSortersMatchLegacy) {
  Rng rng(4204);
  for (std::size_t n : {4, 16, 64}) {
    PlanSwitch sw{compile_full_revsort_plan(n)};
    for (const BitVec& v : pattern_zoo(n, rng, 8)) {
      expect_matches_legacy(sw, v, legacy::full_revsort(v), "full-revsort");
    }
  }
  using Shape = std::pair<std::size_t, std::size_t>;
  for (auto [r, s] : std::vector<Shape>{{2, 1}, {8, 2}, {32, 4}}) {
    PlanSwitch sw{compile_full_columnsort_plan(r, s)};
    for (const BitVec& v : pattern_zoo(r * s, rng, 8)) {
      expect_matches_legacy(sw, v, legacy::full_columnsort(v, r, s),
                            "full-columnsort");
    }
  }
}

TEST(PlanDifferential, FaultyPlansMatchLegacyKillSemantics) {
  Rng rng(4205);
  {
    const std::size_t n = 64, m = n;
    SwitchPlan p = compile_revsort_plan(n, m);
    const std::vector<ChipFault> faults = {{0, 5}, {1, 3}, {2, 6}};
    apply_chip_faults(p, faults);
    PlanSwitch sw{std::move(p)};
    for (const BitVec& v : pattern_zoo(n, rng)) {
      expect_matches_legacy(sw, v, legacy::revsort(v, m, faults),
                            "faulty-revsort");
    }
  }
  {
    const std::size_t r = 16, s = 4, n = r * s, m = n / 2;
    SwitchPlan p = compile_columnsort_plan(r, s, m);
    const std::vector<ChipFault> faults = {{0, 1}, {1, 2}};
    apply_chip_faults(p, faults);
    PlanSwitch sw{std::move(p)};
    for (const BitVec& v : pattern_zoo(n, rng)) {
      expect_matches_legacy(sw, v, legacy::columnsort(v, r, s, m, faults),
                            "faulty-columnsort");
    }
  }
}

TEST(PlanDifferential, BatchPathsAreBitIdenticalToScalar) {
  Rng rng(4206);
  std::vector<std::unique_ptr<sw::ConcentratorSwitch>> switches;
  switches.push_back(std::make_unique<PlanSwitch>(compile_revsort_plan(256, 128)));
  switches.push_back(
      std::make_unique<PlanSwitch>(compile_columnsort_plan(64, 8, 256)));
  switches.push_back(std::make_unique<PlanSwitch>(
      compile_multipass_plan(16, 4, 2, 32, ReshapeSchedule::kAlternating)));
  switches.push_back(std::make_unique<PlanSwitch>(compile_full_revsort_plan(64)));
  switches.push_back(
      std::make_unique<PlanSwitch>(compile_full_columnsort_plan(32, 4)));
  {
    SwitchPlan p = compile_revsort_plan(64, 64);
    apply_chip_faults(p, {ChipFault{1, 2}});
    switches.push_back(std::make_unique<PlanSwitch>(std::move(p)));
  }
  for (const auto& sw : switches) {
    std::vector<BitVec> batch;
    for (int t = 0; t < 65; ++t) {
      batch.push_back(rng.bernoulli_bits(sw->inputs(), (t % 4 + 1) * 0.2));
    }
    expect_batch_identity(*sw, batch);
  }
}

// --- fused engine vs legacy engine ---------------------------------------
//
// The fused executor (gather-through-link chip kernels, dense-prefix
// counting kernels, sentinel-slot lane pipeline) must be bit-for-bit the legacy
// two-pass interpreter on every entry point.  The legacy engine is itself
// pinned against the LabelMesh references above, so this closes the chain.

void expect_engines_agree(const SwitchPlan& plan,
                          const std::vector<std::size_t>& widths, Rng& rng) {
  PlanSwitch fused{SwitchPlan(plan), ExecMode::kFused};
  PlanSwitch legacy{SwitchPlan(plan), ExecMode::kLegacy};
  for (const std::size_t width : widths) {
    std::vector<BitVec> batch;
    batch.reserve(width);
    for (std::size_t t = 0; t < width; ++t) {
      batch.push_back(
          rng.bernoulli_bits(plan.n, static_cast<double>(t % 5) * 0.25));
    }
    const auto fr = fused.route_batch(batch);
    const auto lr = legacy.route_batch(batch);
    const auto fn = fused.nearsorted_batch(batch);
    const auto ln = legacy.nearsorted_batch(batch);
    for (std::size_t i = 0; i < width; ++i) {
      ASSERT_EQ(fr[i].output_of_input, lr[i].output_of_input)
          << plan.name << " width " << width << " pattern " << i;
      ASSERT_EQ(fr[i].input_of_output, lr[i].input_of_output)
          << plan.name << " width " << width << " pattern " << i;
      ASSERT_EQ(fn[i].count_diff(ln[i]), 0u)
          << plan.name << " width " << width << " pattern " << i;
    }
    // Scalar entry points too (the batch paths may take kernels).
    ASSERT_EQ(fused.route(batch[0]).output_of_input,
              legacy.route(batch[0]).output_of_input)
        << plan.name;
  }
}

TEST(PlanDifferential, FusedEngineMatchesLegacyEngineAcrossFamilies) {
  Rng rng(4208);
  // Batch widths straddling the 64-lane word: 1, 63, 64, 65, 128.
  const std::vector<std::size_t> widths = {1, 63, 64, 65, 128};
  expect_engines_agree(compile_revsort_plan(256, 128), widths, rng);
  expect_engines_agree(compile_columnsort_plan(64, 8, 256), widths, rng);
  expect_engines_agree(
      compile_multipass_plan(16, 4, 3, 32, ReshapeSchedule::kAlternating),
      widths, rng);
  expect_engines_agree(compile_full_revsort_plan(64), {1, 65}, rng);
  expect_engines_agree(compile_full_columnsort_plan(64, 4), {1, 65}, rng);
}

TEST(PlanDifferential, FusedEngineMatchesLegacyOnDegenerateM) {
  Rng rng(4209);
  for (const std::size_t n : {std::size_t{64}, std::size_t{256}}) {
    for (const std::size_t m : {std::size_t{1}, std::size_t{2}, n - 1, n}) {
      expect_engines_agree(compile_revsort_plan(n, m), {1, 64}, rng);
    }
  }
  for (const std::size_t m :
       {std::size_t{1}, std::size_t{2}, std::size_t{127}, std::size_t{128}}) {
    expect_engines_agree(compile_columnsort_plan(32, 4, m), {1, 64}, rng);
  }
}

TEST(PlanDifferential, FusedEngineMatchesLegacyOnFaultedPlans) {
  Rng rng(4210);
  {
    SwitchPlan p = compile_revsort_plan(256, 192);
    apply_chip_faults(p, {{0, 5}, {1, 3}, {2, 6}});
    expect_engines_agree(p, {1, 63, 65}, rng);
  }
  {
    SwitchPlan p = compile_columnsort_plan(64, 8, 256);
    apply_chip_faults(p, {{0, 1}, {1, 2}});
    expect_engines_agree(p, {1, 65}, rng);
  }
  {
    // Faulted full Columnsort: the widened pad stage runs through the fused
    // lane pipeline (sentinel pad slot), legacy falls back to scalar walks.
    SwitchPlan p = compile_full_columnsort_plan(64, 4);
    apply_chip_faults(p, {{1, 0}, {3, 2}});
    expect_engines_agree(p, {1, 65}, rng);
  }
  {
    SwitchPlan p = compile_full_revsort_plan(64);
    apply_chip_faults(p, {{2, 1}});
    expect_engines_agree(p, {1, 65}, rng);
  }
}

TEST(PlanDifferential, DenseRevsortKernelMatchesLegacyAtLargeN) {
  // The dense-prefix kernel's decomposition shifts with the pattern: the
  // empty pattern has no dense rows at all, the full pattern is all dense
  // rows, prefix/bernoulli mix both.  The small-m cases (m < side, and m
  // straddling a dense row at side < m < 2*side) pin the boundary-row
  // emission, where only part of a dense row lies below m.
  Rng rng(4211);
  const std::size_t pairs[][2] = {
      {4096, 4096 - 1024}, {65536, 65536 - 16384},
      {65536, 1},          {65536, 300},          {65536, 256}};
  for (const auto& [n, m] : pairs) {
    PlanSwitch fused{compile_revsort_plan(n, m), ExecMode::kFused};
    PlanSwitch legacy{compile_revsort_plan(n, m), ExecMode::kLegacy};
    std::vector<BitVec> batch;
    batch.emplace_back(n);                      // empty
    BitVec full(n);
    for (std::size_t i = 0; i < n; ++i) full.set(i, true);
    batch.push_back(full);                      // every row dense
    batch.push_back(BitVec::prefix_ones(n, n / 3));
    batch.push_back(rng.bernoulli_bits(n, 0.5));
    batch.push_back(rng.bernoulli_bits(n, 0.97));  // nearly-full columns
    const auto fr = fused.route_batch(batch);
    const auto lr = legacy.route_batch(batch);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      ASSERT_EQ(fr[i].output_of_input, lr[i].output_of_input)
          << "n=" << n << " m=" << m << " pattern " << i;
      ASSERT_EQ(fr[i].input_of_output, lr[i].input_of_output)
          << "n=" << n << " m=" << m << " pattern " << i;
    }
  }
}

TEST(PlanDifferential, FamilySwitchesAreTheirCompiledPlans) {
  // The switch classes are thin compilers now; their routes must equal the
  // raw PlanSwitch over the same compiled plan.
  Rng rng(4207);
  sw::RevsortSwitch rev(256, 100);
  PlanSwitch rev_plan{compile_revsort_plan(256, 100)};
  sw::ColumnsortSwitch col(16, 4, 40);
  PlanSwitch col_plan{compile_columnsort_plan(16, 4, 40)};
  for (int t = 0; t < 25; ++t) {
    BitVec a = rng.bernoulli_bits(256, rng.uniform01());
    EXPECT_EQ(rev.route(a).output_of_input, rev_plan.route(a).output_of_input);
    BitVec b = rng.bernoulli_bits(64, rng.uniform01());
    EXPECT_EQ(col.route(b).output_of_input, col_plan.route(b).output_of_input);
  }
}

}  // namespace
}  // namespace pcs::plan
