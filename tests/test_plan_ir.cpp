// The staged-plan IR itself: per-family structure, the tallies the cost
// model and chip_planner read, golden structural digests, and validation.
//
// The golden digests pin the exact wiring each compiler emits.  They only
// change when a compiler's output changes -- which is exactly the event the
// bit-for-bit identity constraint wants surfaced in review, since every
// route in the library flows through these plans.
#include "plan/compile.hpp"

#include <gtest/gtest.h>

#include "sortnet/columnsort.hpp"
#include "sortnet/revsort.hpp"
#include "util/assert.hpp"

namespace pcs::plan {
namespace {

TEST(PlanIR, RevsortStructure) {
  const SwitchPlan p = compile_revsort_plan(256, 128);
  p.validate();
  EXPECT_EQ(p.family, PlanFamily::kRevsort);
  EXPECT_EQ(p.name, "revsort(256,128)");
  EXPECT_EQ(p.n, 256u);
  EXPECT_EQ(p.m, 128u);
  EXPECT_FALSE(p.fully_sorting);
  EXPECT_EQ(p.epsilon, sortnet::algorithm1_dirty_row_bound(16) * 16);
  ASSERT_EQ(p.stages.size(), 3u);
  for (const PlanStage& st : p.stages) {
    EXPECT_EQ(st.chips, 16u);
    EXPECT_EQ(st.width, 16u);
    EXPECT_EQ(st.in_src.size(), 256u);
    EXPECT_FALSE(st.any_dead());
  }
  // Only the row stage carries the barrel shifters (Figure 4).
  EXPECT_FALSE(p.stages[0].has_shifter);
  EXPECT_TRUE(p.stages[1].has_shifter);
  EXPECT_FALSE(p.stages[2].has_shifter);
  EXPECT_EQ(p.fast_path, FastPathKind::kRevsortCount);
  EXPECT_EQ(p.fp_side, 16u);
  ASSERT_EQ(p.fp_rev.size(), 16u);
  EXPECT_EQ(p.fp_rev[1], 8u);  // rev of 0001 over 4 bits
  EXPECT_EQ(p.readout.size(), 256u);
  EXPECT_TRUE(p.safety_stages.empty());
}

TEST(PlanIR, ColumnsortStructure) {
  const SwitchPlan p = compile_columnsort_plan(64, 8, 256);
  p.validate();
  EXPECT_EQ(p.family, PlanFamily::kColumnsort);
  EXPECT_EQ(p.name, "columnsort(r=64,s=8,m=256)");
  EXPECT_EQ(p.epsilon, sortnet::algorithm2_epsilon_bound(8));
  ASSERT_EQ(p.stages.size(), 2u);
  for (const PlanStage& st : p.stages) {
    EXPECT_EQ(st.chips, 8u);
    EXPECT_EQ(st.width, 64u);
    EXPECT_FALSE(st.has_shifter);
  }
  EXPECT_EQ(p.fast_path, FastPathKind::kColumnsortCount);
  EXPECT_EQ(p.fp_r, 64u);
  EXPECT_EQ(p.fp_s, 8u);
}

TEST(PlanIR, MultipassAndFullSortStructure) {
  const SwitchPlan mp =
      compile_multipass_plan(16, 4, 3, 32, ReshapeSchedule::kAlternating);
  mp.validate();
  EXPECT_EQ(mp.family, PlanFamily::kMultipass);
  EXPECT_EQ(mp.stages.size(), 4u);  // d passes + the final sort
  EXPECT_EQ(mp.fast_path, FastPathKind::kNone);

  const SwitchPlan fr = compile_full_revsort_plan(64);
  fr.validate();
  EXPECT_EQ(fr.family, PlanFamily::kFullRevsort);
  EXPECT_TRUE(fr.fully_sorting);
  EXPECT_EQ(fr.epsilon, 0u);
  const std::size_t reps = sortnet::full_revsort_repetitions(8);
  EXPECT_EQ(fr.stages.size(), 2 * reps + 8);
  EXPECT_EQ(fr.safety_stages.size(), 3u);
  EXPECT_GE(fr.safety_limit, 1u);

  const SwitchPlan fc = compile_full_columnsort_plan(32, 4);
  fc.validate();
  EXPECT_EQ(fc.family, PlanFamily::kFullColumnsort);
  EXPECT_TRUE(fc.fully_sorting);
  ASSERT_EQ(fc.stages.size(), 4u);
  // The shift stage is the library's one non-bijective link: kFeedPad wires.
  bool saw_pad = false;
  for (std::int32_t src : fc.stages[3].in_src) saw_pad |= src == kFeedPad;
  EXPECT_TRUE(saw_pad);
}

TEST(PlanIR, TalliesMatchThePaperFormulas) {
  // Revsort (Section 4): v chips per stage, shifters on the row stage,
  // area 2n^2 + 3v*v^2, volume 4vn.
  const std::size_t n = 256, v = 16;
  const SwitchPlan p = compile_revsort_plan(n, 128);
  EXPECT_EQ(p.chip_passes(), 3u);
  EXPECT_EQ(p.board_count(), 3 * v);
  EXPECT_EQ(p.shifter_count(), v);
  EXPECT_EQ(p.chip_count(), 3 * v + v);
  EXPECT_EQ(p.max_pins_per_chip(), 2 * v + 4);  // + lg v shift bits
  EXPECT_EQ(p.area_2d(), 2 * n * n + 3 * v * v * v);
  EXPECT_EQ(p.volume_3d(), 4 * v * n);

  // Columnsort (Section 5): s chips of r wires per stage, area
  // n^2 + 2s*r^2, volume 2s*r^2 + s^2*(r/s)^2.
  const std::size_t r = 64, s = 8;
  const SwitchPlan c = compile_columnsort_plan(r, s, r * s);
  EXPECT_EQ(c.chip_passes(), 2u);
  EXPECT_EQ(c.chip_count(), 2 * s);
  EXPECT_EQ(c.shifter_count(), 0u);
  EXPECT_EQ(c.board_types(), 1u);  // one board design, reused
  EXPECT_EQ(c.max_pins_per_chip(), 2 * r);
  EXPECT_EQ(c.area_2d(), (r * s) * (r * s) + 2 * s * r * r);
  EXPECT_EQ(c.connector_count(), s * s);
  EXPECT_EQ(c.volume_3d(), 2 * s * r * r + s * s * (r / s) * (r / s));
}

TEST(PlanIR, GoldenDigests) {
  // Structural fingerprints of the compiled wiring.  A change here means
  // the switch hardware itself changed -- update only with a differential
  // run proving route identity (tests/test_plan_differential.cpp).
  EXPECT_EQ(compile_revsort_plan(256, 128).digest(), 0xcc4caff900185987ull);
  EXPECT_EQ(compile_revsort_plan(1024, 1024).digest(), 0x010dc0aa78764110ull);
  EXPECT_EQ(compile_columnsort_plan(64, 8, 256).digest(), 0x6e8451b8410cba90ull);
  EXPECT_EQ(compile_columnsort_plan_beta(512, 0.75, 256).digest(),
            0x99be1c91a7661604ull);
  EXPECT_EQ(
      compile_multipass_plan(16, 4, 3, 32, ReshapeSchedule::kAlternating).digest(),
      0x103fea2bc880aff0ull);
  EXPECT_EQ(compile_multipass_plan(16, 4, 2, 64, ReshapeSchedule::kSame).digest(),
            0xab83e061583b8049ull);
  EXPECT_EQ(compile_full_revsort_plan(64).digest(), 0x569aab3746ab4ee2ull);
  EXPECT_EQ(compile_full_columnsort_plan(32, 4).digest(), 0x79d1fc849b7af6b5ull);
}

TEST(PlanIR, DigestSeesShapeWiringAndFaults) {
  const std::uint64_t base = compile_revsort_plan(64, 64).digest();
  EXPECT_NE(base, compile_revsort_plan(64, 32).digest());
  EXPECT_NE(base, compile_columnsort_plan(8, 8, 64).digest());

  SwitchPlan p = compile_revsort_plan(64, 64);
  apply_chip_faults(p, {ChipFault{1, 3}});
  EXPECT_EQ(p.digest(), 0x185c92e9f766bde9ull);
  EXPECT_NE(p.digest(), base);
}

TEST(PlanIR, SummaryNamesEveryStage) {
  const SwitchPlan p = compile_revsort_plan(64, 64);
  const std::string s = p.summary();
  EXPECT_NE(s.find("revsort(64,64)"), std::string::npos);
  EXPECT_NE(s.find("stage"), std::string::npos);
  // One line per stage plus header and tallies.
  std::size_t lines = 0;
  for (char ch : s) lines += ch == '\n';
  EXPECT_GE(lines, p.stages.size());
}

TEST(PlanIR, ValidateRejectsMalformedPlans) {
  {
    SwitchPlan p = compile_revsort_plan(64, 64);
    p.readout[0] = 1000;  // beyond the last stage's wires
    EXPECT_THROW(p.validate(), pcs::ContractViolation);
  }
  {
    SwitchPlan p = compile_revsort_plan(64, 64);
    p.stages[1].in_src[5] = 64;  // beyond the previous stage's wires
    EXPECT_THROW(p.validate(), pcs::ContractViolation);
  }
  {
    SwitchPlan p = compile_revsort_plan(64, 64);
    p.stages[2].dead.resize(3);  // dead flags must cover every chip
    EXPECT_THROW(p.validate(), pcs::ContractViolation);
  }
}

}  // namespace
}  // namespace pcs::plan
