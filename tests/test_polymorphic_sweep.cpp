// Cross-design sweeps through the common ConcentratorSwitch interface:
// every switch family in the library is driven through the same checks --
// partial injection, count conservation, contract, Lemma 2, and clocked
// payload integrity -- in one place.  New switch classes added to the
// factory list below get the whole battery for free.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/lemmas.hpp"
#include "message/clocked_sim.hpp"
#include "switch/columnsort_switch.hpp"
#include "switch/comparator_switch.hpp"
#include "plan/compile.hpp"
#include "plan/plan_switch.hpp"
#include "switch/full_sort_hyper.hpp"
#include "switch/hyper_switch.hpp"
#include "switch/multipass_switch.hpp"
#include "switch/revsort_switch.hpp"
#include "util/rng.hpp"

namespace pcs::sw {
namespace {

std::vector<std::unique_ptr<ConcentratorSwitch>> all_switches() {
  std::vector<std::unique_ptr<ConcentratorSwitch>> out;
  out.push_back(std::make_unique<HyperSwitch>(64, 40));
  out.push_back(std::make_unique<PrefixButterflyHyperSwitch>(64, 40));
  out.push_back(std::make_unique<RevsortSwitch>(64, 40));
  out.push_back(std::make_unique<ColumnsortSwitch>(16, 4, 40));
  out.push_back(std::make_unique<MultipassColumnsortSwitch>(16, 4, 2, 40));
  out.push_back(std::make_unique<MultipassColumnsortSwitch>(
      16, 4, 3, 40, ReshapeSchedule::kAlternating));
  out.push_back(std::make_unique<FullRevsortHyper>(64));
  out.push_back(std::make_unique<FullColumnsortHyper>(32, 2));
  out.push_back(
      std::make_unique<ComparatorSwitch>(ComparatorSwitch::batcher_hyper(64, 40)));
  plan::SwitchPlan faulty = plan::compile_revsort_plan(64, 40);
  plan::apply_chip_faults(faulty, {plan::ChipFault{1, 2}});
  out.push_back(std::make_unique<plan::PlanSwitch>(std::move(faulty)));
  return out;
}

TEST(PolymorphicSweep, RoutingInvariantsEverywhere) {
  auto switches = all_switches();
  Rng rng(360);
  for (const auto& sw : switches) {
    for (int t = 0; t < 15; ++t) {
      BitVec valid = rng.bernoulli_bits(sw->inputs(), rng.uniform01());
      SwitchRouting r = sw->route(valid);
      ASSERT_TRUE(r.is_partial_injection()) << sw->name();
      ASSERT_LE(r.routed_count(), valid.count()) << sw->name();
      ASSERT_EQ(r.output_of_input.size(), sw->inputs()) << sw->name();
      ASSERT_EQ(r.input_of_output.size(), sw->outputs()) << sw->name();
      // Every routed output points at a genuinely valid input.
      for (std::size_t j = 0; j < sw->outputs(); ++j) {
        std::int32_t src = r.input_of_output[j];
        if (src >= 0) {
          ASSERT_TRUE(valid.get(static_cast<std::size_t>(src))) << sw->name();
        }
      }
    }
  }
}

TEST(PolymorphicSweep, ArrangementConservesCount) {
  auto switches = all_switches();
  Rng rng(361);
  for (const auto& sw : switches) {
    // Fault-injected switches drop messages by design; skip conservation.
    if (sw->name().find("faulty") != std::string::npos) continue;
    for (int t = 0; t < 10; ++t) {
      BitVec valid = rng.bernoulli_bits(sw->inputs(), 0.5);
      EXPECT_EQ(sw->nearsorted_valid_bits(valid).count(), valid.count())
          << sw->name();
    }
  }
}

TEST(PolymorphicSweep, ContractWhereAdvertised) {
  auto switches = all_switches();
  Rng rng(362);
  for (const auto& sw : switches) {
    if (sw->epsilon_bound() >= sw->inputs()) continue;  // no guarantee (faulty)
    for (std::size_t k = 0; k <= sw->inputs(); k += 9) {
      BitVec valid = rng.exact_weight_bits(sw->inputs(), k);
      SwitchRouting r = sw->route(valid);
      EXPECT_TRUE(concentration_contract_holds(*sw, valid, r))
          << sw->name() << " k=" << k;
    }
  }
}

TEST(PolymorphicSweep, ClockedPayloadsIntactEverywhere) {
  auto switches = all_switches();
  Rng rng(363);
  for (const auto& sw : switches) {
    BitVec valid = rng.bernoulli_bits(sw->inputs(), 0.4);
    pcs::msg::MessageBatch batch = pcs::msg::random_batch(valid, 16, 4, rng);
    pcs::msg::ClockedSimResult result = pcs::msg::run_clocked(*sw, batch);
    EXPECT_TRUE(result.payloads_intact(batch)) << sw->name();
    EXPECT_EQ(result.delivered.size() + result.congested.size(), batch.count())
        << sw->name();
  }
}

TEST(PolymorphicSweep, Lemma2HoldsOnMeasuredEpsilon) {
  auto switches = all_switches();
  Rng rng(364);
  for (const auto& sw : switches) {
    if (sw->name().find("faulty") != std::string::npos) continue;
    for (int t = 0; t < 10; ++t) {
      BitVec valid = rng.bernoulli_bits(sw->inputs(), rng.uniform01());
      pcs::core::Lemma2Check check = pcs::core::check_lemma2(*sw, valid);
      EXPECT_TRUE(check.holds) << sw->name() << ": " << check.detail;
    }
  }
}

}  // namespace
}  // namespace pcs::sw
