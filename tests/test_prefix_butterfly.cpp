#include "hyper/prefix_butterfly.hpp"

#include <gtest/gtest.h>

#include "hyper/hyperconcentrator.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace pcs::hyper {
namespace {

TEST(PrefixButterfly, RequiresPowerOfTwo) {
  EXPECT_THROW(PrefixButterflySwitch(12), pcs::ContractViolation);
  EXPECT_NO_THROW(PrefixButterflySwitch(16));
}

TEST(PrefixButterfly, MatchesStableHyperconcentrator) {
  // Same contract AND the same stable routing as the combinational chip:
  // the j-th valid input lands on output j.
  Rng rng(330);
  for (std::size_t n : {4u, 16u, 64u, 256u}) {
    PrefixButterflySwitch pb(n);
    Hyperconcentrator model(n);
    for (int t = 0; t < 30; ++t) {
      BitVec valid = rng.bernoulli_bits(n, rng.uniform01());
      Routing a = pb.route(valid);
      Routing b = model.route(valid);
      EXPECT_EQ(a.output_of_input, b.output_of_input) << "n=" << n;
      EXPECT_EQ(a.input_of_output, b.input_of_output) << "n=" << n;
    }
  }
}

TEST(PrefixButterfly, ConflictFreeExhaustively) {
  // The load-bearing claim: butterfly self-routing of every concentration
  // pattern is conflict-free.  Checked over all 2^16 patterns at n = 16.
  const std::size_t n = 16;
  PrefixButterflySwitch pb(n);
  for (std::uint32_t p = 0; p < (1u << n); ++p) {
    BitVec valid(n);
    for (std::size_t i = 0; i < n; ++i) valid.set(i, (p >> i) & 1u);
    ASSERT_TRUE(pb.route_traced(valid).conflict_free) << "pattern " << p;
  }
}

TEST(PrefixButterfly, ConflictFreeRandomLarge) {
  PrefixButterflySwitch pb(1024);
  Rng rng(331);
  for (int t = 0; t < 100; ++t) {
    BitVec valid = rng.bernoulli_bits(1024, rng.uniform01());
    EXPECT_TRUE(pb.route_traced(valid).conflict_free) << "t=" << t;
  }
}

TEST(PrefixButterfly, TraceShapeAndConservation) {
  PrefixButterflySwitch pb(64);
  Rng rng(332);
  BitVec valid = rng.bernoulli_bits(64, 0.5);
  auto trace = pb.route_traced(valid);
  ASSERT_EQ(trace.rows.size(), pb.butterfly_stages() + 1);
  // Every stage carries exactly the valid messages, no duplicates.
  for (const auto& stage : trace.rows) {
    std::size_t count = 0;
    std::vector<bool> seen(64, false);
    for (std::int32_t src : stage) {
      if (src == kIdle) continue;
      ++count;
      ASSERT_FALSE(seen[static_cast<std::size_t>(src)]);
      seen[static_cast<std::size_t>(src)] = true;
    }
    EXPECT_EQ(count, valid.count());
  }
}

TEST(PrefixButterfly, StageCountsAreLgN) {
  PrefixButterflySwitch pb(256);
  EXPECT_EQ(pb.prefix_steps(), 8u);
  EXPECT_EQ(pb.butterfly_stages(), 8u);
  PrefixButterflySwitch tiny(1);
  EXPECT_EQ(tiny.prefix_steps(), 0u);
}

}  // namespace
}  // namespace pcs::hyper
