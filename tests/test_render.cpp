#include "cost/render.hpp"

#include <gtest/gtest.h>

#include "util/assert.hpp"

namespace pcs::cost {
namespace {

TEST(Render, FloorplanContainsStagesAndWiring) {
  Floorplan2D plan = revsort_floorplan(8);
  std::string art = render_floorplan(plan, 4);
  EXPECT_NE(art.find('1'), std::string::npos);  // stage-1 chips
  EXPECT_NE(art.find('2'), std::string::npos);
  EXPECT_NE(art.find('3'), std::string::npos);
  EXPECT_NE(art.find('/'), std::string::npos);  // crossbar hatching
  EXPECT_NE(art.find("legend"), std::string::npos);
}

TEST(Render, FloorplanDimensionsScale) {
  Floorplan2D plan = columnsort_floorplan(8, 4);
  std::string coarse = render_floorplan(plan, 8);
  std::string fine = render_floorplan(plan, 2);
  EXPECT_LT(coarse.size(), fine.size());
}

TEST(Render, FloorplanGuards) {
  Floorplan2D plan = revsort_floorplan(64);  // width 8384
  EXPECT_THROW(render_floorplan(plan, 1), pcs::ContractViolation);
  EXPECT_THROW(render_floorplan(plan, 0), pcs::ContractViolation);
  EXPECT_NO_THROW(render_floorplan(plan, 64));
}

TEST(Render, PackagingListsStacksAndConnectors) {
  std::string art = render_packaging(columnsort_packaging(64, 8));
  EXPECT_NE(art.find("stack 1"), std::string::npos);
  EXPECT_NE(art.find("stack 2"), std::string::npos);
  EXPECT_NE(art.find("transposers"), std::string::npos);
  EXPECT_NE(art.find("total volume"), std::string::npos);
}

TEST(Render, PackagingTruncatesLongStacks) {
  std::string art = render_packaging(revsort_packaging(64));
  EXPECT_NE(art.find("more)"), std::string::npos);
}

}  // namespace
}  // namespace pcs::cost
