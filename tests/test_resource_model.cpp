#include "cost/resource_model.hpp"

#include <gtest/gtest.h>

#include "util/assert.hpp"
#include "util/mathutil.hpp"

namespace pcs::cost {
namespace {

TEST(DelayModel, ChipDelayFormula) {
  DelayModel dm;  // pad_delay = 2
  EXPECT_EQ(dm.chip_delay(16), 2u * 4u + 2u);
  EXPECT_EQ(dm.chip_delay(1), 2u);
  DelayModel zero{.pad_delay = 0, .shifter_delay = 0};
  EXPECT_EQ(zero.chip_delay(64), 12u);  // exactly 2 lg n
}

TEST(ResourceModel, HyperChipBaseline) {
  ResourceReport r = hyper_chip_report(1024, 512);
  EXPECT_EQ(r.pins_per_chip, 2048u);  // the pin wall the paper motivates
  EXPECT_EQ(r.chip_count, 1u);
  EXPECT_EQ(r.gate_delays, 2u * 10u + 2u);
  EXPECT_DOUBLE_EQ(r.load_ratio, 1.0);
}

TEST(ResourceModel, RevsortPaperFormulas) {
  // n = 4096, sqrt(n) = 64: pins <= 2 sqrt(n) + ceil(lg n / 2) = 128 + 6.
  ResourceReport r = revsort_report(4096, 2048);
  EXPECT_EQ(r.pins_per_chip, 2u * 64u + 6u);
  EXPECT_EQ(r.chip_count, 4u * 64u);  // 3 sqrt(n) hypers + sqrt(n) shifters
  EXPECT_EQ(r.board_count, 3u * 64u);
  EXPECT_EQ(r.board_types, 2u);
  EXPECT_EQ(r.chip_passes, 3u);
  // Delay = 3 * (2 lg 64 + pad) + shifter = 3 * 14 + 1 with defaults.
  EXPECT_EQ(r.gate_delays, 43u);
  // Volume = 4 n^{3/2}: stacks of side boards, stack 2 doubled.
  EXPECT_EQ(r.volume_3d, 4u * 64u * 4096u);
  EXPECT_EQ(r.epsilon, (2u * 8u - 1u) * 64u);
}

TEST(ResourceModel, RevsortDelayIsThreeLgNPlusO1) {
  DelayModel zero{.pad_delay = 0, .shifter_delay = 0};
  for (std::size_t n : {16u, 256u, 4096u, 65536u}) {
    ResourceReport r = revsort_report(n, n / 2, zero);
    EXPECT_EQ(r.gate_delays, 3u * ceil_log2(n) / 1u) << n;  // 3 * 2 * lg sqrt(n)
  }
}

TEST(ResourceModel, ColumnsortPaperFormulas) {
  // r = 256, s = 16 (n = 4096, beta = 2/3): pins 2r, chips 2s.
  ResourceReport r = columnsort_report(256, 16, 2048);
  EXPECT_EQ(r.pins_per_chip, 512u);
  EXPECT_EQ(r.chip_count, 32u);
  EXPECT_EQ(r.board_count, 32u);
  EXPECT_EQ(r.connector_count, 256u);  // s^2
  EXPECT_EQ(r.epsilon, 225u);          // (16-1)^2
  EXPECT_EQ(r.chip_passes, 2u);
  DelayModel zero{.pad_delay = 0, .shifter_delay = 0};
  EXPECT_EQ(columnsort_report(256, 16, 2048, zero).gate_delays, 4u * 8u);  // 4 lg r
  // Volume: 2 s r^2 + s^2 (r/s)^2 = 2*16*65536 + 256*256.
  EXPECT_EQ(r.volume_3d, 2u * 16u * 65536u + 256u * 256u);
}

TEST(ResourceModel, VolumeScalingExponents) {
  // Revsort: volume ~ n^{3/2} -> quadrupling n multiplies volume by 8.
  ResourceReport a = revsort_report(256, 128);
  ResourceReport b = revsort_report(4096, 2048);  // n x16 -> volume x64
  EXPECT_EQ(b.volume_3d / a.volume_3d, 64u);
  // Columnsort at beta = 1/2 (r = s = sqrt(n)): same n^{3/2} law dominates.
  ResourceReport c = columnsort_report(16, 16, 128);
  ResourceReport d = columnsort_report(64, 64, 2048);
  double ratio = static_cast<double>(d.volume_3d) / static_cast<double>(c.volume_3d);
  EXPECT_NEAR(ratio, 64.0, 8.0);
}

TEST(ResourceModel, PinVsChipTradeoffAcrossBeta) {
  // Table 1's tradeoff: raising beta raises pins and lowers chip count.
  const std::size_t n = 4096, m = 2048;
  ResourceReport b12 = columnsort_report(64, 64, m);    // beta = 1/2
  ResourceReport b34 = columnsort_report(512, 8, m);    // beta = 3/4
  EXPECT_LT(b12.pins_per_chip, b34.pins_per_chip);
  EXPECT_GT(b12.chip_count, b34.chip_count);
  EXPECT_LT(b12.gate_delays, b34.gate_delays);
  EXPECT_LT(b12.volume_3d, b34.volume_3d);
  EXPECT_LT(b12.load_ratio, b34.load_ratio);  // fewer columns -> better alpha
  (void)n;
}

TEST(ResourceModel, FullRevsortReport) {
  ResourceReport r = full_revsort_report(4096);  // side 64, reps 3, passes 14
  EXPECT_EQ(r.chip_passes, 14u);
  EXPECT_EQ(r.chip_count, 14u * 64u + 3u * 64u);
  EXPECT_DOUBLE_EQ(r.load_ratio, 1.0);
  EXPECT_EQ(r.epsilon, 0u);
  // Our structural delay vs the paper's printed formula (documented x2 gap).
  DelayModel zero{.pad_delay = 0, .shifter_delay = 0};
  ResourceReport rz = full_revsort_report(4096, zero);
  EXPECT_EQ(rz.gate_delays, 14u * 12u);  // passes * 2 lg 64
  EXPECT_EQ(paper_full_revsort_delay_formula(4096), 4u * 12u * 4u + 8u * 12u);
}

TEST(ResourceModel, FullColumnsortReport) {
  ResourceReport r = full_columnsort_report(128, 8);
  EXPECT_EQ(r.chip_passes, 4u);
  EXPECT_EQ(r.chip_count, 3u * 8u + 9u);
  DelayModel zero{.pad_delay = 0, .shifter_delay = 0};
  EXPECT_EQ(full_columnsort_report(128, 8, zero).gate_delays, 4u * 2u * 7u);
}

TEST(ResourceModel, ShapeValidation) {
  EXPECT_THROW(revsort_report(32, 16), pcs::ContractViolation);
  EXPECT_THROW(columnsort_report(10, 4, 20), pcs::ContractViolation);
  EXPECT_THROW(full_columnsort_report(16, 4), pcs::ContractViolation);
}

TEST(ResourceModel, ReportToStringMentionsDesign) {
  ResourceReport r = revsort_report(256, 128);
  EXPECT_NE(r.to_string().find("revsort"), std::string::npos);
}


TEST(ResourceModel, PartitionedHyperBlowup) {
  // Section 1: Omega((n/p)^2) chips when tiling the crossbar chip.
  ResourceReport r = partitioned_hyper_report(4096, 512);  // x = 128
  EXPECT_EQ(r.chip_count, 32u * 32u);
  EXPECT_EQ(r.pins_per_chip, 512u);
  EXPECT_EQ(r.chip_passes, 64u);
  // Quadratic in 1/pins: halving the pin budget quadruples the chips.
  ResourceReport half = partitioned_hyper_report(4096, 256);
  EXPECT_EQ(half.chip_count, 4u * r.chip_count);
  // And vastly more chips than the Revsort design at the same pin class.
  ResourceReport rev = revsort_report(4096, 2048);
  EXPECT_GT(r.chip_count, 3u * rev.chip_count);
  EXPECT_THROW(partitioned_hyper_report(4096, 4), pcs::ContractViolation);
}

TEST(ResourceModel, PartitionedHyperDegeneratesToSingleChip) {
  // With a pin budget covering the whole chip, one tile suffices.
  ResourceReport r = partitioned_hyper_report(64, 1024);
  EXPECT_EQ(r.chip_count, 1u);
  EXPECT_EQ(r.pins_per_chip, 4u * 64u);
}

}  // namespace
}  // namespace pcs::cost
