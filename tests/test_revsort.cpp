#include "sortnet/revsort.hpp"

#include <gtest/gtest.h>

#include "sortnet/mesh_ops.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace pcs::sortnet {
namespace {

BitMatrix random_square(std::size_t side, double p, Rng& rng) {
  return BitMatrix::from_row_major(rng.bernoulli_bits(side * side, p), side, side);
}

TEST(Revsort, RequiresSquarePow2) {
  BitMatrix bad1(4, 8);
  EXPECT_THROW(revsort_algorithm1(bad1), pcs::ContractViolation);
  BitMatrix bad2(6, 6);
  EXPECT_THROW(revsort_algorithm1(bad2), pcs::ContractViolation);
}

TEST(Revsort, Algorithm1EndsColumnSorted) {
  Rng rng(30);
  BitMatrix m = random_square(8, 0.5, rng);
  revsort_algorithm1(m);
  for (std::size_t j = 0; j < 8; ++j) {
    EXPECT_TRUE(m.col(j).is_sorted_nonincreasing());
  }
}

TEST(Revsort, Algorithm1PreservesCount) {
  Rng rng(31);
  for (double p : {0.1, 0.5, 0.9}) {
    BitMatrix m = random_square(16, p, rng);
    std::size_t before = m.count();
    revsort_algorithm1(m);
    EXPECT_EQ(m.count(), before);
  }
}

TEST(Revsort, DirtyRowBoundFormula) {
  // side = 16 -> n = 256, n^{1/4} = 4, bound = 2*4 - 1 = 7.
  EXPECT_EQ(algorithm1_dirty_row_bound(16), 7u);
  // side = 64 -> n^{1/4} = 8, bound = 15.
  EXPECT_EQ(algorithm1_dirty_row_bound(64), 15u);
  // Non-square side rounds the root up: side = 8 -> ceil(sqrt 8) = 3 -> 5.
  EXPECT_EQ(algorithm1_dirty_row_bound(8), 5u);
}

// Theorem 3's prerequisite: dirty rows after Algorithm 1 stay within
// 2*ceil(n^{1/4}) - 1, over many random densities.
class RevsortDirtyRows : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RevsortDirtyRows, WithinPaperBound) {
  const std::size_t side = GetParam();
  const std::size_t bound = algorithm1_dirty_row_bound(side);
  Rng rng(32 + side);
  for (int trial = 0; trial < 60; ++trial) {
    double p = rng.uniform01();
    BitMatrix m = random_square(side, p, rng);
    revsort_algorithm1(m);
    EXPECT_LE(m.dirty_row_count(), bound)
        << "side=" << side << " trial=" << trial << " p=" << p;
  }
}

INSTANTIATE_TEST_SUITE_P(Sides, RevsortDirtyRows,
                         ::testing::Values(4, 8, 16, 32, 64, 128));

TEST(Revsort, DirtyRowsAreContiguousBand) {
  // After the final column sort, clean-1 rows precede the dirty band which
  // precedes clean-0 rows (needed for Lemma 1 to apply to the row-major
  // read-out).
  Rng rng(33);
  for (int trial = 0; trial < 30; ++trial) {
    BitMatrix m = random_square(16, rng.uniform01(), rng);
    revsort_algorithm1(m);
    enum { kOnes, kDirty, kZeros } phase = kOnes;
    for (std::size_t i = 0; i < m.rows(); ++i) {
      std::size_t ones = m.row_count(i);
      if (ones == m.cols()) {
        EXPECT_EQ(phase, kOnes) << "clean-1 row after the band, trial " << trial;
      } else if (ones == 0) {
        phase = kZeros;
      } else {
        EXPECT_NE(phase, kZeros) << "dirty row after clean-0 rows, trial " << trial;
        phase = kDirty;
      }
    }
  }
}

TEST(Revsort, FullRepetitionsFormula) {
  // side = 2^q: reps = ceil(lg q), at least 1.
  EXPECT_EQ(full_revsort_repetitions(2), 1u);    // q=1
  EXPECT_EQ(full_revsort_repetitions(4), 1u);    // q=2
  EXPECT_EQ(full_revsort_repetitions(8), 2u);    // q=3
  EXPECT_EQ(full_revsort_repetitions(16), 2u);   // q=4
  EXPECT_EQ(full_revsort_repetitions(32), 3u);   // q=5
  EXPECT_EQ(full_revsort_repetitions(256), 3u);  // q=8
  EXPECT_EQ(full_revsort_repetitions(512), 4u);  // q=9
}

// Section 6's claim: after ceil(lg lg sqrt(n)) repetitions (plus a column
// sort) at most eight dirty rows remain.
class RevsortRepeated : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RevsortRepeated, AtMostEightDirtyRows) {
  const std::size_t side = GetParam();
  const std::size_t reps = full_revsort_repetitions(side);
  Rng rng(34 + side);
  for (int trial = 0; trial < 40; ++trial) {
    BitMatrix m = random_square(side, rng.uniform01(), rng);
    std::size_t dirty = revsort_repeated(m, reps);
    EXPECT_LE(dirty, 8u) << "side=" << side << " trial=" << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Sides, RevsortRepeated,
                         ::testing::Values(4, 8, 16, 32, 64, 128));

TEST(Revsort, MoreRepetitionsNeverHurt) {
  Rng rng(35);
  for (int trial = 0; trial < 10; ++trial) {
    BitMatrix m0 = random_square(32, 0.5, rng);
    BitMatrix m1 = m0;
    BitMatrix m2 = m0;
    std::size_t d1 = revsort_repeated(m1, full_revsort_repetitions(32));
    std::size_t d2 = revsort_repeated(m2, full_revsort_repetitions(32) + 2);
    EXPECT_LE(d2, std::max<std::size_t>(d1, 8));
  }
}

}  // namespace
}  // namespace pcs::sortnet
