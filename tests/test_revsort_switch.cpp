#include "switch/revsort_switch.hpp"

#include <gtest/gtest.h>

#include "core/bounds.hpp"
#include "sortnet/nearsort.hpp"
#include "sortnet/revsort.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace pcs::sw {
namespace {

TEST(RevsortSwitch, ShapeValidation) {
  EXPECT_NO_THROW(RevsortSwitch(64, 32));
  EXPECT_THROW(RevsortSwitch(32, 16), pcs::ContractViolation);   // not a square
  EXPECT_THROW(RevsortSwitch(36, 16), pcs::ContractViolation);   // side not 2^q
  EXPECT_THROW(RevsortSwitch(64, 0), pcs::ContractViolation);
  EXPECT_THROW(RevsortSwitch(64, 65), pcs::ContractViolation);
}

TEST(RevsortSwitch, EpsilonBoundMatchesTheorem3) {
  RevsortSwitch sw(256, 128);  // side 16, n^{1/4} = 4
  EXPECT_EQ(sw.epsilon_bound(), 7u * 16u);
  EXPECT_EQ(sw.epsilon_bound(),
            pcs::core::revsort_epsilon_bound(sw.side()));
}

TEST(RevsortSwitch, RoutingIsPartialInjection) {
  RevsortSwitch sw(64, 40);
  Rng rng(140);
  for (int trial = 0; trial < 30; ++trial) {
    BitVec valid = rng.bernoulli_bits(64, rng.uniform01());
    SwitchRouting r = sw.route(valid);
    EXPECT_TRUE(r.is_partial_injection());
    EXPECT_LE(r.routed_count(), valid.count());
  }
}

// The hardware-faithful simulation (explicit chips + wiring permutations)
// must agree exactly with the mesh-based fast path.
class RevsortWiringEquivalence : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RevsortWiringEquivalence, RouteEqualsRouteViaWiring) {
  const std::size_t n = GetParam();
  RevsortSwitch sw(n, n / 2);
  Rng rng(141 + n);
  for (int trial = 0; trial < 25; ++trial) {
    BitVec valid = rng.bernoulli_bits(n, rng.uniform01());
    SwitchRouting a = sw.route(valid);
    SwitchRouting b = sw.route_via_wiring(valid);
    EXPECT_EQ(a.output_of_input, b.output_of_input) << "trial " << trial;
    EXPECT_EQ(a.input_of_output, b.input_of_output) << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, RevsortWiringEquivalence,
                         ::testing::Values(4, 16, 64, 256, 1024));

// Theorem 3: measured nearsortedness never exceeds the advertised bound.
class RevsortEpsilon : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RevsortEpsilon, MeasuredWithinBound) {
  const std::size_t n = GetParam();
  RevsortSwitch sw(n, n);
  Rng rng(142 + n);
  for (int trial = 0; trial < 40; ++trial) {
    BitVec valid = rng.bernoulli_bits(n, rng.uniform01());
    BitVec arrangement = sw.nearsorted_valid_bits(valid);
    EXPECT_EQ(arrangement.count(), valid.count());
    EXPECT_LE(sortnet::min_nearsort_epsilon(arrangement), sw.epsilon_bound())
        << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, RevsortEpsilon,
                         ::testing::Values(16, 64, 256, 1024, 4096));

// The partial-concentration contract (Section 1) for a sweep of k.
TEST(RevsortSwitch, ConcentrationContractAcrossLoads) {
  const std::size_t n = 256;
  for (std::size_t m : {64u, 128u, 200u, 256u}) {
    RevsortSwitch sw(n, m);
    Rng rng(143 + m);
    for (std::size_t k = 0; k <= n; k += 13) {
      BitVec valid = rng.exact_weight_bits(n, k);
      SwitchRouting r = sw.route(valid);
      EXPECT_TRUE(concentration_contract_holds(sw, valid, r))
          << "m=" << m << " k=" << k;
    }
  }
}

// At light load every message is routed -- the lossless regime.
TEST(RevsortSwitch, LosslessWithinGuaranteedCapacity) {
  RevsortSwitch sw(1024, 1024);
  const std::size_t capacity = sw.guaranteed_capacity();
  ASSERT_GT(capacity, 0u);
  Rng rng(144);
  for (int trial = 0; trial < 20; ++trial) {
    std::size_t k = rng.below(capacity + 1);
    BitVec valid = rng.exact_weight_bits(1024, k);
    SwitchRouting r = sw.route(valid);
    EXPECT_EQ(r.routed_count(), k) << "k=" << k;
  }
}

TEST(RevsortSwitch, MeshAgreesWithSortnetAlgorithm1) {
  // The switch's valid-bit arrangement equals running Algorithm 1 on the
  // matrix of valid bits (chip-major input attachment).
  const std::size_t n = 64, side = 8;
  RevsortSwitch sw(n, n);
  Rng rng(145);
  for (int trial = 0; trial < 20; ++trial) {
    BitVec valid = rng.bernoulli_bits(n, 0.5);
    BitMatrix m(side, side);
    for (std::size_t x = 0; x < n; ++x) {
      m.set(x % side, x / side, valid.get(x));
    }
    sortnet::revsort_algorithm1(m);
    EXPECT_EQ(sw.nearsorted_valid_bits(valid), m.to_row_major());
  }
}

TEST(RevsortSwitch, BillOfMaterials) {
  RevsortSwitch sw(256, 128);  // side 16
  Bom bom = sw.bill_of_materials();
  EXPECT_EQ(bom.total_chips(), 4u * 16u);       // 3 hyper stacks + shifters
  EXPECT_EQ(bom.max_pins_per_chip(), 2u * 16u + 4u);  // shifter: 2v + lg v
  EXPECT_EQ(RevsortSwitch::kChipPasses, 3u);
}

TEST(RevsortSwitch, NameIncludesShape) {
  EXPECT_EQ(RevsortSwitch(64, 32).name(), "revsort(64,32)");
}

}  // namespace
}  // namespace pcs::sw
