#include "util/rng.hpp"

#include <gtest/gtest.h>

#include "util/assert.hpp"

namespace pcs {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 16; ++i) {
    if (a.next() != b.next()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Rng, BelowInRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(7), 7u);
  }
  EXPECT_THROW(rng.below(0), ContractViolation);
}

TEST(Rng, BetweenInclusive) {
  Rng rng(10);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    std::uint64_t v = rng.between(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    saw_lo |= (v == 3);
    saw_hi |= (v == 5);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, Uniform01Range) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(12);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
  EXPECT_THROW(rng.chance(1.5), ContractViolation);
}

TEST(Rng, BernoulliDensityReasonable) {
  Rng rng(13);
  BitVec bits = rng.bernoulli_bits(20000, 0.3);
  double density = static_cast<double>(bits.count()) / 20000.0;
  EXPECT_NEAR(density, 0.3, 0.02);
}

TEST(Rng, ExactWeightExact) {
  Rng rng(14);
  for (std::size_t k : {0u, 1u, 17u, 64u, 100u}) {
    BitVec bits = rng.exact_weight_bits(100, k);
    EXPECT_EQ(bits.count(), k) << "k=" << k;
  }
  EXPECT_THROW(rng.exact_weight_bits(4, 5), ContractViolation);
}

TEST(Rng, ExactWeightUniformish) {
  // Every position should receive roughly k/n of the mass.
  Rng rng(15);
  const std::size_t n = 50, k = 10, trials = 5000;
  std::vector<std::size_t> hits(n, 0);
  for (std::size_t t = 0; t < trials; ++t) {
    BitVec bits = rng.exact_weight_bits(n, k);
    for (std::size_t i = 0; i < n; ++i) {
      if (bits.get(i)) ++hits[i];
    }
  }
  const double expected = static_cast<double>(trials) * k / n;  // 1000
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(static_cast<double>(hits[i]), expected, expected * 0.15) << "pos " << i;
  }
}

}  // namespace
}  // namespace pcs
