#include "network/router_sim.hpp"

#include <gtest/gtest.h>

namespace pcs::net {
namespace {

TEST(RouterSim, LightLoadFlowsFreely) {
  ConcentratorTree tree = make_hyper_tree(4, 16, 8, 16);
  Rng rng(230);
  TreeSimStats stats = simulate_tree(tree, 0.05, 300, rng);
  EXPECT_GT(stats.offered, 300u);
  EXPECT_GT(stats.delivery_rate(), 0.98);
  EXPECT_LT(stats.mean_latency(), 0.5);
}

TEST(RouterSim, SaturationBoundedByTrunk) {
  ConcentratorTree tree = make_hyper_tree(4, 16, 8, 8);
  Rng rng(231);
  TreeSimStats stats = simulate_tree(tree, 0.9, 200, rng);
  // Trunk has 8 outputs: at most 8 deliveries per round.
  EXPECT_LE(stats.delivered, 200u * 8u);
  EXPECT_GE(stats.delivered, 190u * 8u);  // saturated
  // The stable hyperconcentrator favors low-numbered wires, so the winners
  // repeat (head-of-line starvation): latency stays low for them while the
  // backlog of starved sources grows to nearly every other source.
  EXPECT_GT(stats.max_backlog, 40u);
  EXPECT_NEAR(stats.trunk_utilization(tree), 1.0, 0.05);
}

TEST(RouterSim, LatencyHistogramAccounts) {
  ConcentratorTree tree = make_hyper_tree(2, 16, 8, 16);
  Rng rng(232);
  TreeSimStats stats = simulate_tree(tree, 0.5, 100, rng);
  std::size_t histo_total = 0;
  for (std::size_t c : stats.latency_histogram) histo_total += c;
  EXPECT_EQ(histo_total, stats.delivered);
}

TEST(RouterSim, StatsStringMentionsFields) {
  ConcentratorTree tree = make_hyper_tree(2, 16, 8, 16);
  Rng rng(233);
  TreeSimStats stats = simulate_tree(tree, 0.2, 50, rng);
  std::string s = stats.to_string();
  EXPECT_NE(s.find("delivered"), std::string::npos);
  EXPECT_NE(s.find("mean-latency"), std::string::npos);
}

TEST(RouterSim, PartialVsPerfectTreeThroughputComparable) {
  // The paper's pitch: partial concentrators substitute for perfect ones at
  // light load.  Same offered traffic through a Revsort tree and a hyper
  // tree should deliver similar volume when under capacity.
  ConcentratorTree perfect = make_hyper_tree(4, 64, 16, 32);
  ConcentratorTree partial = make_revsort_tree(4, 64, 16, 32);
  Rng rng_a(234), rng_b(234);
  TreeSimStats sp = simulate_tree(perfect, 0.1, 200, rng_a);
  TreeSimStats sq = simulate_tree(partial, 0.1, 200, rng_b);
  EXPECT_GT(sp.delivery_rate(), 0.95);
  EXPECT_GT(sq.delivery_rate(), 0.90);
}

}  // namespace
}  // namespace pcs::net
