#include "runtime/config.hpp"

#include <gtest/gtest.h>

#include "message/traffic.hpp"
#include "util/assert.hpp"

namespace pcs::rt {
namespace {

TEST(RuntimeConfig, EmptyTextYieldsDefaults) {
  RuntimeConfig cfg = parse_config_text("");
  EXPECT_EQ(cfg.family, "revsort");
  EXPECT_EQ(cfg.n, 256u);
  EXPECT_EQ(cfg.m, 128u);
  EXPECT_EQ(cfg.policy, "buffer-retry");
  EXPECT_TRUE(cfg.loads.empty());
}

TEST(RuntimeConfig, ParsesEveryKeyWithCommentsAndBlanks) {
  RuntimeConfig cfg = parse_config_text(R"(
# campaign shape
family = revsort , columnsort
n = 1024
m = 512          # trailing comment
beta = 0.875
arrival = hotspot
arrival_p = 0.125
loads = 0.1, 0.2 ,0.3
queue_depth = 8
policy = misroute-retry
seed = 99
lanes = 2
warmup_epochs = 5
measure_epochs = 50
drain_epochs_max = 500
check_invariants = true
out = custom.json
)");
  EXPECT_EQ(split_csv(cfg.family), (std::vector<std::string>{"revsort", "columnsort"}));
  EXPECT_EQ(cfg.n, 1024u);
  EXPECT_EQ(cfg.m, 512u);
  EXPECT_DOUBLE_EQ(cfg.beta, 0.875);
  EXPECT_EQ(cfg.arrival, "hotspot");
  EXPECT_DOUBLE_EQ(cfg.arrival_p, 0.125);
  ASSERT_EQ(cfg.loads.size(), 3u);
  EXPECT_DOUBLE_EQ(cfg.loads[1], 0.2);
  EXPECT_EQ(cfg.queue_depth, 8u);
  EXPECT_EQ(cfg.policy, "misroute-retry");
  EXPECT_EQ(cfg.seed, 99u);
  EXPECT_EQ(cfg.lanes, 2u);
  EXPECT_EQ(cfg.warmup_epochs, 5u);
  EXPECT_EQ(cfg.measure_epochs, 50u);
  EXPECT_EQ(cfg.drain_epochs_max, 500u);
  EXPECT_TRUE(cfg.check_invariants);
  EXPECT_EQ(cfg.out, "custom.json");
}

TEST(RuntimeConfig, ExecEngineKey) {
  EXPECT_EQ(parse_config_text("").exec, "fused");
  EXPECT_EQ(parse_config_text("exec = legacy").exec, "legacy");
  EXPECT_EQ(parse_config_text("exec = fused").exec, "fused");
  EXPECT_THROW(parse_config_text("exec = turbo"), ContractViolation);
  RuntimeConfig cfg = parse_config_text("");
  apply_override(cfg, "exec=legacy");
  EXPECT_EQ(cfg.exec, "legacy");
}

TEST(RuntimeConfig, RejectsMalformedInput) {
  EXPECT_THROW(parse_config_text("mystery_key = 1"), ContractViolation);
  EXPECT_THROW(parse_config_text("just a line"), ContractViolation);
  EXPECT_THROW(parse_config_text("n = twelve"), ContractViolation);
  EXPECT_THROW(parse_config_text("arrival_p = lots"), ContractViolation);
  EXPECT_THROW(parse_config_text("check_invariants = maybe"), ContractViolation);
}

TEST(RuntimeConfig, ValidatesRanges) {
  EXPECT_THROW(parse_config_text("n = 64\nm = 128"), ContractViolation);   // m > n
  EXPECT_THROW(parse_config_text("arrival_p = 1.5"), ContractViolation);
  EXPECT_THROW(parse_config_text("loads = 0.5,2.0"), ContractViolation);
  EXPECT_THROW(parse_config_text("queue_depth = 0"), ContractViolation);
  EXPECT_THROW(parse_config_text("lanes = 0"), ContractViolation);
  EXPECT_THROW(parse_config_text("measure_epochs = 0"), ContractViolation);
  EXPECT_THROW(parse_config_text("policy = punt"), ContractViolation);
  EXPECT_THROW(parse_config_text("family = clos"), ContractViolation);
  EXPECT_THROW(parse_config_text("arrival = psychic"), ContractViolation);
}

TEST(RuntimeConfig, OverridesApplyAndRevalidate) {
  RuntimeConfig cfg = parse_config_text("n = 256\nm = 64");
  apply_override(cfg, "m=128");
  EXPECT_EQ(cfg.m, 128u);
  EXPECT_THROW(apply_override(cfg, "m=512"), ContractViolation);  // m > n
  EXPECT_THROW(apply_override(cfg, "no-equals-sign"), ContractViolation);
}

TEST(RuntimeConfig, SplitCsvTrimsAndDropsEmpties) {
  EXPECT_EQ(split_csv(" a, b ,,c "), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(split_csv("").empty());
  EXPECT_TRUE(split_csv(" , ,").empty());
}

TEST(RuntimeConfig, PolicyFromString) {
  EXPECT_EQ(policy_from_string("drop"), msg::CongestionPolicy::kDrop);
  EXPECT_EQ(policy_from_string("buffer-retry"), msg::CongestionPolicy::kBufferRetry);
  EXPECT_EQ(policy_from_string("misroute-retry"),
            msg::CongestionPolicy::kMisrouteRetry);
  EXPECT_THROW(policy_from_string("yolo"), ContractViolation);
}

TEST(RuntimeConfig, MakeSwitchBuildsEveryFamily) {
  RuntimeConfig cfg;
  cfg.n = 256;
  cfg.m = 128;
  cfg.beta = 0.75;
  for (const char* family : {"revsort", "columnsort", "hyper"}) {
    auto sw = make_switch(family, cfg);
    ASSERT_NE(sw, nullptr) << family;
    EXPECT_EQ(sw->inputs(), 256u) << family;
    EXPECT_EQ(sw->outputs(), 128u) << family;
  }
  EXPECT_THROW(make_switch("banyan", cfg), ContractViolation);
}

TEST(RuntimeConfig, MakeTrafficBuildsEveryArrival) {
  RuntimeConfig cfg;
  cfg.n = 64;
  cfg.arrival_p = 0.25;
  Rng rng(17);
  for (const char* arrival : {"bernoulli", "exact", "bursty", "hotspot"}) {
    cfg.arrival = arrival;
    auto gen = make_traffic(cfg, cfg.n);
    ASSERT_NE(gen, nullptr) << arrival;
    EXPECT_EQ(gen->width(), 64u) << arrival;
    EXPECT_EQ(gen->next_valid(rng).size(), 64u) << arrival;
  }
  // exact presents round(p * n) messages every call.
  cfg.arrival = "exact";
  auto gen = make_traffic(cfg, cfg.n);
  EXPECT_EQ(gen->next_valid(rng).count(), 16u);
}

// Regression (parser): duplicate keys follow one rule everywhere --
// LAST occurrence wins, in the file body and across CLI overrides alike,
// so "file then overrides" and "file with a repeated key" agree.
TEST(RuntimeConfig, DuplicateKeysAreLastWins) {
  RuntimeConfig cfg = parse_config_text("n = 64\nseed = 1\nn = 1024\nseed = 7");
  EXPECT_EQ(cfg.n, 1024u);
  EXPECT_EQ(cfg.seed, 7u);
  // A repeated list key replaces, never appends.
  cfg = parse_config_text("loads = 0.1,0.2\nloads = 0.9");
  ASSERT_EQ(cfg.loads.size(), 1u);
  EXPECT_DOUBLE_EQ(cfg.loads[0], 0.9);
  // The same rule across override repetition.
  cfg = parse_config_text("m = 64");
  apply_override(cfg, "m=128");
  apply_override(cfg, "m=96");
  EXPECT_EQ(cfg.m, 96u);
}

// Regression (parser): a key with embedded whitespace used to be truncated
// at the first space and silently treated as the shorter key; it must be
// rejected with a ContractViolation naming the offending line.
TEST(RuntimeConfig, KeysWithWhitespaceAreRejectedNamingTheLine) {
  try {
    parse_config_text("n = 64\nqueue depth = 8\n");
    FAIL() << "whitespace key accepted";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("line 2"), std::string::npos) << what;
    EXPECT_NE(what.find("queue depth"), std::string::npos) << what;
  }
  EXPECT_THROW(parse_config_text("drain epochs max = 9"), ContractViolation);
  RuntimeConfig cfg;
  EXPECT_THROW(apply_override(cfg, "queue depth=8"), ContractViolation);
  // Surrounding whitespace is trimmed as before -- only EMBEDDED
  // whitespace inside the key is a rejection.
  apply_override(cfg, " n =512");
  EXPECT_EQ(cfg.n, 512u);
}

TEST(RuntimeConfig, FabricKeysParseAndValidate) {
  RuntimeConfig cfg = parse_config_text(R"(
topology = omega
hops = 3
radix = 2
alloc = islip
credits = 16
fault_hop = 1
)");
  EXPECT_EQ(cfg.topology, "omega");
  EXPECT_EQ(cfg.fabric_hops, 3u);
  EXPECT_EQ(cfg.fabric_radix, 2u);
  EXPECT_EQ(cfg.fabric_alloc, "islip");
  EXPECT_EQ(cfg.fabric_credits, 16u);
  EXPECT_EQ(cfg.fault_hop, 1u);
  // Defaults keep single-switch campaigns: empty topology.
  EXPECT_TRUE(parse_config_text("").topology.empty());
  EXPECT_THROW(parse_config_text("topology = torus"), ContractViolation);
  EXPECT_THROW(parse_config_text("alloc = maxweight"), ContractViolation);
  EXPECT_THROW(parse_config_text("topology = omega\nhops = 0"),
               ContractViolation);
  EXPECT_THROW(parse_config_text("topology = omega\nradix = 0"),
               ContractViolation);
  EXPECT_THROW(parse_config_text("topology = omega\ncredits = 0"),
               ContractViolation);
  // Fabric nodes must be plan-compiled: "hyper" cannot be composed.
  EXPECT_THROW(parse_config_text("topology = omega\nfamily = hyper"),
               ContractViolation);
  // The fabric keys echo into the config JSON.
  const std::string json = config_to_json(cfg, 0);
  EXPECT_NE(json.find("\"topology\": \"omega\""), std::string::npos);
  EXPECT_NE(json.find("\"alloc\": \"islip\""), std::string::npos);
  EXPECT_NE(json.find("\"credits\": 16"), std::string::npos);
  EXPECT_NE(json.find("\"hops\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"radix\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"fault_hop\": 1"), std::string::npos);
}

TEST(RuntimeConfig, RoutePolicyKeysParseAndValidate) {
  RuntimeConfig cfg = parse_config_text(R"(
topology = fattree
route = adaptive
deflect_max = 3
epochs_in_flight = 4
)");
  EXPECT_EQ(cfg.fabric_route, "adaptive");
  EXPECT_EQ(cfg.fabric_deflect_max, 3u);
  EXPECT_EQ(cfg.fabric_epochs_in_flight, 4u);
  // Defaults: deterministic routing, no deflection, epochs_in_flight 0
  // (defer to PCS_FABRIC_EPOCHS_IN_FLIGHT, else serial).
  const RuntimeConfig defaults = parse_config_text("");
  EXPECT_EQ(defaults.fabric_route, "deterministic");
  EXPECT_EQ(defaults.fabric_deflect_max, 0u);
  EXPECT_EQ(defaults.fabric_epochs_in_flight, 0u);

  EXPECT_THROW(parse_config_text("route = random"), ContractViolation);
  // deflect_max needs adaptive routing to mean anything.
  EXPECT_THROW(parse_config_text("deflect_max = 2"), ContractViolation);
  EXPECT_THROW(parse_config_text("epochs_in_flight = 5000"),
               ContractViolation);

  const std::string json = config_to_json(cfg, 0);
  EXPECT_NE(json.find("\"route\": \"adaptive\""), std::string::npos);
  EXPECT_NE(json.find("\"deflect_max\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"epochs_in_flight\": 4"), std::string::npos);
}

TEST(RuntimeConfig, JsonEchoIsDeterministic) {
  RuntimeConfig cfg = parse_config_text("loads = 0.1,0.9\nseed = 5");
  const std::string a = config_to_json(cfg, 2);
  EXPECT_EQ(a, config_to_json(cfg, 2));
  EXPECT_NE(a.find("\"loads\": [0.1, 0.9]"), std::string::npos);
  EXPECT_NE(a.find("\"seed\": 5"), std::string::npos);
  EXPECT_NE(a.find("\"exec\": \"fused\""), std::string::npos);
  EXPECT_EQ(a.substr(0, 3), "  {");
}

}  // namespace
}  // namespace pcs::rt
