#include "cost/scaling.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "cost/resource_model.hpp"
#include "util/assert.hpp"

namespace pcs::cost {
namespace {

TEST(Scaling, ExactPowerLawRecovered) {
  std::vector<std::pair<std::size_t, double>> pts;
  for (std::size_t n : {16u, 64u, 256u, 1024u}) {
    pts.emplace_back(n, 3.5 * std::pow(static_cast<double>(n), 1.5));
  }
  ScalingFit fit = fit_power_law(pts);
  EXPECT_NEAR(fit.exponent, 1.5, 1e-9);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-9);
}

TEST(Scaling, Validation) {
  EXPECT_THROW(fit_power_law({{4, 1.0}}), pcs::ContractViolation);
  EXPECT_THROW(fit_power_law({{4, 1.0}, {8, 0.0}}), pcs::ContractViolation);
  EXPECT_THROW(fit_power_law({{4, 1.0}, {4, 2.0}}), pcs::ContractViolation);
}

// Table 1's Theta-claims, asserted as fitted exponents over four octaves.
TEST(Scaling, Table1ExponentsRevsort) {
  std::vector<std::size_t> ns = {1u << 8, 1u << 12, 1u << 16, 1u << 20};
  auto pins = fit_power_law_of(ns, [](std::size_t n) {
    return revsort_report(n, n / 2).pins_per_chip;
  });
  EXPECT_NEAR(pins.exponent, 0.5, 0.05);
  auto chips = fit_power_law_of(ns, [](std::size_t n) {
    return revsort_report(n, n / 2).chip_count;
  });
  EXPECT_NEAR(chips.exponent, 0.5, 0.01);
  auto volume = fit_power_law_of(ns, [](std::size_t n) {
    return revsort_report(n, n / 2).volume_3d;
  });
  EXPECT_NEAR(volume.exponent, 1.5, 0.01);
  auto epsilon = fit_power_law_of(ns, [](std::size_t n) {
    return revsort_report(n, n / 2).epsilon;
  });
  EXPECT_NEAR(epsilon.exponent, 0.75, 0.05);  // O(n^{3/4})
}

TEST(Scaling, Table1ExponentsColumnsort) {
  // beta = 3/4 shapes: r = n^{3/4}, s = n^{1/4}.
  std::vector<std::size_t> ns = {1u << 8, 1u << 12, 1u << 16, 1u << 20};
  auto shape = [](std::size_t n) {
    std::size_t lg = 0;
    while ((std::size_t{1} << lg) < n) ++lg;
    std::size_t r = std::size_t{1} << (3 * lg / 4);
    return std::pair<std::size_t, std::size_t>{r, n / r};
  };
  auto pins = fit_power_law_of(ns, [&](std::size_t n) {
    auto [r, s] = shape(n);
    return columnsort_report(r, s, n / 2).pins_per_chip;
  });
  EXPECT_NEAR(pins.exponent, 0.75, 0.02);
  auto chips = fit_power_law_of(ns, [&](std::size_t n) {
    auto [r, s] = shape(n);
    return columnsort_report(r, s, n / 2).chip_count;
  });
  EXPECT_NEAR(chips.exponent, 0.25, 0.02);
  auto volume = fit_power_law_of(ns, [&](std::size_t n) {
    auto [r, s] = shape(n);
    return columnsort_report(r, s, n / 2).volume_3d;
  });
  EXPECT_NEAR(volume.exponent, 1.75, 0.02);
}

TEST(Scaling, PrefixButterflyChipsNLogN) {
  std::vector<std::size_t> ns = {1u << 8, 1u << 12, 1u << 16, 1u << 20};
  auto chips = fit_power_law_of(ns, [](std::size_t n) {
    return prefix_butterfly_report(n).chip_count;
  });
  // n lg n fits a power law with exponent slightly above 1.
  EXPECT_GT(chips.exponent, 1.0);
  EXPECT_LT(chips.exponent, 1.2);
  // Pins stay constant at 4.
  EXPECT_EQ(prefix_butterfly_report(1 << 8).pins_per_chip, 4u);
  EXPECT_EQ(prefix_butterfly_report(1 << 20).pins_per_chip, 4u);
}

TEST(Scaling, GateDelaysAreLogarithmicNotPolynomial) {
  std::vector<std::size_t> ns = {1u << 8, 1u << 12, 1u << 16, 1u << 20};
  auto delay = fit_power_law_of(ns, [](std::size_t n) {
    return revsort_report(n, n / 2).gate_delays;
  });
  EXPECT_LT(delay.exponent, 0.2);  // lg n: tiny power-law exponent
}

}  // namespace
}  // namespace pcs::cost
