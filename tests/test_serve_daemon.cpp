// In-process daemon behaviour: handle_campaign() is the same entry the
// connection threads use, so admission, sentinel resolution, cache sharing,
// aggregation, and scrape conservation are all testable without a socket.
#include "serve/daemon.hpp"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "fabric/fabric_config.hpp"

namespace pcs::serve {
namespace {

rt::RuntimeConfig small_base() {
  rt::RuntimeConfig cfg;
  cfg.family = "revsort";
  cfg.n = 64;
  cfg.m = 48;
  cfg.arrival = "bernoulli";
  cfg.arrival_p = 0.10;
  cfg.lanes = 2;
  cfg.warmup_epochs = 4;
  cfg.measure_epochs = 16;
  cfg.drain_epochs_max = 128;
  cfg.seed = 7;
  return cfg;
}

CampaignRequest default_request(const std::string& tenant) {
  CampaignRequest req;
  req.tenant = tenant;
  req.seed = 3;
  return req;  // every shape field deferred to the server config
}

TEST(ServeDaemon, DefaultRequestRunsTheBaseConfigCampaign) {
  ServeDaemon daemon(small_base(), ServeOptions{});
  const CampaignReply rep = daemon.handle_campaign(default_request("t0"));
  ASSERT_EQ(rep.status, Status::kOk) << rep.reason;
  EXPECT_TRUE(rep.drained);
  EXPECT_FALSE(rep.cache_hit);  // cold cache
  // Conservation within the reply itself.
  EXPECT_EQ(rep.offered, rep.delivered + rep.dropped + rep.residual);
  EXPECT_GT(rep.offered, 0u);
  // The digest echoes the resolved spec: base family/shape, fused engine.
  SwitchSpec spec;
  spec.family = "revsort";
  spec.n = 64;
  spec.m = 48;
  EXPECT_EQ(rep.spec_digest, spec.digest(plan::ExecMode::kFused));
}

TEST(ServeDaemon, SecondIdenticalRequestHitsTheCache) {
  ServeDaemon daemon(small_base(), ServeOptions{});
  const CampaignReply a = daemon.handle_campaign(default_request("t0"));
  const CampaignReply b = daemon.handle_campaign(default_request("t1"));
  ASSERT_EQ(a.status, Status::kOk);
  ASSERT_EQ(b.status, Status::kOk);
  EXPECT_FALSE(a.cache_hit);
  EXPECT_TRUE(b.cache_hit);  // tenants share one compiled plan
  EXPECT_EQ(a.spec_digest, b.spec_digest);
}

TEST(ServeDaemon, SameSeedSameShapeIsDeterministic) {
  ServeDaemon daemon(small_base(), ServeOptions{});
  const CampaignReply a = daemon.handle_campaign(default_request("t0"));
  const CampaignReply b = daemon.handle_campaign(default_request("t1"));
  EXPECT_EQ(a.offered, b.offered);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.dropped, b.dropped);
  EXPECT_DOUBLE_EQ(a.delivery_rate, b.delivery_rate);
}

TEST(ServeDaemon, RequestOverridesReplaceServerDefaults) {
  ServeDaemon daemon(small_base(), ServeOptions{});
  CampaignRequest req = default_request("t0");
  req.family = "columnsort";
  req.n = 128;
  req.m = 96;
  req.beta = 0.75;
  const CampaignReply rep = daemon.handle_campaign(req);
  ASSERT_EQ(rep.status, Status::kOk) << rep.reason;
  SwitchSpec spec;
  spec.family = "columnsort";
  spec.n = 128;
  spec.m = 96;
  spec.beta = 0.75;
  EXPECT_EQ(rep.spec_digest, spec.digest(plan::ExecMode::kFused));
}

TEST(ServeDaemon, BadShapeIsAnErrorReplyNotACrash) {
  ServeDaemon daemon(small_base(), ServeOptions{});
  CampaignRequest req = default_request("t0");
  req.n = 100;  // revsort needs a perfect square
  const CampaignReply rep = daemon.handle_campaign(req);
  EXPECT_EQ(rep.status, Status::kError);
  EXPECT_FALSE(rep.reason.empty());
  // The daemon keeps serving afterwards.
  EXPECT_EQ(daemon.handle_campaign(default_request("t0")).status, Status::kOk);
}

TEST(ServeDaemon, InvalidLoadIsRejectedByResolve) {
  ServeDaemon daemon(small_base(), ServeOptions{});
  CampaignRequest req = default_request("t0");
  req.load = 1.5;
  const CampaignReply rep = daemon.handle_campaign(req);
  EXPECT_EQ(rep.status, Status::kError);
}

TEST(ServeDaemon, ScrapeHoldsConservationAcrossCampaigns) {
  ServeDaemon daemon(small_base(), ServeOptions{});
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(daemon.handle_campaign(default_request("t" + std::to_string(i)))
                  .status,
              Status::kOk);
  }
  const std::string json = daemon.scrape_json();
  auto counter = [&json](const std::string& name) -> std::uint64_t {
    const std::string key = "\"" + name + "\": ";
    const auto pos = json.find(key);
    EXPECT_NE(pos, std::string::npos) << name << " missing from scrape";
    if (pos == std::string::npos) return 0;
    return std::stoull(json.substr(pos + key.size()));
  };
  EXPECT_EQ(counter("total.offered"),
            counter("total.delivered") + counter("total.dropped") +
                counter("total.residual"));
  EXPECT_EQ(counter("serve.campaigns_completed"), 3u);
  EXPECT_EQ(counter("serve.requests"), 3u);
  EXPECT_EQ(counter("serve.cache.misses"), 1u);
  EXPECT_EQ(counter("serve.cache.hits"), 2u);
}

TEST(ServeDaemon, ScrapeIsByteDeterministicWhileQuiescent) {
  ServeDaemon daemon(small_base(), ServeOptions{});
  (void)daemon.handle_campaign(default_request("t0"));
  EXPECT_EQ(daemon.scrape_json(), daemon.scrape_json());
}

TEST(ServeDaemon, ConcurrentTenantsAllComplete) {
  rt::RuntimeConfig base = small_base();
  base.serve_max_inflight = 8;
  base.serve_tenant_quota = 4;
  ServeDaemon daemon(base, ServeOptions{});

  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kPerThread = 3;
  std::vector<std::vector<CampaignReply>> replies(kThreads);
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&daemon, &replies, t] {
      for (std::size_t i = 0; i < kPerThread; ++i) {
        CampaignRequest req = default_request("t" + std::to_string(t));
        req.seed = 100 + t * 10 + i;
        replies[t].push_back(daemon.handle_campaign(req));
      }
    });
  }
  for (std::thread& th : threads) th.join();

  std::size_t ok = 0, cache_hits = 0;
  for (const auto& per_thread : replies) {
    for (const CampaignReply& rep : per_thread) {
      if (rep.status == Status::kOk) ++ok;
      if (rep.cache_hit) ++cache_hits;
      EXPECT_EQ(rep.offered, rep.delivered + rep.dropped + rep.residual);
    }
  }
  // Nothing exceeded max_inflight=8 with 4 threads, so nothing rejected.
  EXPECT_EQ(ok, kThreads * kPerThread);
  EXPECT_GE(cache_hits, kThreads * kPerThread - 1);  // one cold compile

  // The global rollup saw every campaign and still conserves.
  const std::string json = daemon.scrape_json();
  EXPECT_NE(json.find("\"serve.campaigns_completed\": 12"), std::string::npos)
      << json;
}

TEST(ServeDaemon, QuotaRejectionsCarrySlugReasons) {
  rt::RuntimeConfig base = small_base();
  base.serve_max_inflight = 1;
  base.serve_tenant_quota = 1;
  ServeDaemon daemon(base, ServeOptions{});

  // The hog runs one long campaign; the victim probes with 1-epoch ones, so
  // a missed race window costs microseconds, not a full campaign.
  std::thread holder([&daemon] {
    CampaignRequest hog = default_request("hog");
    hog.measure_epochs = 2048;
    (void)daemon.handle_campaign(hog);
  });
  CampaignReply rep;
  bool saw_reject = false;
  for (int i = 0; i < 500 && !saw_reject; ++i) {
    CampaignRequest probe = default_request("victim");
    probe.warmup_epochs = 0;
    probe.measure_epochs = 1;
    rep = daemon.handle_campaign(probe);
    saw_reject = rep.status == Status::kRejected;
    if (!saw_reject) std::this_thread::yield();
  }
  holder.join();
  if (saw_reject) {
    EXPECT_EQ(rep.reason, "saturated");
  }
  // Whether or not the race window was observed, the daemon drained fine.
  EXPECT_EQ(daemon.handle_campaign(default_request("victim")).status,
            Status::kOk);
}

// ---------------------------------------------------------------------------
// Fabric campaigns over the wire: a request with topology set runs the
// multi-hop path, reports FabricSpec::digest() (not the switch digest), and
// honours the v3 route/epochs_in_flight/deflect_max knobs.
// ---------------------------------------------------------------------------

CampaignRequest fabric_request(const std::string& tenant) {
  CampaignRequest req = default_request(tenant);
  req.topology = "omega";
  req.epochs_in_flight = 1;  // pin: CI may set the env default to > 1
  return req;
}

TEST(ServeDaemon, FabricRequestRunsTheMultiHopCampaign) {
  ServeDaemon daemon(small_base(), ServeOptions{});
  const CampaignReply rep = daemon.handle_campaign(fabric_request("t0"));
  ASSERT_EQ(rep.status, Status::kOk) << rep.reason;
  EXPECT_FALSE(rep.cache_hit);  // FabricSim owns its plans: no cache lane
  EXPECT_GT(rep.offered, 0u);
  EXPECT_EQ(rep.offered, rep.delivered + rep.dropped + rep.residual);
  // The reply digest is the FABRIC spec digest of the resolved config.
  rt::RuntimeConfig cfg = small_base();
  cfg.topology = "omega";
  cfg.seed = 3;  // default_request pins the seed
  EXPECT_EQ(rep.spec_digest,
            fabric::fabric_spec_from(cfg, cfg.family).digest());
  SwitchSpec node;
  node.family = "revsort";
  node.n = 64;
  node.m = 48;
  EXPECT_NE(rep.spec_digest, node.digest(plan::ExecMode::kFused));

  const std::string json = daemon.scrape_json();
  EXPECT_NE(json.find("\"serve.fabric_campaigns\": 1"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"serve.campaigns_completed\": 1"), std::string::npos);
}

TEST(ServeDaemon, FabricOverridesFeedTheResolvedSpec) {
  ServeDaemon daemon(small_base(), ServeOptions{});
  CampaignRequest req = fabric_request("t0");
  req.topology = "fattree";
  req.route = "adaptive";
  req.deflect_max = 2;
  req.epochs_in_flight = 4;
  const CampaignReply rep = daemon.handle_campaign(req);
  ASSERT_EQ(rep.status, Status::kOk) << rep.reason;
  rt::RuntimeConfig cfg = small_base();
  cfg.topology = "fattree";
  cfg.fabric_route = "adaptive";
  cfg.fabric_deflect_max = 2;
  cfg.seed = 3;
  EXPECT_EQ(rep.spec_digest,
            fabric::fabric_spec_from(cfg, cfg.family).digest());
}

TEST(ServeDaemon, PipelinedFabricCampaignMatchesSerialAtTheWire) {
  // The bit-identity contract crosses the protocol boundary intact: the
  // same fabric request at epochs_in_flight 1 and 4 returns identical
  // campaign accounting.
  ServeDaemon daemon(small_base(), ServeOptions{});
  CampaignRequest serial = fabric_request("t0");
  CampaignRequest piped = fabric_request("t1");
  piped.epochs_in_flight = 4;
  const CampaignReply a = daemon.handle_campaign(serial);
  const CampaignReply b = daemon.handle_campaign(piped);
  ASSERT_EQ(a.status, Status::kOk) << a.reason;
  ASSERT_EQ(b.status, Status::kOk) << b.reason;
  EXPECT_EQ(a.offered, b.offered);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.dropped, b.dropped);
  EXPECT_EQ(a.residual, b.residual);
  EXPECT_DOUBLE_EQ(a.mean_latency_epochs, b.mean_latency_epochs);
  EXPECT_EQ(a.spec_digest, b.spec_digest);
}

TEST(ServeDaemon, BadFabricKnobsAreErrorRepliesNotCrashes) {
  ServeDaemon daemon(small_base(), ServeOptions{});
  CampaignRequest req = fabric_request("t0");
  req.route = "random";
  EXPECT_EQ(daemon.handle_campaign(req).status, Status::kError);

  req = fabric_request("t0");
  req.epochs_in_flight = 5000;  // above the 4096 sanity cap
  EXPECT_EQ(daemon.handle_campaign(req).status, Status::kError);

  req = fabric_request("t0");
  req.topology = "torus";
  EXPECT_EQ(daemon.handle_campaign(req).status, Status::kError);

  req = fabric_request("t0");
  req.deflect_max = 2;  // deterministic route never deflects
  EXPECT_EQ(daemon.handle_campaign(req).status, Status::kError);

  // The daemon keeps serving single-switch campaigns afterwards.
  EXPECT_EQ(daemon.handle_campaign(default_request("t0")).status, Status::kOk);
}

}  // namespace
}  // namespace pcs::serve
