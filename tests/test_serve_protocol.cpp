// Wire-protocol round trips, byte determinism, incremental framing, and the
// strict-decode error paths the daemon relies on to drop bad peers.
#include "serve/protocol.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "util/assert.hpp"

namespace pcs::serve {
namespace {

CampaignRequest sample_request() {
  CampaignRequest req;
  req.tenant = "tenant0";
  req.family = "columnsort";
  req.n = 256;
  req.m = 192;
  req.beta = 0.6875;
  req.faults = "1:3,2:0";
  req.arrival = "bursty";
  req.load = 0.45;
  req.seed = 424242;
  req.lanes = 2;
  req.queue_depth = 8;
  req.policy = "drop";
  req.warmup_epochs = 4;
  req.measure_epochs = 32;
  req.drain_epochs_max = 100;
  req.topology = "omega";
  req.route = "adaptive";
  req.epochs_in_flight = 4;
  req.deflect_max = 2;
  return req;
}

Frame decode_frame(const std::vector<std::uint8_t>& wire) {
  // Strip the u32 length prefix; the rest is the payload.
  EXPECT_GE(wire.size(), 4u);
  std::uint32_t len = 0;
  std::memcpy(&len, wire.data(), 4);
  EXPECT_EQ(len, wire.size() - 4);
  return decode_payload(wire.data() + 4, wire.size() - 4);
}

TEST(ServeProtocol, CampaignRequestRoundTrip) {
  const CampaignRequest req = sample_request();
  const Frame f = decode_frame(encode_campaign_request(req));
  ASSERT_EQ(f.type, MsgType::kCampaignRequest);
  ASSERT_TRUE(f.campaign_request.has_value());
  const CampaignRequest& d = *f.campaign_request;
  EXPECT_EQ(d.tenant, req.tenant);
  EXPECT_EQ(d.family, req.family);
  EXPECT_EQ(d.n, req.n);
  EXPECT_EQ(d.m, req.m);
  EXPECT_DOUBLE_EQ(d.beta, req.beta);
  EXPECT_EQ(d.faults, req.faults);
  EXPECT_EQ(d.arrival, req.arrival);
  EXPECT_DOUBLE_EQ(d.load, req.load);
  EXPECT_EQ(d.seed, req.seed);
  EXPECT_EQ(d.lanes, req.lanes);
  EXPECT_EQ(d.queue_depth, req.queue_depth);
  EXPECT_EQ(d.policy, req.policy);
  EXPECT_EQ(d.warmup_epochs, req.warmup_epochs);
  EXPECT_EQ(d.measure_epochs, req.measure_epochs);
  EXPECT_EQ(d.drain_epochs_max, req.drain_epochs_max);
  EXPECT_EQ(d.topology, req.topology);
  EXPECT_EQ(d.route, req.route);
  EXPECT_EQ(d.epochs_in_flight, req.epochs_in_flight);
  EXPECT_EQ(d.deflect_max, req.deflect_max);
}

TEST(ServeProtocol, DefaultSentinelsSurviveRoundTrip) {
  CampaignRequest req;
  req.tenant = "t";
  const Frame f = decode_frame(encode_campaign_request(req));
  const CampaignRequest& d = *f.campaign_request;
  EXPECT_TRUE(d.family.empty());
  EXPECT_EQ(d.n, 0u);
  EXPECT_LT(d.beta, 0.0);
  EXPECT_LT(d.load, 0.0);
  EXPECT_EQ(d.lanes, kUseServerDefault);
  EXPECT_EQ(d.queue_depth, kUseServerDefault);
  EXPECT_EQ(d.warmup_epochs, kUseServerDefault);
  EXPECT_EQ(d.measure_epochs, kUseServerDefault);
  EXPECT_EQ(d.drain_epochs_max, kUseServerDefault);
  // The v3 fabric fields inherit the server default too: empty strings for
  // topology/route, the u32 sentinel for the numeric knobs.
  EXPECT_TRUE(d.topology.empty());
  EXPECT_TRUE(d.route.empty());
  EXPECT_EQ(d.epochs_in_flight, kUseServerDefault);
  EXPECT_EQ(d.deflect_max, kUseServerDefault);
}

TEST(ServeProtocol, CampaignReplyRoundTrip) {
  CampaignReply rep;
  rep.status = Status::kOk;
  rep.cache_hit = true;
  rep.drained = true;
  rep.saturated = false;
  rep.offered = 1000;
  rep.delivered = 990;
  rep.dropped = 7;
  rep.residual = 3;
  rep.delivery_rate = 0.99;
  rep.mean_latency_epochs = 1.5;
  rep.spec_digest = 0xdeadbeefcafe1234ull;
  const Frame f = decode_frame(encode_campaign_reply(rep));
  ASSERT_EQ(f.type, MsgType::kCampaignReply);
  ASSERT_TRUE(f.campaign_reply.has_value());
  const CampaignReply& d = *f.campaign_reply;
  EXPECT_EQ(d.status, Status::kOk);
  EXPECT_TRUE(d.cache_hit);
  EXPECT_TRUE(d.drained);
  EXPECT_FALSE(d.saturated);
  EXPECT_EQ(d.offered, 1000u);
  EXPECT_EQ(d.delivered, 990u);
  EXPECT_EQ(d.dropped, 7u);
  EXPECT_EQ(d.residual, 3u);
  EXPECT_DOUBLE_EQ(d.delivery_rate, 0.99);
  EXPECT_DOUBLE_EQ(d.mean_latency_epochs, 1.5);
  EXPECT_EQ(d.spec_digest, 0xdeadbeefcafe1234ull);
}

TEST(ServeProtocol, RejectionReplyCarriesReason) {
  CampaignReply rep;
  rep.status = Status::kRejected;
  rep.reason = "tenant-quota";
  const Frame f = decode_frame(encode_campaign_reply(rep));
  EXPECT_EQ(f.campaign_reply->status, Status::kRejected);
  EXPECT_EQ(f.campaign_reply->reason, "tenant-quota");
}

TEST(ServeProtocol, ScrapeRoundTrip) {
  const Frame req = decode_frame(encode_scrape_request());
  EXPECT_EQ(req.type, MsgType::kScrapeRequest);

  ScrapeReply sr;
  sr.json = "{\n  \"counters\": {}\n}";
  const Frame rep = decode_frame(encode_scrape_reply(sr));
  ASSERT_EQ(rep.type, MsgType::kScrapeReply);
  EXPECT_EQ(rep.scrape_reply->json, sr.json);
}

TEST(ServeProtocol, EncodingIsByteDeterministic) {
  const CampaignRequest req = sample_request();
  EXPECT_EQ(encode_campaign_request(req), encode_campaign_request(req));
  EXPECT_EQ(encode_scrape_request(), encode_scrape_request());
}

TEST(ServeProtocol, FrameReaderReassemblesByteByByte) {
  const std::vector<std::uint8_t> a =
      encode_campaign_request(sample_request());
  const std::vector<std::uint8_t> b = encode_scrape_request();
  std::vector<std::uint8_t> stream = a;
  stream.insert(stream.end(), b.begin(), b.end());

  FrameReader reader;
  std::vector<MsgType> seen;
  for (std::uint8_t byte : stream) {
    reader.feed(&byte, 1);
    while (auto f = reader.next()) seen.push_back(f->type);
  }
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], MsgType::kCampaignRequest);
  EXPECT_EQ(seen[1], MsgType::kScrapeRequest);
  EXPECT_EQ(reader.pending_bytes(), 0u);
}

TEST(ServeProtocol, FrameReaderHandlesManyFramesOneFeed) {
  std::vector<std::uint8_t> stream;
  for (int i = 0; i < 100; ++i) {
    const std::vector<std::uint8_t> one = encode_scrape_request();
    stream.insert(stream.end(), one.begin(), one.end());
  }
  FrameReader reader;
  reader.feed(stream.data(), stream.size());
  std::size_t n = 0;
  while (reader.next()) ++n;
  EXPECT_EQ(n, 100u);
}

TEST(ServeProtocol, RejectsBadVersion) {
  std::vector<std::uint8_t> wire = encode_scrape_request();
  wire[4] ^= 0xff;  // version low byte lives right after the length prefix
  EXPECT_THROW(decode_payload(wire.data() + 4, wire.size() - 4),
               ContractViolation);
}

TEST(ServeProtocol, RejectsUnknownType) {
  std::vector<std::uint8_t> wire = encode_scrape_request();
  wire[6] = 0x7f;  // type byte follows the u16 version
  EXPECT_THROW(decode_payload(wire.data() + 4, wire.size() - 4),
               ContractViolation);
}

TEST(ServeProtocol, RejectsTruncatedBody) {
  const std::vector<std::uint8_t> wire =
      encode_campaign_request(sample_request());
  // Chop the payload mid-body: every prefix short of the full payload must
  // throw, never read out of bounds.
  for (std::size_t cut = 3; cut < wire.size() - 4; cut += 7) {
    EXPECT_THROW(decode_payload(wire.data() + 4, cut), ContractViolation);
  }
}

TEST(ServeProtocol, RejectsTrailingBytes) {
  std::vector<std::uint8_t> wire = encode_scrape_request();
  wire.push_back(0x00);
  EXPECT_THROW(decode_payload(wire.data() + 4, wire.size() - 3),
               ContractViolation);
}

TEST(ServeProtocol, FrameReaderRejectsOversizedLengthPrefix) {
  FrameReader reader;
  const std::uint32_t huge = kMaxFrameBytes + 1;
  std::uint8_t prefix[4];
  std::memcpy(prefix, &huge, 4);
  reader.feed(prefix, 4);
  EXPECT_THROW(reader.next(), ContractViolation);
}

TEST(ServeProtocol, RejectsEmptyTenant) {
  // Both ends enforce it: the encoder refuses to build the frame, and a
  // hand-forged empty-tenant payload is refused by decode.
  CampaignRequest req;  // tenant left empty
  EXPECT_THROW(encode_campaign_request(req), ContractViolation);

  req.tenant = "t";
  std::vector<std::uint8_t> wire = encode_campaign_request(req);
  // The tenant string is the first body field: u32 length ("t" -> 1) at
  // offset 7 (after u32 frame length, u16 version, u8 type), then the byte.
  ASSERT_EQ(wire[7], 1u);
  ASSERT_EQ(wire[11], static_cast<std::uint8_t>('t'));
  wire[7] = 0;                     // tenant length -> 0
  wire.erase(wire.begin() + 11);   // drop the tenant byte
  std::uint32_t len = 0;
  std::memcpy(&len, wire.data(), 4);
  len -= 1;
  std::memcpy(wire.data(), &len, 4);  // fix the frame length
  EXPECT_THROW(decode_payload(wire.data() + 4, wire.size() - 4),
               ContractViolation);
}

}  // namespace
}  // namespace pcs::serve
