#include "sortnet/shearsort.hpp"

#include <gtest/gtest.h>

#include "sortnet/mesh_ops.hpp"
#include "util/rng.hpp"

namespace pcs::sortnet {
namespace {

TEST(Shearsort, HalvingFormula) {
  EXPECT_EQ(shearsort_halved(8), 4u);
  EXPECT_EQ(shearsort_halved(7), 4u);
  EXPECT_EQ(shearsort_halved(1), 1u);
  EXPECT_EQ(shearsort_halved(0), 0u);
}

TEST(Shearsort, PhaseCountFormula) {
  EXPECT_EQ(shearsort_phase_count(1), 1u);
  EXPECT_EQ(shearsort_phase_count(8), 4u);
  EXPECT_EQ(shearsort_phase_count(9), 5u);
}

// The 0/1 halving lemma: one phase at least halves the dirty-row count of a
// column-sorted matrix.
TEST(Shearsort, PhaseHalvesDirtyRows) {
  Rng rng(40);
  for (int trial = 0; trial < 50; ++trial) {
    BitMatrix m =
        BitMatrix::from_row_major(rng.bernoulli_bits(16 * 16, rng.uniform01()), 16, 16);
    sort_columns(m);
    std::size_t before = m.dirty_row_count();
    shearsort_phase(m);
    EXPECT_LE(m.dirty_row_count(), shearsort_halved(before)) << "trial " << trial;
  }
}

class ShearsortFull : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(ShearsortFull, SortsRowMajor) {
  auto [rows, cols] = GetParam();
  Rng rng(41 + rows * 31 + cols);
  for (int trial = 0; trial < 25; ++trial) {
    BitMatrix m = BitMatrix::from_row_major(
        rng.bernoulli_bits(rows * cols, rng.uniform01()), rows, cols);
    std::size_t count = m.count();
    shearsort_row_major(m);
    EXPECT_TRUE(is_row_major_sorted(m)) << "shape " << rows << "x" << cols;
    EXPECT_EQ(m.count(), count);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ShearsortFull,
    ::testing::Values(std::pair<std::size_t, std::size_t>{4, 4},
                      std::pair<std::size_t, std::size_t>{8, 8},
                      std::pair<std::size_t, std::size_t>{16, 16},
                      std::pair<std::size_t, std::size_t>{8, 16},
                      std::pair<std::size_t, std::size_t>{16, 4},
                      std::pair<std::size_t, std::size_t>{32, 32},
                      std::pair<std::size_t, std::size_t>{1, 8},
                      std::pair<std::size_t, std::size_t>{8, 1}));

TEST(Shearsort, FinishAfterFewDirtyRows) {
  // Three phases plus a row sort complete the job whenever at most eight
  // dirty rows remain -- the hand-off contract of the full-Revsort
  // hyperconcentrator (Section 6).
  Rng rng(42);
  for (int trial = 0; trial < 40; ++trial) {
    // Construct a column-sorted matrix with <= 8 dirty rows: clean 1-rows,
    // then <= 8 random rows, then clean 0-rows, then sort columns.
    const std::size_t side = 16;
    BitMatrix m(side, side);
    std::size_t clean_ones = rng.below(side - 8);
    for (std::size_t i = 0; i < clean_ones; ++i) {
      for (std::size_t j = 0; j < side; ++j) m.set(i, j, true);
    }
    for (std::size_t i = clean_ones; i < clean_ones + 8; ++i) {
      for (std::size_t j = 0; j < side; ++j) m.set(i, j, rng.chance(0.5));
    }
    sort_columns(m);
    ASSERT_LE(m.dirty_row_count(), 8u);
    shearsort_finish(m, 3);
    EXPECT_TRUE(is_row_major_sorted(m)) << "trial " << trial;
  }
}

TEST(Shearsort, AlreadySortedStaysSorted) {
  BitMatrix m(8, 8);
  for (std::size_t x = 0; x < 20; ++x) m.set(x / 8, x % 8, true);
  ASSERT_TRUE(is_row_major_sorted(m));
  shearsort_row_major(m);
  EXPECT_TRUE(is_row_major_sorted(m));
  EXPECT_EQ(m.count(), 20u);
}

}  // namespace
}  // namespace pcs::sortnet
