#include "message/stream_engine.hpp"

#include <gtest/gtest.h>

#include "core/bounds.hpp"
#include "switch/hyper_switch.hpp"
#include "switch/revsort_switch.hpp"
#include "util/assert.hpp"

namespace pcs::msg {
namespace {

TEST(StreamEngine, CycleAccounting) {
  pcs::sw::HyperSwitch sw(32, 16);
  ExactCountTraffic gen(32, 8);
  Rng rng(450);
  PipelineModel pipe{.payload_bits = 15, .gates_per_cycle = 4};
  StreamStats stats = run_stream(sw, gen, rng, 10, pipe, 12);
  EXPECT_EQ(stats.flight_cycles, 3u);
  EXPECT_EQ(stats.total_cycles, 10u * 16u + 3u);
  EXPECT_EQ(stats.offered, 80u);
  EXPECT_EQ(stats.delivered, 80u);  // 8 <= m = 16 every batch
  EXPECT_EQ(stats.payload_bits, 80u * 15u);
  EXPECT_DOUBLE_EQ(stats.delivery_rate(), 1.0);
}

TEST(StreamEngine, ThroughputApproachesModel) {
  // At saturation the measured bits/cycle approaches the PipelineModel's
  // prediction m * L / (L + 1) as the flight amortizes out.
  pcs::sw::HyperSwitch sw(64, 16);
  ExactCountTraffic gen(64, 64);  // saturating: every wire offers
  Rng rng(451);
  PipelineModel pipe{.payload_bits = 31, .gates_per_cycle = 8};
  StreamStats stats = run_stream(sw, gen, rng, 200, pipe, 16);
  double predicted = pipe.payload_bits_per_cycle(16.0);
  EXPECT_NEAR(stats.bits_per_cycle(), predicted, predicted * 0.02);
}

TEST(StreamEngine, PartialConcentratorUnderCapacityLossless) {
  pcs::sw::RevsortSwitch sw(256, 256);  // capacity 256 - 112 = 144
  ExactCountTraffic gen(256, 100);
  Rng rng(452);
  PipelineModel pipe{};
  StreamStats stats =
      run_stream(sw, gen, rng, 50, pipe, pcs::core::revsort_delay_formula(256, 7));
  EXPECT_DOUBLE_EQ(stats.delivery_rate(), 1.0);
}

TEST(StreamEngine, WidthMismatchRejected) {
  pcs::sw::HyperSwitch sw(32, 16);
  BernoulliTraffic gen(16, 0.5);
  Rng rng(453);
  PipelineModel pipe{};
  EXPECT_THROW(run_stream(sw, gen, rng, 5, pipe, 10), pcs::ContractViolation);
}

TEST(StreamEngine, DeeperSwitchOnlyAddsTailCycles) {
  pcs::sw::HyperSwitch sw(32, 16);
  ExactCountTraffic gen(32, 8);
  PipelineModel pipe{.payload_bits = 16, .gates_per_cycle = 8};
  Rng ra(454), rb(454);
  StreamStats shallow = run_stream(sw, gen, ra, 100, pipe, 8);
  ExactCountTraffic gen2(32, 8);
  StreamStats deep = run_stream(sw, gen2, rb, 100, pipe, 80);
  EXPECT_EQ(deep.delivered, shallow.delivered);
  EXPECT_EQ(deep.total_cycles - shallow.total_cycles,
            deep.flight_cycles - shallow.flight_cycles);
}

}  // namespace
}  // namespace pcs::msg
