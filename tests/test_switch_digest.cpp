// SwitchSpec::digest is the serving daemon's plan-cache key.  The golden
// values pin the byte layout: if any of these change, every persisted or
// cross-version cache key is invalidated, so a failure here means "you
// changed the digest algorithm", not "update the constants" -- bump the
// protocol/version story deliberately if that is really intended.
#include "switch/make_switch.hpp"

#include <gtest/gtest.h>

namespace pcs {
namespace {

SwitchSpec base_spec() {
  SwitchSpec spec;
  spec.family = "revsort";
  spec.n = 64;
  spec.m = 48;
  return spec;
}

TEST(SwitchDigest, GoldenValuesArePinned) {
  // Computed once from the FNV-1a layout (family bytes, n, m, beta bits,
  // r, s, passes, schedule, fault list, exec byte); pinned forever.
  EXPECT_EQ(base_spec().digest(plan::ExecMode::kFused),
            0x1d325abd870c673bull);
  EXPECT_EQ(base_spec().digest(plan::ExecMode::kLegacy),
            0x1d3259bd870c6588ull);

  SwitchSpec col;
  col.family = "columnsort";
  col.n = 256;
  col.m = 192;
  col.beta = 0.75;
  EXPECT_EQ(col.digest(plan::ExecMode::kFused), 0xf495d8b66a8bb226ull);

  SwitchSpec faulty = base_spec();
  faulty.faults.push_back(plan::ChipFault{1, 3});
  EXPECT_EQ(faulty.digest(plan::ExecMode::kFused), 0x5b01f3617324a7aeull);
}

TEST(SwitchDigest, StableAcrossCalls) {
  const SwitchSpec spec = base_spec();
  EXPECT_EQ(spec.digest(), spec.digest());
}

TEST(SwitchDigest, EveryFieldFeedsTheDigest) {
  const std::uint64_t base = base_spec().digest();

  SwitchSpec s = base_spec();
  s.family = "columnsort";
  EXPECT_NE(s.digest(), base);

  s = base_spec();
  s.n = 256;
  EXPECT_NE(s.digest(), base);

  s = base_spec();
  s.m = 32;
  EXPECT_NE(s.digest(), base);

  s = base_spec();
  s.beta = 0.5;
  EXPECT_NE(s.digest(), base);

  s = base_spec();
  s.r = 16;
  EXPECT_NE(s.digest(), base);

  s = base_spec();
  s.s = 4;
  EXPECT_NE(s.digest(), base);

  s = base_spec();
  s.passes = 2;
  EXPECT_NE(s.digest(), base);

  s = base_spec();
  s.schedule = plan::ReshapeSchedule::kAlternating;
  EXPECT_NE(s.digest(), base);

  s = base_spec();
  s.faults.push_back(plan::ChipFault{0, 0});
  EXPECT_NE(s.digest(), base);

  // The exec engine is part of the key: fused and legacy entries must
  // never alias in the cache.
  EXPECT_NE(base_spec().digest(plan::ExecMode::kFused),
            base_spec().digest(plan::ExecMode::kLegacy));
}

TEST(SwitchDigest, FaultOrderAndContentMatter) {
  SwitchSpec a = base_spec();
  a.faults = {plan::ChipFault{1, 2}, plan::ChipFault{3, 4}};
  SwitchSpec b = base_spec();
  b.faults = {plan::ChipFault{3, 4}, plan::ChipFault{1, 2}};
  SwitchSpec c = base_spec();
  c.faults = {plan::ChipFault{1, 2}};
  EXPECT_NE(a.digest(), b.digest());
  EXPECT_NE(a.digest(), c.digest());
}

// Guards against a classic concatenation bug: ("ab", n=1) colliding with
// ("a", ...) shapes -- the family length is mixed before its bytes.
TEST(SwitchDigest, FamilyLengthIsFramed) {
  SwitchSpec a;
  a.family = "rev";
  a.n = 64;
  SwitchSpec b;
  b.family = "re";
  b.n = 64;
  EXPECT_NE(a.digest(), b.digest());
}

}  // namespace
}  // namespace pcs
