#include "cost/table1.hpp"

#include <gtest/gtest.h>

#include "util/assert.hpp"

namespace pcs::cost {
namespace {

TEST(Table1, ColumnsPresent) {
  auto cols = table1_columns(4096, 2048);
  ASSERT_EQ(cols.size(), 4u);
  EXPECT_EQ(cols[0].header, "Revsort");
  EXPECT_NE(cols[1].header.find("0.5"), std::string::npos);
  EXPECT_NE(cols[2].header.find("0.625"), std::string::npos);
  EXPECT_NE(cols[3].header.find("0.75"), std::string::npos);
}

TEST(Table1, RevsortAndHalfBetaMatchAsymptotically) {
  // The paper's point: Columnsort at beta = 1/2 matches Revsort's pins,
  // chips, and volume up to constants, with *better* delay but *worse*
  // load ratio.
  auto cols = table1_columns(4096, 2048);
  const ResourceReport& rev = cols[0].report;
  const ResourceReport& half = cols[1].report;
  EXPECT_NEAR(static_cast<double>(half.pins_per_chip) /
                  static_cast<double>(rev.pins_per_chip),
              1.0, 0.25);
  EXPECT_NEAR(static_cast<double>(half.chip_count) /
                  static_cast<double>(rev.chip_count),
              0.5, 0.3);  // 2 sqrt(n) vs 4 sqrt(n) incl. shifters
  EXPECT_LT(half.gate_delays, rev.gate_delays);
  EXPECT_LT(half.load_ratio, rev.load_ratio);
}

TEST(Table1, DelayOrderingAcrossBetas) {
  auto cols = table1_columns(4096, 2048);
  // 2 lg n < 5/2 lg n < 3 lg n: beta = 1/2 fastest, 3/4 slowest.
  EXPECT_LT(cols[1].report.gate_delays, cols[2].report.gate_delays);
  EXPECT_LT(cols[2].report.gate_delays, cols[3].report.gate_delays);
  // Revsort ties Columnsort beta = 3/4 at 3 lg n (up to the O(1)).
  EXPECT_NEAR(static_cast<double>(cols[0].report.gate_delays),
              static_cast<double>(cols[3].report.gate_delays), 8.0);
}

TEST(Table1, ScalingExponentsAcrossN) {
  // Check the Theta exponents by ratio between n = 2^12 and n = 2^16.
  auto small = table1_columns(1u << 12, 1u << 11);
  auto large = table1_columns(1u << 16, 1u << 15);
  // Revsort pins ~ n^{1/2}: ratio 4 (x16 in n).
  double pin_ratio = static_cast<double>(large[0].report.pins_per_chip) /
                     static_cast<double>(small[0].report.pins_per_chip);
  EXPECT_NEAR(pin_ratio, 4.0, 0.5);
  // Columnsort beta = 3/4 pins ~ n^{3/4}: ratio 8.
  double pin_ratio34 = static_cast<double>(large[3].report.pins_per_chip) /
                       static_cast<double>(small[3].report.pins_per_chip);
  EXPECT_NEAR(pin_ratio34, 8.0, 1.0);
  // Revsort volume ~ n^{3/2}: ratio 64.
  double vol_ratio = static_cast<double>(large[0].report.volume_3d) /
                     static_cast<double>(small[0].report.volume_3d);
  EXPECT_NEAR(vol_ratio, 64.0, 4.0);
  // Columnsort beta = 3/4 volume ~ n^{7/4}: ratio 128.
  double vol_ratio34 = static_cast<double>(large[3].report.volume_3d) /
                       static_cast<double>(small[3].report.volume_3d);
  EXPECT_NEAR(vol_ratio34, 128.0, 20.0);
  // Chip counts: Revsort ~ n^{1/2} (x4), beta = 3/4 ~ n^{1/4} (x2).
  EXPECT_EQ(large[0].report.chip_count / small[0].report.chip_count, 4u);
  EXPECT_EQ(large[3].report.chip_count / small[3].report.chip_count, 2u);
}

TEST(Table1, RenderedTablesContainRows) {
  std::string concrete = render_table1(4096, 2048);
  for (const char* needle : {"pins per chip", "chip count", "load ratio",
                             "gate delays", "volume"}) {
    EXPECT_NE(concrete.find(needle), std::string::npos) << needle;
  }
  std::string asym = render_table1_asymptotic();
  EXPECT_NE(asym.find("Revsort"), std::string::npos);
  EXPECT_NE(asym.find("3 lg n + O(1)"), std::string::npos);
}

TEST(Table1, RequiresPowerOfTwo) {
  EXPECT_THROW(table1_columns(1000, 500), pcs::ContractViolation);
}

}  // namespace
}  // namespace pcs::cost
