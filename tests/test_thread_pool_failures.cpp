// Failure-mode tests for the persistent ThreadPool: exceptions landing while
// other workers are mid-chunk, nested ranges, and pool reuse after a failed
// range.  These complement test_parallel.cpp's happy paths; everything here
// runs on explicit multi-worker pools so the behavior is exercised even on
// single-core machines.
#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/parallel.hpp"

namespace pcs {
namespace {

TEST(ThreadPoolFailures, ExceptionWhileOtherWorkersActive) {
  ThreadPool pool(4);
  std::atomic<int> started{0};
  std::atomic<int> finished{0};
  auto run = [&]() {
    pool.for_range(
        0, 64,
        [&](std::size_t i) {
          started.fetch_add(1, std::memory_order_relaxed);
          if (i == 13) throw std::runtime_error("chunk 13 died");
          // Keep other workers busy so the throw lands mid-range, not after.
          std::this_thread::sleep_for(std::chrono::microseconds(200));
          finished.fetch_add(1, std::memory_order_relaxed);
        },
        /*max_parallelism=*/4, /*grain=*/1);
  };
  EXPECT_THROW(run(), std::runtime_error);
  // Bodies that already started still finished; nothing ran twice.
  EXPECT_LE(finished.load(), 63);
  EXPECT_LE(started.load(), 64);
}

TEST(ThreadPoolFailures, FirstExceptionWinsWhenManyThrow) {
  ThreadPool pool(4);
  try {
    pool.for_range(
        0, 32, [&](std::size_t i) { throw std::runtime_error("body " + std::to_string(i)); },
        /*max_parallelism=*/4, /*grain=*/1);
    FAIL() << "should have thrown";
  } catch (const std::runtime_error& e) {
    // Exactly one of the thrown exceptions is rethrown, unchanged.
    EXPECT_EQ(std::string(e.what()).rfind("body ", 0), 0u) << e.what();
  }
}

TEST(ThreadPoolFailures, PoolSurvivesExceptionAndRunsCleanRanges) {
  ThreadPool pool(3);
  for (int round = 0; round < 3; ++round) {
    EXPECT_THROW(
        pool.for_range(
            0, 16, [](std::size_t i) { if (i == 7) throw std::logic_error("x"); },
            3, 1),
        std::logic_error);
    std::vector<std::atomic<int>> hits(100);
    pool.for_range(
        0, 100, [&](std::size_t i) { hits[i].fetch_add(1); }, 3, 1);
    for (std::size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " after round " << round;
    }
  }
  // submit/wait_idle also still work after failed ranges.
  std::atomic<int> tasks{0};
  for (int t = 0; t < 8; ++t) pool.submit([&] { tasks.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(tasks.load(), 8);
}

TEST(ThreadPoolFailures, NestedRangeRunsEveryPairOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kOuter = 8;
  constexpr std::size_t kInner = 16;
  std::vector<std::atomic<int>> hits(kOuter * kInner);
  pool.for_range(
      0, kOuter,
      [&](std::size_t i) {
        // A body that re-enters the pool must run its range inline instead of
        // deadlocking on the queue it is currently servicing.
        pool.for_range(
            0, kInner, [&](std::size_t j) { hits[i * kInner + j].fetch_add(1); },
            4, 1);
      },
      4, 1);
  for (std::size_t p = 0; p < hits.size(); ++p) {
    EXPECT_EQ(hits[p].load(), 1) << "pair " << p;
  }
}

TEST(ThreadPoolFailures, NestedExceptionPropagatesToOutermostCaller) {
  ThreadPool pool(4);
  auto run = [&]() {
    pool.for_range(
        0, 4,
        [&](std::size_t i) {
          pool.for_range(
              0, 8,
              [&](std::size_t j) {
                if (i == 2 && j == 5) throw std::runtime_error("nested failure");
              },
              4, 1);
        },
        4, 1);
  };
  EXPECT_THROW(run(), std::runtime_error);
  // And the pool is still healthy afterwards.
  std::atomic<int> ran{0};
  pool.for_range(0, 10, [&](std::size_t) { ran.fetch_add(1); }, 4, 1);
  EXPECT_EQ(ran.load(), 10);
}

TEST(ThreadPoolFailures, ChunkedVariantRethrowsAndSurvives) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.for_chunks(
          0, 256,
          [](std::size_t lo, std::size_t) {
            if (lo >= 64) throw std::runtime_error("chunk failed");
          },
          4, 32),
      std::runtime_error);
  std::atomic<std::size_t> covered{0};
  pool.for_chunks(
      0, 256, [&](std::size_t lo, std::size_t hi) { covered.fetch_add(hi - lo); }, 4,
      32);
  EXPECT_EQ(covered.load(), 256u);
}

TEST(ThreadPoolFailures, GlobalParallelForSurvivesException) {
  // The process-wide pool backs every route_batch; a failed sweep must not
  // poison later ones.
  EXPECT_THROW(
      parallel_for(
          0, 32, [](std::size_t i) { if (i == 3) throw std::runtime_error("boom"); },
          4, 1),
      std::runtime_error);
  std::vector<std::atomic<int>> hits(64);
  parallel_for(0, 64, [&](std::size_t i) { hits[i].fetch_add(1); }, 4, 1);
  for (std::size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPoolFailures, NonStdExceptionIsStillDelivered) {
  ThreadPool pool(2);
  struct Custom {};
  EXPECT_THROW(
      pool.for_range(0, 8, [](std::size_t i) { if (i == 1) throw Custom{}; }, 2, 1),
      Custom);
  std::atomic<int> ran{0};
  pool.for_range(0, 8, [&](std::size_t) { ran.fetch_add(1); }, 2, 1);
  EXPECT_EQ(ran.load(), 8);
}

}  // namespace
}  // namespace pcs
