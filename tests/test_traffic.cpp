#include "message/traffic.hpp"

#include <gtest/gtest.h>

#include "util/assert.hpp"

namespace pcs::msg {
namespace {

TEST(Traffic, BernoulliDensity) {
  BernoulliTraffic gen(1000, 0.25);
  Rng rng(210);
  std::size_t total = 0;
  for (int t = 0; t < 50; ++t) total += gen.next(rng).count();
  double density = static_cast<double>(total) / (1000.0 * 50.0);
  EXPECT_NEAR(density, 0.25, 0.03);
  EXPECT_EQ(gen.width(), 1000u);
  EXPECT_NE(gen.name().find("bernoulli"), std::string::npos);
}

TEST(Traffic, ExactCountAlwaysExact) {
  ExactCountTraffic gen(100, 37);
  Rng rng(211);
  for (int t = 0; t < 20; ++t) EXPECT_EQ(gen.next(rng).count(), 37u);
  EXPECT_THROW(ExactCountTraffic(10, 11), pcs::ContractViolation);
}

TEST(Traffic, BurstyProducesTemporalCorrelation) {
  // With sticky states, consecutive samples correlate more than independent
  // Bernoulli would: measure the lag-1 autocorrelation of a single wire.
  BurstyTraffic gen(64, 0.9, 0.05, 0.05, 0.05);
  Rng rng(212);
  std::vector<BitVec> frames;
  for (int t = 0; t < 400; ++t) frames.push_back(gen.next(rng));
  std::size_t agree = 0, total = 0;
  for (std::size_t t = 1; t < frames.size(); ++t) {
    for (std::size_t i = 0; i < 64; ++i) {
      agree += frames[t].get(i) == frames[t - 1].get(i);
      ++total;
    }
  }
  double agreement = static_cast<double>(agree) / static_cast<double>(total);
  EXPECT_GT(agreement, 0.6);  // far above the ~0.5 of i.i.d. fair bits
}

TEST(Traffic, HotSpotConcentratesLoad) {
  HotSpotTraffic gen(100, 20, 0.9, 0.05);
  Rng rng(213);
  std::size_t hot_hits = 0, cold_hits = 0;
  for (int t = 0; t < 100; ++t) {
    BitVec v = gen.next(rng);
    for (std::size_t i = 0; i < 20; ++i) hot_hits += v.get(i);
    for (std::size_t i = 20; i < 100; ++i) cold_hits += v.get(i);
  }
  EXPECT_GT(hot_hits, 15 * 100u);   // ~0.9 * 20 * 100 = 1800
  EXPECT_LT(cold_hits, 10 * 100u);  // ~0.05 * 80 * 100 = 400
}

TEST(Traffic, AdversarialFamilyExactCountsAndCycling) {
  AdversarialTraffic gen(64, 16, 8);
  Rng rng(214);
  std::vector<BitVec> patterns;
  for (std::size_t f = 0; f < gen.family_size(); ++f) {
    BitVec v = gen.next(rng);
    EXPECT_EQ(v.count(), 16u) << "pattern " << f;
    patterns.push_back(v);
  }
  // The family cycles: the next pattern equals the first.
  EXPECT_EQ(gen.next(rng), patterns[0]);
  // Patterns are genuinely distinct.
  for (std::size_t a = 0; a < patterns.size(); ++a) {
    for (std::size_t b = a + 1; b < patterns.size(); ++b) {
      EXPECT_NE(patterns[a], patterns[b]) << a << " vs " << b;
    }
  }
}

TEST(Traffic, AdversarialEdgeCounts) {
  Rng rng(215);
  AdversarialTraffic empty(16, 0, 4);
  for (std::size_t f = 0; f < empty.family_size(); ++f) {
    EXPECT_EQ(empty.next(rng).count(), 0u);
  }
  AdversarialTraffic full(16, 16, 4);
  for (std::size_t f = 0; f < full.family_size(); ++f) {
    EXPECT_EQ(full.next(rng).count(), 16u);
  }
}

}  // namespace
}  // namespace pcs::msg
