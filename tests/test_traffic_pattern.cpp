// Pattern algebra: the permutation patterns are bijections at every
// addressable width, the addressability preconditions reject exactly the
// widths the classic definitions cannot serve, tornado wraps at any n, and
// the adversarial family keeps exact valid counts.
#include "traffic/pattern.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "util/assert.hpp"

namespace pcs::traffic {
namespace {

const PatternKind kPermutations[] = {PatternKind::kTranspose,
                                     PatternKind::kBitComp,
                                     PatternKind::kBitRev,
                                     PatternKind::kShuffle,
                                     PatternKind::kTornado};

TEST(TrafficPattern, KeywordRoundTrip) {
  const char* names[] = {"uniform", "transpose", "bitcomp",     "bitrev",
                         "shuffle", "tornado",   "hotspot",     "adversarial"};
  for (const char* name : names) {
    EXPECT_STREQ(pattern_name(pattern_from_string(name)), name);
  }
  EXPECT_THROW(pattern_from_string("nonuniform"), ContractViolation);
  EXPECT_THROW(pattern_from_string(""), ContractViolation);
}

TEST(TrafficPattern, PermutationPredicate) {
  for (PatternKind kind : kPermutations) EXPECT_TRUE(is_permutation(kind));
  EXPECT_FALSE(is_permutation(PatternKind::kUniform));
  EXPECT_FALSE(is_permutation(PatternKind::kHotspot));
  EXPECT_FALSE(is_permutation(PatternKind::kAdversarial));
}

TEST(TrafficPattern, PermutationsAreBijectionsAtSeveralWidths) {
  for (std::size_t n : {std::size_t{16}, std::size_t{64}, std::size_t{256}}) {
    for (PatternKind kind : kPermutations) {
      require_addressable(kind, n);  // 16/64/256 all have even bit counts
      std::set<std::size_t> image;
      for (std::size_t src = 0; src < n; ++src) {
        const std::size_t dst = permute_dest(kind, src, n);
        ASSERT_LT(dst, n) << pattern_name(kind) << " n=" << n;
        image.insert(dst);
      }
      EXPECT_EQ(image.size(), n) << pattern_name(kind) << " n=" << n
                                 << " is not a bijection";
    }
  }
}

TEST(TrafficPattern, NonPowerOfTwoWidthsAreRejected) {
  for (PatternKind kind : {PatternKind::kTranspose, PatternKind::kBitComp,
                           PatternKind::kBitRev, PatternKind::kShuffle}) {
    EXPECT_THROW(require_addressable(kind, 12), ContractViolation)
        << pattern_name(kind);
    EXPECT_THROW(require_addressable(kind, 0), ContractViolation)
        << pattern_name(kind);
  }
  // Tornado is defined at every n, including non-powers of two.
  require_addressable(PatternKind::kTornado, 12);
  require_addressable(PatternKind::kUniform, 12);
}

TEST(TrafficPattern, TransposeNeedsAnEvenBitCount) {
  // 32 = 2^5: a power of two, but the address halves cannot be swapped.
  EXPECT_THROW(require_addressable(PatternKind::kTranspose, 32),
               ContractViolation);
  require_addressable(PatternKind::kBitComp, 32);
  require_addressable(PatternKind::kTranspose, 64);
  // Transpose over 16 endpoints swaps 2-bit halves: src 1 (0001) -> 4 (0100).
  EXPECT_EQ(permute_dest(PatternKind::kTranspose, 1, 16), 4u);
  EXPECT_EQ(permute_dest(PatternKind::kTranspose, 4, 16), 1u);
  EXPECT_EQ(permute_dest(PatternKind::kTranspose, 5, 16), 5u);
}

TEST(TrafficPattern, ClassicDefinitionsSpotChecks) {
  // bitcomp over 16: complement all 4 address bits.
  EXPECT_EQ(permute_dest(PatternKind::kBitComp, 0, 16), 15u);
  EXPECT_EQ(permute_dest(PatternKind::kBitComp, 5, 16), 10u);
  // bitrev over 16: 0001 -> 1000.
  EXPECT_EQ(permute_dest(PatternKind::kBitRev, 1, 16), 8u);
  EXPECT_EQ(permute_dest(PatternKind::kBitRev, 6, 16), 6u);  // 0110 palindrome
  // shuffle over 16: rotate left, 1000 -> 0001.
  EXPECT_EQ(permute_dest(PatternKind::kShuffle, 8, 16), 1u);
  EXPECT_EQ(permute_dest(PatternKind::kShuffle, 3, 16), 6u);
}

TEST(TrafficPattern, TornadoWrapsAtAnyWidth) {
  // dest = (src + ceil(n/2) - 1) mod n; check the wrap explicitly.
  for (std::size_t n : {std::size_t{7}, std::size_t{12}, std::size_t{16}}) {
    const std::size_t hop = (n + 1) / 2 - 1;
    std::set<std::size_t> image;
    for (std::size_t src = 0; src < n; ++src) {
      const std::size_t dst = permute_dest(PatternKind::kTornado, src, n);
      EXPECT_EQ(dst, (src + hop) % n) << "n=" << n << " src=" << src;
      image.insert(dst);
    }
    EXPECT_EQ(image.size(), n);
    // The last sources wrap past the end rather than clamping.
    EXPECT_EQ(permute_dest(PatternKind::kTornado, n - 1, n), (n - 1 + hop) % n);
    EXPECT_LT(permute_dest(PatternKind::kTornado, n - 1, n), n);
  }
}

TEST(TrafficPattern, HotspotWiresClampAndReject) {
  EXPECT_EQ(hotspot_wires(64, 0.125), 8u);
  EXPECT_EQ(hotspot_wires(100, 0.125), 12u);   // floor(12.5)
  EXPECT_EQ(hotspot_wires(4, 0.01), 1u);       // never below one wire
  EXPECT_EQ(hotspot_wires(64, 1.0), 64u);      // fraction 1 = every wire hot
  for (double bad : {0.0, -0.25, 1.5}) {
    try {
      hotspot_wires(64, bad);
      FAIL() << "fraction " << bad << " accepted";
    } catch (const ContractViolation& e) {
      EXPECT_NE(std::string(e.what()).find("hotspot_fraction"),
                std::string::npos)
          << e.what();
    }
  }
}

TEST(TrafficPattern, RateProfileShapes) {
  const auto flat = rate_profile(PatternKind::kUniform, 16, 0.3, 0.125);
  ASSERT_EQ(flat.size(), 16u);
  for (double r : flat) EXPECT_DOUBLE_EQ(r, 0.3);
  // Hotspot front-loads the hot block at min(1, 4p), cold wires at p/2.
  const auto hot = rate_profile(PatternKind::kHotspot, 64, 0.2, 0.125);
  ASSERT_EQ(hot.size(), 64u);
  for (std::size_t i = 0; i < 8; ++i) EXPECT_DOUBLE_EQ(hot[i], 0.8) << i;
  for (std::size_t i = 8; i < 64; ++i) EXPECT_DOUBLE_EQ(hot[i], 0.1) << i;
  // Saturating intensity: the hot block caps at 1.
  const auto sat = rate_profile(PatternKind::kHotspot, 64, 0.5, 0.125);
  for (std::size_t i = 0; i < 8; ++i) EXPECT_DOUBLE_EQ(sat[i], 1.0) << i;
}

TEST(TrafficPattern, AdversarialLayoutsKeepExactCounts) {
  for (std::size_t k : {std::size_t{0}, std::size_t{1}, std::size_t{16},
                        std::size_t{33}, std::size_t{64}}) {
    for (std::size_t idx = 0; idx < kAdversarialFamilySize; ++idx) {
      const BitVec v = adversarial_layout(64, k, 8, idx);
      ASSERT_EQ(v.size(), 64u);
      EXPECT_EQ(v.count(), k) << "layout " << idx << " k=" << k;
    }
  }
  // k past the width is a caller error, not a silent clamp.
  EXPECT_THROW(adversarial_layout(16, 99, 4, 0), ContractViolation);
  // The family cycles by index modulo its size.
  EXPECT_EQ(adversarial_layout(64, 16, 8, 2),
            adversarial_layout(64, 16, 8, 2 + kAdversarialFamilySize));
  // Layouts are genuinely distinct at interior k.
  for (std::size_t a = 0; a < kAdversarialFamilySize; ++a) {
    for (std::size_t b = a + 1; b < kAdversarialFamilySize; ++b) {
      EXPECT_NE(adversarial_layout(64, 16, 8, a),
                adversarial_layout(64, 16, 8, b))
          << a << " vs " << b;
    }
  }
}

}  // namespace
}  // namespace pcs::traffic
