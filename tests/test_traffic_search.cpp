// Bound-stress search: deterministic per seed, never below the paper's
// guaranteed floor, correct derived ratios, and genuinely adversarial --
// the worst pattern found routes no more than the structured family does.
#include "traffic/search.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "switch/revsort_switch.hpp"
#include "traffic/pattern.hpp"
#include "util/assert.hpp"

namespace pcs::traffic {
namespace {

SearchOptions fast_opts(std::size_t k = 0) {
  SearchOptions o;
  o.k = k;
  o.restarts = 6;
  o.steps = 60;
  o.seed = 1987;
  return o;
}

TEST(TrafficSearch, DefaultsToJustPastTheGuarantee) {
  sw::RevsortSwitch s(64, 48);
  const SearchResult r = worst_concentration_search(s, fast_opts());
  EXPECT_EQ(r.k, s.guaranteed_capacity() + 1);
  EXPECT_EQ(r.worst.count(), r.k);
  EXPECT_GT(r.evaluations, 0u);
}

TEST(TrafficSearch, NeverBeatsTheContractFloor) {
  sw::RevsortSwitch s(64, 48);
  const std::size_t cap = s.guaranteed_capacity();
  for (std::size_t k : {cap + 1, cap + 3, std::size_t{48}, std::size_t{64}}) {
    const SearchResult r = worst_concentration_search(s, fast_opts(k));
    EXPECT_GE(r.routed, std::min(k, cap)) << "k=" << k;
    EXPECT_LE(r.routed, std::min(k, s.outputs())) << "k=" << k;
    const double denom = static_cast<double>(std::min(k, s.outputs()));
    EXPECT_DOUBLE_EQ(r.concentration, static_cast<double>(r.routed) / denom);
    EXPECT_DOUBLE_EQ(r.bound,
                     static_cast<double>(std::min(k, cap)) / denom);
    EXPECT_GE(r.concentration, r.bound - 1e-12) << "k=" << k;
  }
}

TEST(TrafficSearch, BelowCapacityEverythingRoutes) {
  sw::RevsortSwitch s(64, 48);
  const std::size_t k = s.guaranteed_capacity();
  const SearchResult r = worst_concentration_search(s, fast_opts(k));
  EXPECT_EQ(r.routed, k);
  EXPECT_DOUBLE_EQ(r.concentration, 1.0);
}

TEST(TrafficSearch, DeterministicPerSeed) {
  sw::RevsortSwitch s(64, 48);
  const SearchResult a = worst_concentration_search(s, fast_opts());
  const SearchResult b = worst_concentration_search(s, fast_opts());
  EXPECT_EQ(a.worst, b.worst);
  EXPECT_EQ(a.routed, b.routed);
  EXPECT_EQ(a.evaluations, b.evaluations);
}

TEST(TrafficSearch, AtLeastAsBadAsTheStructuredFamily) {
  // The restarts seed from the structured adversarial layouts, so the hill
  // climb can only improve (lower routed count) on the family's best.
  sw::RevsortSwitch s(64, 48);
  SearchOptions o = fast_opts(s.outputs());
  const SearchResult r = worst_concentration_search(s, o);
  std::size_t family_best = s.outputs();
  for (std::size_t i = 0; i < kAdversarialFamilySize; ++i) {
    const BitVec layout = adversarial_layout(64, o.k, o.chip_w, i);
    family_best = std::min(family_best, s.route(layout).routed_count());
  }
  EXPECT_LE(r.routed, family_best);
}

TEST(TrafficSearch, RejectsImpossibleK) {
  sw::RevsortSwitch s(64, 48);
  EXPECT_THROW(worst_concentration_search(s, fast_opts(65)), ContractViolation);
}

}  // namespace
}  // namespace pcs::traffic
