// TrafficSource behaviour: golden-pinned bit-identity of the legacy
// arrival= configs through the src/traffic factory, determinism per seed,
// hotspot intensity semantics, and the destination-side pattern contracts.
//
// The golden hashes were captured from the legacy msg:: generators before
// the traffic subsystem existed; the factory must reproduce those offered
// streams byte for byte, so these pins are the refactor's safety net.
#include "traffic/traffic_source.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "runtime/config.hpp"
#include "traffic/factory.hpp"
#include "util/assert.hpp"
#include "util/bitvec.hpp"
#include "util/rng.hpp"

namespace pcs::traffic {
namespace {

// FNV-1a 64 over little-endian u64 bytes: the digest every golden pin uses.
std::uint64_t fnv_mix(std::uint64_t h, std::uint64_t value) {
  for (int b = 0; b < 8; ++b) {
    h ^= (value >> (8 * b)) & 0xffu;
    h *= 1099511628211ULL;
  }
  return h;
}

std::uint64_t fnv_mix_bits(std::uint64_t h, const BitVec& v) {
  h = fnv_mix(h, v.size());
  for (std::uint64_t w : v.words()) h = fnv_mix(h, w);
  return h;
}

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;

std::uint64_t stream_hash(TrafficSource& src, std::uint64_t seed,
                          int epochs) {
  Rng rng(seed);
  std::uint64_t h = kFnvOffset;
  for (int e = 0; e < epochs; ++e) h = fnv_mix_bits(h, src.next_valid(rng));
  return h;
}

struct GoldenCase {
  const char* arrival;
  std::size_t width;
  double p;
  std::uint64_t seed;
  int epochs;
  std::uint64_t want;
  // The explicit pattern=/injection= spelling of the same legacy arrival.
  const char* pattern;
  const char* injection;
};

const GoldenCase kGolden[] = {
    {"bernoulli", 64, 0.25, 17, 8, 0x00f07a8021ae5b08ULL, "uniform", "bernoulli"},
    {"exact", 64, 0.25, 17, 8, 0x385675b2ec847feeULL, "uniform", "exact"},
    {"bursty", 64, 0.25, 17, 8, 0xe1f3f5a93c03d6dbULL, "uniform", "onoff"},
    {"hotspot", 64, 0.25, 17, 8, 0x25ed9cccc1f16b7dULL, "hotspot", "bernoulli"},
    {"bernoulli", 100, 0.55, 99, 5, 0x6997db698c3c968dULL, "uniform", "bernoulli"},
    {"exact", 100, 0.55, 99, 5, 0x9480ee4a9fb41d68ULL, "uniform", "exact"},
    {"bursty", 100, 0.55, 99, 5, 0xdc2e7161d7eb0c53ULL, "uniform", "onoff"},
    {"hotspot", 100, 0.55, 99, 5, 0xed331f0c1269daabULL, "hotspot", "bernoulli"},
};

TEST(TrafficSourceGolden, LegacyArrivalConfigsAreBitIdentical) {
  for (const GoldenCase& c : kGolden) {
    rt::RuntimeConfig cfg;
    cfg.arrival = c.arrival;
    cfg.arrival_p = c.p;
    auto src = rt::make_traffic(cfg, c.width);
    EXPECT_EQ(stream_hash(*src, c.seed, c.epochs), c.want)
        << "arrival=" << c.arrival << " width=" << c.width << " p=" << c.p;
  }
}

TEST(TrafficSourceGolden, ExplicitPatternInjectionKeysMatchTheLegacyStreams) {
  // pattern=/injection= spelled out must hit the exact same bytes as the
  // arrival= shorthand they replace.
  for (const GoldenCase& c : kGolden) {
    rt::RuntimeConfig cfg;
    cfg.arrival_p = c.p;
    cfg.pattern = c.pattern;
    cfg.injection = c.injection;
    auto src = rt::make_traffic(cfg, c.width);
    EXPECT_EQ(stream_hash(*src, c.seed, c.epochs), c.want)
        << "pattern=" << c.pattern << " injection=" << c.injection;
  }
}

TEST(TrafficSourceGolden, FabricUniformDestinationStreamIsBitIdentical) {
  // The fabric draws one destination per accepted arrival, ascending source
  // order; the uniform pattern must replay the legacy rng.below stream.
  rt::RuntimeConfig cfg;
  cfg.arrival = "bernoulli";
  cfg.arrival_p = 0.3;
  auto src = rt::make_traffic(cfg, 16);
  Rng rng(5);
  std::uint64_t h = kFnvOffset;
  for (int e = 0; e < 12; ++e) {
    const BitVec v = src->next_valid(rng);
    h = fnv_mix_bits(h, v);
    for (std::size_t g = 0; g < v.size(); ++g) {
      if (v.get(g)) h = fnv_mix(h, src->dest_for(rng, g, 8));
    }
  }
  EXPECT_EQ(h, 0x798de0c2e902a4f0ULL);
}

TEST(TrafficSource, EqualSeedsGiveByteIdenticalStreams) {
  const char* patterns[] = {"uniform", "hotspot", "tornado", "adversarial"};
  const char* injections[] = {"bernoulli", "onoff", "exact"};
  for (const char* pattern : patterns) {
    for (const char* injection : injections) {
      TrafficSpec spec;
      spec.width = 64;
      spec.pattern = pattern;
      spec.injection = injection;
      spec.intensity = 0.4;
      auto a = make_source(spec);
      auto b = make_source(spec);
      Rng ra(123), rb(123);
      for (int e = 0; e < 16; ++e) {
        ASSERT_EQ(a->next_valid(ra), b->next_valid(rb))
            << pattern << "/" << injection << " epoch " << e;
      }
    }
  }
}

TEST(TrafficSource, DifferentSeedsDiverge) {
  TrafficSpec spec;
  spec.width = 64;
  auto a = make_source(spec);
  auto b = make_source(spec);
  Rng ra(123), rb(124);
  bool diverged = false;
  for (int e = 0; e < 16 && !diverged; ++e) {
    diverged = a->next_valid(ra) != b->next_valid(rb);
  }
  EXPECT_TRUE(diverged);
}

TEST(TrafficSource, HotspotIntensitySemantics) {
  // fraction 0.25 of 128 wires = 32 hot wires at min(1, 4p), rest at p/2.
  TrafficSpec spec;
  spec.width = 128;
  spec.pattern = "hotspot";
  spec.intensity = 0.2;
  spec.hotspot_fraction = 0.25;
  auto src = make_source(spec);
  Rng rng(42);
  std::size_t hot_hits = 0, cold_hits = 0;
  const int epochs = 400;
  for (int e = 0; e < epochs; ++e) {
    const BitVec v = src->next_valid(rng);
    for (std::size_t i = 0; i < 32; ++i) hot_hits += v.get(i);
    for (std::size_t i = 32; i < 128; ++i) cold_hits += v.get(i);
  }
  const double hot_density = hot_hits / (32.0 * epochs);
  const double cold_density = cold_hits / (96.0 * epochs);
  EXPECT_NEAR(hot_density, 0.8, 0.05);   // min(1, 4 * 0.2)
  EXPECT_NEAR(cold_density, 0.1, 0.03);  // 0.2 / 2
}

TEST(TrafficSource, HotspotFractionOutOfRangeIsRejectedByName) {
  for (double bad : {0.0, -0.5, 1.01}) {
    TrafficSpec spec;
    spec.width = 64;
    spec.pattern = "hotspot";
    spec.hotspot_fraction = bad;
    try {
      make_source(spec);
      FAIL() << "hotspot_fraction " << bad << " accepted";
    } catch (const ContractViolation& e) {
      EXPECT_NE(std::string(e.what()).find("hotspot_fraction"),
                std::string::npos)
          << e.what();
    }
  }
  // The config layer rejects the same range at parse time, naming the key.
  try {
    rt::parse_config_text("hotspot_fraction = 1.5\n");
    FAIL() << "config accepted hotspot_fraction = 1.5";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("hotspot_fraction"),
              std::string::npos)
        << e.what();
  }
}

TEST(TrafficSource, HotspotDestinationsConcentrate) {
  TrafficSpec spec;
  spec.width = 64;
  spec.pattern = "hotspot";
  spec.hotspot_fraction = 0.125;
  auto src = make_source(spec);
  Rng rng(7);
  const std::size_t sinks = 64, hot = 8;
  std::size_t hot_dests = 0;
  const int draws = 4000;
  for (int d = 0; d < draws; ++d) {
    const std::uint32_t dest = src->dest_for(rng, d % 64, sinks);
    ASSERT_LT(dest, sinks);
    hot_dests += dest < hot;
  }
  // Half the draws go uniformly over all sinks, half land in the hot block:
  // expect 0.5 + 0.5 * 8/64 = 0.5625 of destinations below `hot`.
  EXPECT_NEAR(hot_dests / static_cast<double>(draws), 0.5625, 0.04);
}

TEST(TrafficSource, PermutationDestinationsConsumeNoRandomness) {
  TrafficSpec spec;
  spec.width = 16;
  spec.pattern = "transpose";
  auto src = make_source(spec);
  Rng a(9), b(9);
  for (std::size_t s = 0; s < 16; ++s) {
    EXPECT_EQ(src->dest_for(a, s, 16), permute_dest(PatternKind::kTranspose, s, 16));
  }
  // The rng stream is untouched: both generators still agree.
  EXPECT_EQ(a.next(), b.next());
}

TEST(TrafficSource, FactoryRejectsBadSpecs) {
  TrafficSpec spec;
  spec.width = 64;
  spec.pattern = "zipf";
  EXPECT_THROW(make_source(spec), ContractViolation);
  spec.pattern = "uniform";
  spec.injection = "poisson";
  EXPECT_THROW(make_source(spec), ContractViolation);
  spec.injection = "bernoulli";
  spec.pattern = "worstcase";  // needs a switch to stress
  EXPECT_THROW(make_source(spec), ContractViolation);
  // ComposedSource is the pattern x process composition only; the
  // adversarial family has its own deterministic source.
  EXPECT_THROW(ComposedSource(PatternKind::kAdversarial,
                              std::make_unique<BernoulliProcess>(16, 0.5), 0.125),
               ContractViolation);
}

TEST(TrafficSource, FixedPatternReplaysItsBitsForever) {
  BitVec p(8);
  p.set(1, true);
  p.set(6, true);
  FixedPatternSource src(p, "pinned");
  Rng rng(3);
  for (int e = 0; e < 5; ++e) EXPECT_EQ(src.next_valid(rng), p);
  EXPECT_NE(src.name().find("pinned"), std::string::npos);
}

TEST(TrafficSource, NamesDescribeTheComposition) {
  TrafficSpec spec;
  spec.width = 64;
  spec.pattern = "tornado";
  spec.injection = "onoff";
  auto src = make_source(spec);
  EXPECT_NE(src->name().find("tornado"), std::string::npos);
  EXPECT_NE(src->name().find("onoff"), std::string::npos);
  EXPECT_EQ(src->width(), 64u);
}

}  // namespace
}  // namespace pcs::traffic
