// Trace record / replay: wrapping a live source records exactly what it
// produced, the binary file round-trips losslessly, replay reproduces the
// offered stream byte for byte without consuming the campaign rng, and
// outrunning a recording is a contract violation, not silence.
#include "traffic/trace.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "traffic/factory.hpp"
#include "util/assert.hpp"
#include "util/bitvec.hpp"
#include "util/rng.hpp"

namespace pcs::traffic {
namespace {

std::string tmp_path(const char* name) {
  return ::testing::TempDir() + name;
}

std::unique_ptr<TrafficSource> hotspot_source(std::size_t width) {
  TrafficSpec spec;
  spec.width = width;
  spec.pattern = "hotspot";
  spec.injection = "onoff";
  spec.intensity = 0.4;
  return make_source(spec);
}

TEST(TrafficTrace, RecordFileReplayRoundTripIsExact) {
  const std::size_t width = 48, sinks = 16;
  const int epochs = 10;

  // Record a live hotspot x onoff stream including its destination draws.
  TraceRecorder recorder(width, 1);
  auto recording = recorder.wrap(hotspot_source(width), 0);
  Rng rng(2026);
  std::vector<BitVec> offered;
  std::vector<std::vector<std::uint32_t>> dests;
  for (int e = 0; e < epochs; ++e) {
    offered.push_back(recording->next_valid(rng));
    dests.emplace_back();
    for (std::size_t g = 0; g < width; ++g) {
      if (offered.back().get(g)) {
        dests.back().push_back(recording->dest_for(rng, g, sinks));
      }
    }
  }

  const std::string path = tmp_path("pcs_trace_roundtrip.bin");
  recorder.log().write_file(path);
  const TraceLog loaded = TraceLog::read_file(path);
  std::remove(path.c_str());

  ASSERT_EQ(loaded.width, width);
  ASSERT_EQ(loaded.streams.size(), 1u);
  ASSERT_EQ(loaded.streams[0].epochs.size(), static_cast<std::size_t>(epochs));

  // Replay with a *different* seed: the stream must still match, because
  // replay never touches the rng.
  auto replay = make_replay(std::make_shared<const TraceLog>(loaded), 0);
  Rng other(1);
  for (int e = 0; e < epochs; ++e) {
    const BitVec v = replay->next_valid(other);
    ASSERT_EQ(v, offered[static_cast<std::size_t>(e)]) << "epoch " << e;
    std::size_t i = 0;
    for (std::size_t g = 0; g < width; ++g) {
      if (v.get(g)) {
        EXPECT_EQ(replay->dest_for(other, g, sinks),
                  dests[static_cast<std::size_t>(e)][i++])
            << "epoch " << e << " src " << g;
      }
    }
  }
  // Nothing above consumed `other`: a twin seeded the same still agrees.
  Rng twin(1);
  EXPECT_EQ(other.next(), twin.next());
}

TEST(TrafficTrace, ReplayLooksDestinationsUpBySourceNotDrawOrder) {
  // A replay consumer may accept a different subset of arrivals than the
  // recorder did; destinations are keyed by source wire within the epoch.
  TraceRecorder recorder(8, 1);
  auto recording = recorder.wrap(hotspot_source(8), 0);
  Rng rng(11);
  BitVec v;
  do {
    v = recording->next_valid(rng);
  } while (v.count() < 2);
  std::vector<std::pair<std::size_t, std::uint32_t>> recorded;
  for (std::size_t g = 0; g < 8; ++g) {
    if (v.get(g)) recorded.emplace_back(g, recording->dest_for(rng, g, 4));
  }

  auto replay =
      make_replay(std::make_shared<const TraceLog>(recorder.log()), 0);
  Rng unused(0);
  // Skip forward to the recorded epoch.
  BitVec r;
  do {
    r = replay->next_valid(unused);
  } while (r != v);
  // Query only the *last* recorded source first: lookup is by wire.
  EXPECT_EQ(replay->dest_for(unused, recorded.back().first, 4),
            recorded.back().second);
  EXPECT_EQ(replay->dest_for(unused, recorded.front().first, 4),
            recorded.front().second);
  // A wire the recording never addressed that epoch throws.
  for (std::size_t g = 0; g < 8; ++g) {
    if (!v.get(g)) {
      EXPECT_THROW(replay->dest_for(unused, g, 4), ContractViolation);
      break;
    }
  }
}

TEST(TrafficTrace, OutrunningTheRecordingThrows) {
  TraceRecorder recorder(16, 1);
  auto recording = recorder.wrap(hotspot_source(16), 0);
  Rng rng(5);
  for (int e = 0; e < 3; ++e) recording->next_valid(rng);

  auto replay =
      make_replay(std::make_shared<const TraceLog>(recorder.log()), 0);
  Rng unused(0);
  for (int e = 0; e < 3; ++e) replay->next_valid(unused);
  EXPECT_THROW(replay->next_valid(unused), ContractViolation);
}

TEST(TrafficTrace, MultiStreamLogsKeepStreamsIndependent) {
  TraceRecorder recorder(12, 2);
  auto s0 = recorder.wrap(hotspot_source(12), 0);
  auto s1 = recorder.wrap(hotspot_source(12), 1);
  Rng r0(100), r1(200);
  std::vector<BitVec> v0, v1;
  for (int e = 0; e < 4; ++e) {
    v0.push_back(s0->next_valid(r0));
    v1.push_back(s1->next_valid(r1));
  }
  const std::string path = tmp_path("pcs_trace_streams.bin");
  recorder.log().write_file(path);
  const TraceLog loaded = TraceLog::read_file(path);
  std::remove(path.c_str());
  ASSERT_EQ(loaded.streams.size(), 2u);
  auto p0 = make_replay(std::make_shared<const TraceLog>(loaded), 0);
  auto p1 = make_replay(std::make_shared<const TraceLog>(loaded), 1);
  Rng unused(0);
  for (int e = 0; e < 4; ++e) {
    EXPECT_EQ(p0->next_valid(unused), v0[static_cast<std::size_t>(e)]);
    EXPECT_EQ(p1->next_valid(unused), v1[static_cast<std::size_t>(e)]);
  }
}

TEST(TrafficTrace, ReadRejectsGarbageAndMissingFiles) {
  EXPECT_THROW(TraceLog::read_file(tmp_path("pcs_trace_nonexistent.bin")),
               ContractViolation);
  const std::string path = tmp_path("pcs_trace_garbage.bin");
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    const char junk[] = "not a trace";
    std::fwrite(junk, 1, sizeof junk, f);
    std::fclose(f);
  }
  EXPECT_THROW(TraceLog::read_file(path), ContractViolation);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace pcs::traffic
