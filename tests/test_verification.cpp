#include "core/verification.hpp"

#include <gtest/gtest.h>

#include "switch/columnsort_switch.hpp"
#include "switch/comparator_switch.hpp"
#include "plan/compile.hpp"
#include "plan/plan_switch.hpp"
#include "switch/hyper_switch.hpp"
#include "switch/revsort_switch.hpp"

namespace pcs::core {
namespace {

TEST(Verification, LibrarySwitchesPass) {
  pcs::sw::HyperSwitch hyper(64, 32);
  pcs::sw::RevsortSwitch rev(64, 48);
  pcs::sw::ColumnsortSwitch col(16, 4, 48);
  for (const pcs::sw::ConcentratorSwitch* sw :
       std::initializer_list<const pcs::sw::ConcentratorSwitch*>{&hyper, &rev,
                                                                 &col}) {
    Rng rng(430);
    VerifyReport report = verify_switch(*sw, rng);
    EXPECT_TRUE(report.all_passed()) << sw->name() << "\n" << report.to_string();
    EXPECT_GT(report.patterns_tried, 200u);
  }
}

TEST(Verification, ReportListsAllChecks) {
  pcs::sw::HyperSwitch sw(16, 8);
  Rng rng(431);
  VerifyReport report = verify_switch(sw, rng);
  ASSERT_EQ(report.checks.size(), 6u);
  std::string s = report.to_string();
  EXPECT_NE(s.find("PASS"), std::string::npos);
  EXPECT_NE(s.find("partial-concentration contract"), std::string::npos);
}

TEST(Verification, CatchesAnOverclaimedEpsilon) {
  // A truncated Batcher prefix declared with epsilon far below reality must
  // fail the epsilon and contract checks -- the harness works as a lie
  // detector, not just a rubber stamp.
  auto net = pcs::sortnet::ComparatorNetwork::odd_even_mergesort(64).truncated(8);
  pcs::sw::ComparatorSwitch liar(net, 64, 1, "overclaimed");
  Rng rng(432);
  VerifyReport report = verify_switch(liar, rng);
  EXPECT_FALSE(report.all_passed());
  bool epsilon_failed = false;
  for (const CheckResult& c : report.checks) {
    if (c.name.find("epsilon") != std::string::npos && !c.passed) {
      epsilon_failed = true;
      EXPECT_FALSE(c.counterexample.empty());
    }
  }
  EXPECT_TRUE(epsilon_failed);
}

TEST(Verification, FaultySwitchPassesWithEpsilonCheckDisabled) {
  pcs::plan::SwitchPlan plan = pcs::plan::compile_revsort_plan(64, 48);
  pcs::plan::apply_chip_faults(plan, {pcs::plan::ChipFault{1, 2}});
  pcs::plan::PlanSwitch sw(std::move(plan));
  Rng rng(433);
  VerifyOptions opts;
  opts.check_epsilon_bound = false;  // faults void the guarantee
  VerifyReport report = verify_switch(sw, rng, opts);
  // Routing stays well-formed even with dead chips...
  EXPECT_TRUE(report.checks[0].passed) << report.to_string();
  // ...but conservation fails by design: the dead chip eats messages, which
  // the harness surfaces rather than hides.
  EXPECT_FALSE(report.checks[1].passed);
}

TEST(Verification, DeterministicPerSeed) {
  pcs::sw::RevsortSwitch sw(64, 48);
  Rng a(434), b(434);
  VerifyReport ra = verify_switch(sw, a);
  VerifyReport rb = verify_switch(sw, b);
  EXPECT_EQ(ra.patterns_tried, rb.patterns_tried);
  EXPECT_EQ(ra.all_passed(), rb.all_passed());
}

}  // namespace
}  // namespace pcs::core
