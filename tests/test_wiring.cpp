#include "switch/wiring.hpp"

#include <gtest/gtest.h>

#include "util/assert.hpp"
#include "util/mathutil.hpp"
#include "util/rng.hpp"

namespace pcs::sw {
namespace {

TEST(Permutation, IdentityAndValidation) {
  Permutation id = Permutation::identity(5);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(id.dest(i), i);
  EXPECT_THROW(Permutation({0, 0, 1}), pcs::ContractViolation);  // not injective
  EXPECT_THROW(Permutation({0, 3}), pcs::ContractViolation);     // out of range
}

TEST(Permutation, InverseComposesToIdentity) {
  Rng rng(110);
  std::vector<std::uint32_t> d(16);
  for (std::size_t i = 0; i < 16; ++i) d[i] = static_cast<std::uint32_t>(i);
  for (std::size_t i = 15; i > 0; --i) std::swap(d[i], d[rng.below(i + 1)]);
  Permutation p(d);
  EXPECT_EQ(p.then(p.inverse()), Permutation::identity(16));
  EXPECT_EQ(p.inverse().then(p), Permutation::identity(16));
}

TEST(Permutation, ApplyMovesSlots) {
  Permutation p({2, 0, 1});
  std::vector<std::int32_t> in = {10, 11, 12};
  EXPECT_EQ(p.apply(in), (std::vector<std::int32_t>{11, 12, 10}));
  BitVec bits = BitVec::from_string("110");
  EXPECT_EQ(p.apply_bits(bits).to_string(), "101");
}

TEST(Wiring, TransposeIsSelfInverse) {
  for (std::size_t side : {2u, 4u, 8u}) {
    Permutation t = transpose_wiring(side);
    EXPECT_TRUE(t.is_bijection());
    EXPECT_EQ(t.then(t), Permutation::identity(side * side));
  }
}

TEST(Wiring, TransposeMatchesPaperIndexing) {
  // Y_{1,j,i} -> X_{2,i,j}: flat j*side + i -> i*side + j.
  const std::size_t side = 4;
  Permutation t = transpose_wiring(side);
  for (std::size_t j = 0; j < side; ++j) {
    for (std::size_t i = 0; i < side; ++i) {
      EXPECT_EQ(t.dest(j * side + i), i * side + j);
    }
  }
}

TEST(Wiring, RevRotateTransposeMatchesPaperIndexing) {
  // Y_{2,i,j} -> X_{3,(rev(i)+j) mod v, i}.
  const std::size_t v = 8;
  const unsigned q = pcs::exact_log2(v);
  Permutation w = rev_rotate_transpose_wiring(v);
  for (std::size_t i = 0; i < v; ++i) {
    for (std::size_t j = 0; j < v; ++j) {
      std::size_t target_chip = (pcs::bit_reverse(i, q) + j) % v;
      EXPECT_EQ(w.dest(i * v + j), target_chip * v + i);
    }
  }
}

TEST(Wiring, RevRotateTransposeEqualsRotationThenTranspose) {
  // The combined wiring must equal: rotate row i right by rev(i), then
  // transpose -- the decomposition Figure 4 realizes with barrel shifters.
  const std::size_t v = 8;
  const unsigned q = pcs::exact_log2(v);
  std::vector<std::uint32_t> rotate(v * v);
  for (std::size_t i = 0; i < v; ++i) {
    for (std::size_t j = 0; j < v; ++j) {
      std::size_t new_col = (pcs::bit_reverse(i, q) + j) % v;
      rotate[i * v + j] = static_cast<std::uint32_t>(i * v + new_col);
    }
  }
  Permutation rot(rotate);
  EXPECT_EQ(rot.then(transpose_wiring(v)), rev_rotate_transpose_wiring(v));
}

TEST(Wiring, RevRotateRequiresPow2) {
  EXPECT_THROW(rev_rotate_transpose_wiring(6), pcs::ContractViolation);
}

TEST(Wiring, CmToRmMatchesPaperIndexing) {
  // Y_{1,j,i} -> X_{2,(rj+i) mod s, floor((rj+i)/s)}.
  const std::size_t r = 8, s = 4;
  Permutation w = cm_to_rm_wiring(r, s);
  for (std::size_t j = 0; j < s; ++j) {
    for (std::size_t i = 0; i < r; ++i) {
      std::size_t x = r * j + i;
      EXPECT_EQ(w.dest(j * r + i), (x % s) * r + (x / s));
    }
  }
}

TEST(Wiring, CmToRmIsBijection) {
  for (auto [r, s] : {std::pair<std::size_t, std::size_t>{8, 4},
                      std::pair<std::size_t, std::size_t>{16, 2},
                      std::pair<std::size_t, std::size_t>{6, 3}}) {
    EXPECT_TRUE(cm_to_rm_wiring(r, s).is_bijection());
  }
}

TEST(Wiring, WireIndexConvention) {
  EXPECT_EQ(wire_index(0, 0, 8), 0u);
  EXPECT_EQ(wire_index(2, 3, 8), 19u);
}

}  // namespace
}  // namespace pcs::sw
