// Throwaway: capture pre-refactor golden hashes for the fabric pipeline
// bit-identity pin (test_fabric_pipeline.cpp).  Not built by CMake.
#include <cstdio>
#include <memory>
#include <string>

#include "fabric/fabric_sim.hpp"
#include "message/traffic.hpp"
#include "obs/trace.hpp"
#include "runtime/metrics.hpp"
#include "util/digest.hpp"
#include "util/parallel.hpp"

using namespace pcs;
using namespace pcs::fabric;

static FabricSim::TrafficFactory bernoulli(double p) {
  return [p](std::size_t width) -> std::unique_ptr<traffic::TrafficSource> {
    return std::make_unique<traffic::ComposedSource>(
        traffic::PatternKind::kUniform,
        std::make_unique<traffic::BernoulliProcess>(width, p), 0.125);
  };
}

static FabricOptions fast_opts() {
  FabricOptions opts;
  opts.queue_depth = 2;
  opts.seed = 7;
  opts.warmup_epochs = 4;
  opts.measure_epochs = 24;
  opts.drain_epochs_max = 128;
  opts.check_invariants = true;
  return opts;
}

static std::uint64_t hash_str(const std::string& s) {
  Digest d;
  for (char c : s) d.mix_byte(static_cast<std::uint8_t>(c));
  return d.value();
}

static FabricSpec base_spec(Topology t, std::size_t hops, std::size_t radix) {
  FabricSpec spec;
  spec.topology = t;
  spec.hops = hops;
  spec.radix = radix;
  spec.node.family = "columnsort";
  spec.node.n = 64;
  spec.node.m = 32;
  spec.credits = 4;
  return spec;
}

int main() {
  {
    FabricSpec spec = base_spec(Topology::kOmega, 3, 2);
    FabricSim sim(spec, fast_opts(), bernoulli(0.6));
    rt::MetricsRegistry m;
    sim.run(m);
    std::printf("G1 omega rr      : 0x%016llx\n",
                (unsigned long long)hash_str(m.to_json()));
  }
  {
    FabricSpec spec = base_spec(Topology::kButterfly, 3, 2);
    spec.alloc = "islip";
    FabricSim sim(spec, fast_opts(), bernoulli(0.5));
    rt::MetricsRegistry m;
    sim.run(m);
    std::printf("G2 butterfly isl : 0x%016llx\n",
                (unsigned long long)hash_str(m.to_json()));
  }
  {
    FabricSpec spec = base_spec(Topology::kFatTree, 3, 2);
    spec.alloc = "islip";
    spec.node.faults = {{0, 0}};
    spec.fault_hop = 1;
    FabricSim sim(spec, fast_opts(), bernoulli(0.7));
    rt::MetricsRegistry m;
    sim.run(m);
    std::printf("G3 fattree fault : 0x%016llx\n",
                (unsigned long long)hash_str(m.to_json()));
  }
  {
    set_max_parallelism(1);
    obs::Tracer::instance().enable(obs::ClockMode::kLogical);
    FabricSpec spec = base_spec(Topology::kOmega, 3, 2);
    FabricSim sim(spec, fast_opts(), bernoulli(0.6));
    rt::MetricsRegistry m;
    sim.run(m);
    obs::TraceSnapshot snap = obs::Tracer::instance().drain();
    obs::Tracer::instance().disable();
    const std::string json = obs::chrome_trace_json({snap});
    std::printf("T1 trace logical : 0x%016llx (spans=%zu)\n",
                (unsigned long long)hash_str(json), snap.spans.size());
  }
  return 0;
}
