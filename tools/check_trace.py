#!/usr/bin/env python3
"""Validate a pcs_serve Chrome trace against its runtime metrics document.

Checks, in order:
  1. the trace is well-formed Chrome trace-event JSON: a traceEvents list of
     complete-duration ("ph": "X") events with name/cat/pid/tid/ts/dur;
  2. timestamps are normalized: the minimum ts across all events is 0;
  3. spans nest strictly within each (pid, tid) track -- no event partially
     overlaps an earlier one;
  4. one trace group (pid) per campaign in the metrics document;
  5. with --chip-spans-per-route N (the pinned CI config uses 48: 3 stages
     x 16 chips of the faulted Revsort(256 -> 192) plan), each campaign's
     "plan.chip" span count equals N x its route_batch_dispatches counter;
  6. each campaign's profile.plan.words_routed counter, when exported,
     equals its total.delivered counter -- or, for fabric campaigns (any
     fabric.hop<k>.* counters present), the sum over hops of
     fabric.hop<k>.sent + fabric.hop<k>.delivered, since a message is
     routed once per hop it traverses.  When the run used the fused
     executor (config.exec == "fused", the default), the counter is
     REQUIRED on every traced campaign: a fused dispatch that fails to
     publish its routed-word tally would otherwise pass silently.
  7. every exported histogram uses the zero-separating log2 bucket schema:
     bucket 0 admits only the value 0 (upper bound 0) and bucket b >= 1
     admits [2^(b-1), 2^b - 1], so zero-latency fast-path deliveries are
     distinguishable from 1-epoch ones; the bucket weights must sum to the
     histogram's count, and min/max must sit inside the occupied buckets.

Usage:
  tools/check_trace.py TRACE.json METRICS.json [--chip-spans-per-route N]

Exits nonzero with a message on the first violated check.
"""

import argparse
import json
import sys

REQUIRED_EVENT_KEYS = ("name", "cat", "ph", "pid", "tid", "ts", "dur")


def fail(msg):
    print(f"check_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_events_shape(events):
    if not isinstance(events, list) or not events:
        fail("traceEvents must be a non-empty list")
    for i, ev in enumerate(events):
        for key in REQUIRED_EVENT_KEYS:
            if key not in ev:
                fail(f"event {i} missing key {key!r}: {ev}")
        if ev["ph"] != "X":
            fail(f"event {i} has ph={ev['ph']!r}, expected complete spans only")
        if ev["ts"] < 0 or ev["dur"] < 0:
            fail(f"event {i} has negative ts/dur: {ev}")


def check_normalized_origin(events):
    min_ts = min(ev["ts"] for ev in events)
    if min_ts != 0:
        fail(f"minimum ts is {min_ts}, expected a normalized origin of 0")


def check_strict_nesting(events):
    tracks = {}
    for ev in events:
        tracks.setdefault((ev["pid"], ev["tid"]), []).append(ev)
    for (pid, tid), track in tracks.items():
        track.sort(key=lambda ev: (ev["ts"], -(ev["ts"] + ev["dur"])))
        open_ends = []  # stack of enclosing span end times
        for ev in track:
            end = ev["ts"] + ev["dur"]
            while open_ends and open_ends[-1] <= ev["ts"]:
                open_ends.pop()
            if open_ends and end > open_ends[-1]:
                fail(
                    f"span {ev['name']!r} [{ev['ts']}, {end}) straddles its "
                    f"enclosing span (ends {open_ends[-1]}) on pid={pid} "
                    f"tid={tid}"
                )
            open_ends.append(end)


def check_against_metrics(events, doc, chip_spans_per_route):
    campaigns = doc.get("campaigns")
    if not campaigns:
        fail("metrics document has no campaigns")
    pids = {ev["pid"] for ev in events}
    if pids != set(range(len(campaigns))):
        fail(
            f"trace pids {sorted(pids)} do not match the {len(campaigns)} "
            "campaigns (one trace group per campaign)"
        )
    for pid, campaign in enumerate(campaigns):
        counters = campaign["metrics"]["counters"]
        if chip_spans_per_route:
            chip_spans = sum(
                1 for ev in events if ev["pid"] == pid and ev["cat"] == "plan.chip"
            )
            expected = chip_spans_per_route * counters["route_batch_dispatches"]
            if chip_spans != expected:
                fail(
                    f"campaign {pid}: {chip_spans} plan.chip spans, expected "
                    f"{chip_spans_per_route} x {counters['route_batch_dispatches']} "
                    f"dispatches = {expected}"
                )
        words = counters.get("profile.plan.words_routed")
        fused = doc.get("config", {}).get("exec", "fused") == "fused"
        if words is None and fused and campaign["profile"].get("enabled"):
            fail(
                f"campaign {pid}: fused run exported no "
                "profile.plan.words_routed counter"
            )
        if any(k.startswith("fabric.hop") for k in counters):
            # Fabric campaign: every hop a message crosses is one routed word.
            expected_words = sum(
                v
                for k, v in counters.items()
                if k.startswith("fabric.hop")
                and (k.endswith(".sent") or k.endswith(".delivered"))
            )
            words_label = "sum of fabric.hop<k>.{sent,delivered}"
        else:
            expected_words = counters["total.delivered"]
            words_label = "total.delivered"
        if words is not None and words != expected_words:
            fail(
                f"campaign {pid}: profile.plan.words_routed={words} != "
                f"{words_label}={expected_words}"
            )


def check_histograms(doc):
    for pid, campaign in enumerate(doc.get("campaigns", [])):
        for name, h in campaign["metrics"].get("histograms", {}).items():
            where = f"campaign {pid} histogram {name!r}"
            buckets = h["buckets"]
            total = 0
            for b, (upper, weight) in enumerate(buckets):
                expected = 0 if b == 0 else 2**b - 1
                if b >= 64:
                    expected = 2**64 - 1
                if upper != expected:
                    fail(
                        f"{where}: bucket {b} upper bound {upper}, expected "
                        f"{expected} (bucket 0 must hold only the value 0)"
                    )
                total += weight
            if total != h["count"]:
                fail(
                    f"{where}: bucket weights sum to {total}, count is "
                    f"{h['count']}"
                )
            if h["count"]:
                occupied = [b for b, (_, w) in enumerate(buckets) if w]
                lo, hi = occupied[0], occupied[-1]
                lo_min = 0 if lo == 0 else 2 ** (lo - 1)
                if not (lo_min <= h["min"] <= buckets[lo][0]):
                    fail(f"{where}: min {h['min']} outside lowest occupied bucket {lo}")
                hi_min = 0 if hi == 0 else 2 ** (hi - 1)
                if not (hi_min <= h["max"] <= buckets[hi][0]):
                    fail(f"{where}: max {h['max']} outside highest occupied bucket {hi}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="Chrome trace JSON written by pcs_serve")
    parser.add_argument("metrics", help="runtime metrics JSON from the same run")
    parser.add_argument(
        "--chip-spans-per-route",
        type=int,
        default=0,
        metavar="N",
        help="require N plan.chip spans per route_batch dispatch per campaign "
        "(0 = skip; the pinned CI config uses 48)",
    )
    args = parser.parse_args()

    with open(args.trace) as f:
        trace = json.load(f)
    with open(args.metrics) as f:
        doc = json.load(f)

    events = trace.get("traceEvents")
    check_events_shape(events)
    check_normalized_origin(events)
    check_strict_nesting(events)
    check_against_metrics(events, doc, args.chip_spans_per_route)
    check_histograms(doc)
    print(
        f"check_trace: OK: {len(events)} events across "
        f"{len(doc['campaigns'])} campaigns"
    )


if __name__ == "__main__":
    main()
