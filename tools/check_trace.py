#!/usr/bin/env python3
"""Validate a pcs_serve Chrome trace against its runtime metrics document.

Checks, in order:
  1. the trace is well-formed Chrome trace-event JSON: a traceEvents list of
     complete-duration ("ph": "X") events with name/cat/pid/tid/ts/dur;
  2. timestamps are normalized: the minimum ts across all events is 0;
  3. spans nest strictly within each (pid, tid) track -- no event partially
     overlaps an earlier one;
  4. one trace group (pid) per campaign in the metrics document;
  5. with --chip-spans-per-route N (the pinned CI config uses 48: 3 stages
     x 16 chips of the faulted Revsort(256 -> 192) plan), each campaign's
     "plan.chip" span count equals N x its route_batch_dispatches counter;
  6. each campaign's profile.plan.words_routed counter, when exported,
     equals its total.delivered counter.  When the run used the fused
     executor (config.exec == "fused", the default), the counter is
     REQUIRED on every traced campaign: a fused dispatch that fails to
     publish its routed-word tally would otherwise pass silently.

Usage:
  tools/check_trace.py TRACE.json METRICS.json [--chip-spans-per-route N]

Exits nonzero with a message on the first violated check.
"""

import argparse
import json
import sys

REQUIRED_EVENT_KEYS = ("name", "cat", "ph", "pid", "tid", "ts", "dur")


def fail(msg):
    print(f"check_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_events_shape(events):
    if not isinstance(events, list) or not events:
        fail("traceEvents must be a non-empty list")
    for i, ev in enumerate(events):
        for key in REQUIRED_EVENT_KEYS:
            if key not in ev:
                fail(f"event {i} missing key {key!r}: {ev}")
        if ev["ph"] != "X":
            fail(f"event {i} has ph={ev['ph']!r}, expected complete spans only")
        if ev["ts"] < 0 or ev["dur"] < 0:
            fail(f"event {i} has negative ts/dur: {ev}")


def check_normalized_origin(events):
    min_ts = min(ev["ts"] for ev in events)
    if min_ts != 0:
        fail(f"minimum ts is {min_ts}, expected a normalized origin of 0")


def check_strict_nesting(events):
    tracks = {}
    for ev in events:
        tracks.setdefault((ev["pid"], ev["tid"]), []).append(ev)
    for (pid, tid), track in tracks.items():
        track.sort(key=lambda ev: (ev["ts"], -(ev["ts"] + ev["dur"])))
        open_ends = []  # stack of enclosing span end times
        for ev in track:
            end = ev["ts"] + ev["dur"]
            while open_ends and open_ends[-1] <= ev["ts"]:
                open_ends.pop()
            if open_ends and end > open_ends[-1]:
                fail(
                    f"span {ev['name']!r} [{ev['ts']}, {end}) straddles its "
                    f"enclosing span (ends {open_ends[-1]}) on pid={pid} "
                    f"tid={tid}"
                )
            open_ends.append(end)


def check_against_metrics(events, doc, chip_spans_per_route):
    campaigns = doc.get("campaigns")
    if not campaigns:
        fail("metrics document has no campaigns")
    pids = {ev["pid"] for ev in events}
    if pids != set(range(len(campaigns))):
        fail(
            f"trace pids {sorted(pids)} do not match the {len(campaigns)} "
            "campaigns (one trace group per campaign)"
        )
    for pid, campaign in enumerate(campaigns):
        counters = campaign["metrics"]["counters"]
        if chip_spans_per_route:
            chip_spans = sum(
                1 for ev in events if ev["pid"] == pid and ev["cat"] == "plan.chip"
            )
            expected = chip_spans_per_route * counters["route_batch_dispatches"]
            if chip_spans != expected:
                fail(
                    f"campaign {pid}: {chip_spans} plan.chip spans, expected "
                    f"{chip_spans_per_route} x {counters['route_batch_dispatches']} "
                    f"dispatches = {expected}"
                )
        words = counters.get("profile.plan.words_routed")
        fused = doc.get("config", {}).get("exec", "fused") == "fused"
        if words is None and fused and campaign["profile"].get("enabled"):
            fail(
                f"campaign {pid}: fused run exported no "
                "profile.plan.words_routed counter"
            )
        if words is not None and words != counters["total.delivered"]:
            fail(
                f"campaign {pid}: profile.plan.words_routed={words} != "
                f"total.delivered={counters['total.delivered']}"
            )


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="Chrome trace JSON written by pcs_serve")
    parser.add_argument("metrics", help="runtime metrics JSON from the same run")
    parser.add_argument(
        "--chip-spans-per-route",
        type=int,
        default=0,
        metavar="N",
        help="require N plan.chip spans per route_batch dispatch per campaign "
        "(0 = skip; the pinned CI config uses 48)",
    )
    args = parser.parse_args()

    with open(args.trace) as f:
        trace = json.load(f)
    with open(args.metrics) as f:
        doc = json.load(f)

    events = trace.get("traceEvents")
    check_events_shape(events)
    check_normalized_origin(events)
    check_strict_nesting(events)
    check_against_metrics(events, doc, args.chip_spans_per_route)
    print(
        f"check_trace: OK: {len(events)} events across "
        f"{len(doc['campaigns'])} campaigns"
    )


if __name__ == "__main__":
    main()
