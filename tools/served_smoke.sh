#!/usr/bin/env bash
# End-to-end smoke of the serving daemon (CI runs this on the release
# preset; it also runs locally from the repo root):
#
#   tools/served_smoke.sh [path/to/build/examples]
#
# Proves the PR 8 acceptance story: two tenants share one cached plan
# (cache hit counter > 0), a mid-run SIGHUP swaps the config without
# dropping the in-flight campaign, consecutive scrapes are byte-identical
# outside the quarantined wall-clock series, scrape totals conserve, and
# SIGTERM drains to exit 0 with zero residual backlog.  A non-uniform
# composable traffic model (pattern=hotspot injection=onoff) additionally
# round-trips the wire protocol end to end, and a multi-hop fabric
# campaign must answer with identical traffic totals whether the daemon
# runs it on the serial schedule or the four-deep epoch pipeline.
set -euo pipefail

BIN=$(cd "${1:-build/examples}" && pwd)
REPO=$(cd "$(dirname "$0")/.." && pwd)
WORK=$(mktemp -d)
DPID=""
cleanup() {
  [ -n "$DPID" ] && kill -9 "$DPID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

SOCK="$WORK/pcs.sock"
cp "$REPO/examples/served_smoke.cfg" "$WORK/served.cfg"
sed -i "s#^socket = .*#socket = $SOCK#" "$WORK/served.cfg"

echo "== start daemon"
(cd "$WORK" && exec "$BIN/pcs_served" --config "$WORK/served.cfg" \
  > "$WORK/daemon.log" 2>&1) &
DPID=$!
for i in $(seq 50); do [ -S "$SOCK" ] && break; sleep 0.1; done
[ -S "$SOCK" ] || { echo "daemon never bound $SOCK"; cat "$WORK/daemon.log"; exit 1; }

echo "== two tenants, shared plan"
"$BIN/pcs_loadgen" socket="$SOCK" tenants=2 requests=4 require=ok \
  | tee "$WORK/loadgen.txt"
grep -q "cache_hits=" "$WORK/loadgen.txt"

echo "== non-uniform traffic model over the wire (hotspot x onoff)"
"$BIN/pcs_loadgen" socket="$SOCK" tenants=1 requests=2 require=ok \
  pattern=hotspot injection=onoff | tee "$WORK/loadgen_hotspot.txt"
grep -q "ok=2" "$WORK/loadgen_hotspot.txt"

echo "== scrape twice; deterministic outside *wall* names"
"$BIN/pcs_loadgen" socket="$SOCK" scrape="$WORK/scrape1.json" > /dev/null
"$BIN/pcs_loadgen" socket="$SOCK" scrape="$WORK/scrape2.json" > /dev/null
python3 - "$WORK/scrape1.json" "$WORK/scrape2.json" <<'EOF'
import json, sys

a = json.load(open(sys.argv[1]))
b = json.load(open(sys.argv[2]))

def stable(doc):
    # Wall-clock series are confined to names containing "wall" by design.
    # serve.scrapes / serve.connections are self-observing: the scrape that
    # reads them is itself a connection.  Everything else must be stable
    # between two back-to-back scrapes of a quiet daemon.
    skip = {"serve.scrapes", "serve.connections"}
    out = {}
    for section, entries in doc.items():
        out[section] = {k: v for k, v in entries.items()
                        if "wall" not in k and k not in skip}
    return out

sa, sb = stable(a), stable(b)
assert sa == sb, "scrapes differ outside wall/scrape-count series"

c = a["counters"]
assert c["serve.cache.hits"] > 0, "tenants never shared a cached plan"
assert c["total.offered"] == (c["total.delivered"] + c["total.dropped"]
                              + c["total.residual"]), "conservation violated"
assert c["serve.campaigns_completed"] == 10  # 2x4 uniform + 2 hotspot/onoff
print(f"scrape ok: hits={c['serve.cache.hits']} offered={c['total.offered']}")
EOF

echo "== fabric campaign: pipelined schedule matches serial at the wire"
# The same multi-hop request at epochs_in_flight 1 and 4 must come back
# with byte-identical traffic totals: the pipeline reorders work, never
# results.  (Runs after the scrape checks so their campaign count holds.)
"$BIN/pcs_loadgen" socket="$SOCK" tenants=1 requests=1 require=ok \
  topology=omega epochs_in_flight=1 | tee "$WORK/fabric_serial.txt"
"$BIN/pcs_loadgen" socket="$SOCK" tenants=1 requests=1 require=ok \
  topology=omega epochs_in_flight=4 | tee "$WORK/fabric_pipelined.txt"
grep '^traffic:' "$WORK/fabric_serial.txt" > "$WORK/fabric_serial_totals.txt"
grep '^traffic:' "$WORK/fabric_pipelined.txt" \
  > "$WORK/fabric_pipelined_totals.txt"
cmp "$WORK/fabric_serial_totals.txt" "$WORK/fabric_pipelined_totals.txt" || {
  echo "pipelined fabric campaign diverged from the serial totals"
  exit 1
}
"$BIN/pcs_loadgen" socket="$SOCK" scrape="$WORK/scrape_fabric.json" > /dev/null
python3 - "$WORK/scrape_fabric.json" <<'EOF'
import json, sys
c = json.load(open(sys.argv[1]))["counters"]
assert c.get("serve.fabric_campaigns", 0) == 2, "fabric campaigns not counted"
print(f"fabric ok: {c['serve.fabric_campaigns']} campaigns, totals identical")
EOF

echo "== SIGHUP mid-run; in-flight campaign survives"
# One long campaign in flight...
"$BIN/pcs_loadgen" socket="$SOCK" tenants=1 requests=1 require=ok \
  measure=4096 > "$WORK/inflight.txt" &
LGPID=$!
sleep 0.3
# ...while the config changes under it (load point doubles).
sed -i "s/^arrival_p = .*/arrival_p = 0.20/" "$WORK/served.cfg"
kill -HUP "$DPID"
wait "$LGPID" || { echo "in-flight campaign dropped across reload"; exit 1; }
"$BIN/pcs_loadgen" socket="$SOCK" scrape="$WORK/scrape3.json" > /dev/null
python3 - "$WORK/scrape3.json" <<'EOF'
import json, sys
c = json.load(open(sys.argv[1]))["counters"]
assert c.get("serve.config_reloads", 0) >= 1, "reload not applied"
assert c.get("serve.config_reload_failures", 0) == 0
print(f"reload ok: reloads={c['serve.config_reloads']}")
EOF

echo "== SIGTERM drains clean"
kill -TERM "$DPID"
DRAIN_RC=0
wait "$DPID" || DRAIN_RC=$?
DPID=""
[ "$DRAIN_RC" -eq 0 ] || { echo "drain exit $DRAIN_RC"; cat "$WORK/daemon.log"; exit 1; }
[ -S "$SOCK" ] && { echo "socket left behind"; exit 1; }
python3 - "$WORK/served_metrics.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
c, g = doc["counters"], doc["gauges"]
assert c["total.offered"] == (c["total.delivered"] + c["total.dropped"]
                              + c["total.residual"]), "final conservation"
assert g["serve.inflight"] == 0, "residual in-flight after drain"
print(f"drain ok: {c['serve.campaigns_completed']} campaigns, "
      f"{c['total.offered']} offered")
EOF

echo "served smoke: all checks passed"
