#!/usr/bin/env bash
# Sustained-load soak of the serving daemon (the nightly workflow runs
# this; locally: tools/served_soak.sh [build/examples] [seconds]).
#
# Pushes open-loop multi-tenant load for SOAK_SECONDS (default 180),
# then checks the things only duration exposes:
#   * conservation still holds over millions of routed messages;
#   * every request was answered (no wedged connection threads);
#   * daemon RSS stays bounded (no per-campaign or per-connection leak);
#   * the daemon still drains to exit 0 after minutes of churn.
set -euo pipefail

BIN=$(cd "${1:-build/examples}" && pwd)
SOAK_SECONDS=${2:-180}
REPO=$(cd "$(dirname "$0")/.." && pwd)
WORK=$(mktemp -d)
DPID=""
cleanup() {
  [ -n "$DPID" ] && kill -9 "$DPID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

SOCK="$WORK/pcs.sock"
cp "$REPO/examples/served_smoke.cfg" "$WORK/served.cfg"
sed -i "s#^socket = .*#socket = $SOCK#" "$WORK/served.cfg"
# Soak shape: bigger campaigns than the smoke (n=256 revsort, heavier load)
# so each round trip routes tens of thousands of messages.
sed -i "s/^n = .*/n = 256/; s/^m = .*/m = 192/; s/^arrival_p = .*/arrival_p = 0.25/; s/^lanes = .*/lanes = 4/; s/^measure_epochs = .*/measure_epochs = 128/" \
  "$WORK/served.cfg"

echo "== start daemon (soak ${SOAK_SECONDS}s)"
(cd "$WORK" && exec "$BIN/pcs_served" --config "$WORK/served.cfg" \
  > "$WORK/daemon.log" 2>&1) &
DPID=$!
for i in $(seq 50); do [ -S "$SOCK" ] && break; sleep 0.1; done
[ -S "$SOCK" ] || { echo "daemon never bound"; cat "$WORK/daemon.log"; exit 1; }

rss_kb() { awk '/VmRSS/ {print $2}' "/proc/$DPID/status"; }

# Warm the cache and let the allocator reach steady state before the
# baseline RSS sample, so the check measures *growth*, not warmup.
"$BIN/pcs_loadgen" socket="$SOCK" tenants=4 requests=2 require=ok > /dev/null
RSS_START=$(rss_kb)

echo "== sustained load"
ROUNDS=0
DEADLINE=$(( $(date +%s) + SOAK_SECONDS ))
while [ "$(date +%s)" -lt "$DEADLINE" ]; do
  "$BIN/pcs_loadgen" socket="$SOCK" tenants=4 requests=4 require=ok \
    > "$WORK/round.txt" || { echo "round $ROUNDS failed"; cat "$WORK/round.txt"; exit 1; }
  ROUNDS=$((ROUNDS + 1))
done
RSS_END=$(rss_kb)
echo "rounds=$ROUNDS rss_start=${RSS_START}kB rss_end=${RSS_END}kB"

"$BIN/pcs_loadgen" socket="$SOCK" scrape="$WORK/soak_scrape.json" > /dev/null

echo "== SIGTERM drains clean after soak"
kill -TERM "$DPID"
DRAIN_RC=0
wait "$DPID" || DRAIN_RC=$?
DPID=""
[ "$DRAIN_RC" -eq 0 ] || { echo "drain exit $DRAIN_RC"; tail "$WORK/daemon.log"; exit 1; }

python3 - "$WORK/soak_scrape.json" "$RSS_START" "$RSS_END" "$ROUNDS" <<'EOF'
import json, sys
c = json.load(open(sys.argv[1]))["counters"]
rss_start, rss_end, rounds = int(sys.argv[2]), int(sys.argv[3]), int(sys.argv[4])

offered = c["total.offered"]
assert offered == (c["total.delivered"] + c["total.dropped"]
                   + c["total.residual"]), "conservation violated under soak"
assert c["serve.campaigns_completed"] == 8 + rounds * 16, "lost campaigns"
assert c.get("serve.campaigns_failed", 0) == 0, "campaigns failed under soak"
assert c.get("serve.protocol_errors", 0) == 0, "protocol errors under soak"
# Messages scale with duration; each round offers ~550k
# (16 campaigns x 0.25 x 256 wires x 4 lanes x ~130 epochs), so minutes
# of soak routes hundreds of millions.
assert offered >= rounds * 500_000, f"soak too light: {offered} offered"
# RSS bound: steady state after warmup; allow 25% + 64MB headroom before
# calling it a leak.
limit = rss_start * 1.25 + 65536
assert rss_end <= limit, f"RSS grew {rss_start}kB -> {rss_end}kB (limit {limit:.0f}kB)"
print(f"soak ok: {rounds} rounds, {offered} messages offered, "
      f"RSS {rss_start}kB -> {rss_end}kB")
EOF

cp "$WORK/soak_scrape.json" soak_scrape.json
echo "served soak: all checks passed (scrape in soak_scrape.json)"
